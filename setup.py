"""Setuptools shim.

The execution environment for this reproduction is fully offline and does not
ship the ``wheel`` package, so PEP 517 editable installs (which build an
editable wheel) fail.  This ``setup.py`` lets ``pip install -e .`` fall back
to the legacy ``setup.py develop`` path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
