"""Setuptools shim.

The execution environment for this reproduction is fully offline and does not
ship the ``wheel`` package, so PEP 517 editable installs (which build an
editable wheel) fail.  This ``setup.py`` lets ``pip install -e .`` fall back
to the legacy ``setup.py develop`` path.

The core engine is dependency-free; the columnar executor needs NumPy and is
installed via the ``repro[columnar]`` extra (without it, ``executor=
'columnar'`` raises a pointed error and the tuple executors work unchanged).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={"columnar": ["numpy"]},
)
