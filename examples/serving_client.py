"""A minimal client for the ``raqlet serve`` JSON protocol.

Start a server in one terminal::

    raqlet serve --scale 50 --port 7431

then exercise it from another::

    python examples/serving_client.py --port 7431
    python examples/serving_client.py --port 7431 --shutdown

The protocol is newline-delimited JSON over TCP: each request is one JSON
object with an ``"op"`` key, each response one JSON object with an ``"ok"``
flag.  This script pings the server, runs a prepared statement twice with
different bindings, applies a mutation, re-runs to show the new epoch's
answer, subscribes to a standing query and receives the pushed
notification frame for a further mutation, and prints the serving
counters.
"""

import argparse
import json
import socket
import sys


class ServingClient:
    """One TCP connection speaking the newline-delimited JSON protocol.

    Responses are request/reply, but a subscription also *pushes*
    ``{"event": "notification", ...}`` frames at mutation time; those can
    interleave with replies, so reads sort them into a side buffer.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._notifications = []

    def _read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        while True:
            message = self._read()
            if message.get("event") == "notification":
                self._notifications.append(message)
                continue
            return message

    def next_notification(self) -> dict:
        """Return the next pushed frame (buffered or read off the wire)."""
        if self._notifications:
            return self._notifications.pop(0)
        message = self._read()
        if message.get("event") != "notification":
            raise ValueError(f"expected a notification frame, got {message}")
        return message

    def close(self) -> None:
        self._file.close()
        self._sock.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7431)
    parser.add_argument("--person", type=int, default=1, help="personId binding")
    parser.add_argument(
        "--shutdown", action="store_true", help="ask the server to stop afterwards"
    )
    args = parser.parse_args()

    client = ServingClient(args.host, args.port)
    try:
        pong = client.request({"op": "ping"})
        print(f"ping -> epoch {pong['epoch']}")

        reply = client.request(
            {"op": "run", "name": "sq1", "params": {"personId": args.person}}
        )
        if not reply["ok"]:
            print(f"run failed: {reply}", file=sys.stderr)
            return 1
        print(
            f"sq1(personId={args.person}) -> {len(reply['rows'])} rows "
            f"(worker {reply['worker']}, epoch {reply['epoch']})"
        )
        for row in reply["rows"][:3]:
            print(f"  {row}")

        reply = client.request(
            {"op": "run", "name": "fof", "params": {"personId": args.person}}
        )
        print(f"fof(personId={args.person}) -> {len(reply['rows'])} rows")

        # A mutation bumps the epoch; every later run sees the new state.
        before = len(reply["rows"])
        mutated = client.request(
            {
                "op": "mutate",
                "insert": {
                    "Person": [[990001, "Ada", "Example", "female", 0, 0, "0.0.0.0", "none"]]
                },
            }
        )
        print(
            f"mutate -> inserted {mutated['inserted']} rows, "
            f"epoch {mutated['epoch']}"
        )
        reply = client.request(
            {"op": "run", "name": "fof", "params": {"personId": args.person}}
        )
        print(
            f"fof after mutation -> {len(reply['rows'])} rows "
            f"(was {before}) at epoch {reply['epoch']}"
        )

        # A standing query: subscribe, mutate, receive the pushed delta.
        reply = client.request(
            {"op": "subscribe", "name": "fof", "params": {"personId": args.person}}
        )
        print(f"subscribed sid={reply['sid']} to fof(personId={args.person})")
        client.request(
            {
                "op": "mutate",
                "insert": {
                    "Person": [
                        [990002, "Newly", "Arrived", "female", 0, 0, "0.0.0.1", "none"]
                    ],
                    "Person_KNOWS_Person": [[args.person, 990002, 990002, 0]],
                },
            }
        )
        frame = client.next_notification()
        print(
            f"notification: +{len(frame['added'])} -{len(frame['removed'])} "
            f"rows @epoch {frame['epoch']}"
        )
        gone = client.request({"op": "unsubscribe", "sid": reply["sid"]})
        print(f"unsubscribed: {gone['removed']}")

        stats = client.request({"op": "stats"})["stats"]
        print(
            f"counters: executed={stats['executed_count']} "
            f"coalesced={stats['coalesced_count']} "
            f"maintain={stats['maintain_count']} "
            f"full_rederive={stats['full_rederive_count']} "
            f"notifications={stats['notification_count']}"
        )

        if args.shutdown:
            reply = client.request({"op": "shutdown"})
            print(f"shutdown acknowledged: {reply['ok']}")
    finally:
        client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
