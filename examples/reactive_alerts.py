"""Reactive rules end to end: a threshold alert, embedded and over the wire.

Part 1 (embedded) wires the full trigger chain inside one session: a
standing query watches sensor readings over a threshold, a reactive rule
escalates each hot reading into an ``alert`` fact, and a second standing
query over the open alerts notifies a subscriber — all within the same
mutation batch's flush, driven purely by IVM deltas (no query is re-run
from scratch).

Part 2 (over the wire) runs the same threshold query as a standing query
on a serving pool: a TCP client subscribes via the JSON protocol, a
writer streams sensor readings through ``mutate``, and the subscriber
receives pushed ``notification`` frames carrying exactly the result rows
that changed.

Run with::

    python examples/reactive_alerts.py
"""

import asyncio
import json

from repro import Raqlet
from repro.serving import RaqletServer, ServingPool

SCHEMA = """
CREATE GRAPH {
  (sensorType : Sensor { id INT, value INT })
}
"""

#: readings at or above the threshold (the standing query the rule watches)
HOT_READINGS = """
.decl reading(s:number, v:number)
.decl hot(s:number, v:number)
hot(s, v) :- reading(s, v), v >= 95.
.output hot
"""

#: the alerts the rule derives (watched by the downstream subscriber)
OPEN_ALERTS = """
.decl alert(s:number, v:number)
.decl open_alert(s:number, v:number)
open_alert(s, v) :- alert(s, v).
.output open_alert
"""

READINGS_STREAM = [
    (1, 20),   # calm
    (2, 97),   # hot -> alert
    (3, 40),   # calm
    (4, 99),   # hot -> alert
    (2, 101),  # hot again, new value -> alert
]


def embedded() -> None:
    print("=" * 70)
    print("Part 1: embedded threshold rule (insert -> rule -> alert fact)")
    print("=" * 70)
    raqlet = Raqlet(SCHEMA)
    with raqlet.session() as session:
        # The rule: every new hot reading raises an alert fact.
        session.reactive.register_action(
            "raise-alert",
            lambda ctx: ctx.session.insert("alert", ctx.rows),
        )
        session.reactive.add_rule("escalate", HOT_READINGS, "raise-alert")

        # The subscriber: observes the derived alerts, not the raw stream.
        session.subscribe(
            OPEN_ALERTS,
            lambda delta: print(f"  subscriber saw new alerts: {sorted(delta.added)}"),
        )

        for reading in READINGS_STREAM:
            print(f"reading {reading}")
            session.insert("reading", [reading])

        print(f"alert facts in the store: {sorted(session.store.scan('alert'))}")
        engines = [prepared.engine for prepared in session._all_prepared]
        print(
            "maintenance counters: "
            f"maintain={sum(e.maintain_count for e in engines)} "
            f"full_rederive={sum(e.full_rederive_count for e in engines)}"
        )


async def over_the_wire() -> None:
    print()
    print("=" * 70)
    print("Part 2: standing query over the wire (subscribe -> mutate -> frame)")
    print("=" * 70)
    pool = ServingPool(Raqlet(SCHEMA), {"reading": [(1, 20)]}, workers=2)
    server = RaqletServer(pool, port=0)
    await server.start()
    host, port = server.address
    try:
        reader, writer = await asyncio.open_connection(host, port)

        async def request(payload):
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        await request({"op": "prepare", "name": "alerts", "query": HOT_READINGS})
        reply = await request({"op": "subscribe", "name": "alerts"})
        print(f"subscribed: sid={reply['sid']} epoch={reply['epoch']}")

        loop = asyncio.get_running_loop()
        for reading in READINGS_STREAM[1:]:
            outcome = await loop.run_in_executor(
                None, lambda r=reading: pool.mutate(insert={"reading": [r]})
            )
            print(f"writer inserted {reading} at epoch {outcome['epoch']}")
            if reading[1] >= 95:
                frame = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=10)
                )
                assert frame["event"] == "notification"
                print(
                    f"  client received frame: +{frame['added']} "
                    f"-{frame['removed']} @epoch {frame['epoch']}"
                )

        gone = await request({"op": "unsubscribe", "sid": reply["sid"]})
        print(f"unsubscribed: {gone['removed']}")
        writer.close()
    finally:
        await server.stop()
        pool.close()


def main() -> None:
    embedded()
    asyncio.run(over_the_wire())
    print()
    print("done.")


if __name__ == "__main__":
    main()
