"""Serving workloads with a persistent session and prepared queries.

The one-shot API recompiles plans and re-ingests the graph on every call —
fine for a compiler demo, wrong for a server answering many requests over
one graph.  This example shows the serving shape:

1. open a session — the EDB is ingested **once**, indexes and statistics
   are built on demand and then stay hot;
2. prepare a query whose ``$personId`` is **late-bound** — the compiled
   plan (and the generated Soufflé/SQL text) keeps the named placeholder;
3. run it with several bindings — the engine's counters prove the warm
   runs pay zero re-ingest, zero index rebuilds, zero plan recompiles;
4. mutate the graph — the derived result is marked dirty and lazily
   re-derived on the next run;
5. route the same prepared text to other engines with ``session.execute``.

Run with::

    python examples/session_serving.py
"""

from repro import Raqlet

SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
}
"""

QUERY = """
MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

FACTS = {
    "Person": [
        (42, "Ada", "10.0.0.1"),
        (43, "Alan", "10.0.0.2"),
        (44, "Edgar", "10.0.0.3"),
    ],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901), (44, 1, 902)],
}


def main() -> None:
    raqlet = Raqlet(SCHEMA)

    with raqlet.session(FACTS) as session:  # EDB ingested once, right here
        prepared = session.prepare(QUERY)
        print(f"prepared with late-bound parameters: {prepared.param_names}")
        print("generated SQL keeps the placeholder:")
        print("   ...WHERE", prepared.compiled.sql_text().split("WHERE")[1].split(")")[0] + ")")
        print()

        for person_id in (42, 43, 44):
            result = prepared.run(personId=person_id)
            print(f"personId={person_id} -> {result.to_dicts()}")

        engine = session.store
        print()
        print(f"result repr:    {prepared.run(personId=42)!r}")
        print(f"ingests:        {session.ingest_count} (the whole point)")
        print(f"plan builds:    {prepared.engine.plan_build_count}")
        print(f"index builds:   {engine.index_build_count}")
        print()

        # Mutations mark derived results dirty; the next run re-derives
        # against the still-hot indexes and plans.
        session.insert("Person_IS_LOCATED_IN_City", [(42, 2, 903)])
        print(f"after insert:   personId=42 -> {prepared.run(personId=42).to_dicts()}")
        session.retract("Person_IS_LOCATED_IN_City", [(42, 2, 903)])
        print(f"after retract:  personId=42 -> {prepared.run(personId=42).to_dicts()}")
        print()

        # The same prepared text routes to every engine that supports it.
        for engine_name in ("datalog", "sqlite", "relational", "graph"):
            result = session.execute(QUERY, engine=engine_name, personId=43)
            print(f"{engine_name:<11} -> {sorted(result.rows)}")

        agreed = all(
            session.execute(QUERY, engine=name, personId=43).row_set()
            == session.execute(QUERY, engine="datalog", personId=43).row_set()
            for name in ("sqlite", "relational", "graph")
        )
        print(f"engines agree: {agreed}")
        assert agreed


if __name__ == "__main__":
    main()
