"""LDBC SNB walkthrough: the workload behind the paper's Table 1.

Generates a synthetic SNB-shaped social network, compiles the two queries of
Table 1 (interactive short query 1 and complex query 2), runs them on all four
engines with and without optimization, and prints a small timing table whose
*shape* can be compared against the paper (the absolute numbers differ: this
is a pure-Python substrate on a synthetic dataset).

Run with::

    python examples/ldbc_snb.py [--scale 300]
"""

import argparse
import time

from repro import Raqlet
from repro.ldbc import (
    complex_query_2,
    load_dataset,
    short_query_1,
    snb_schema_mapping,
)


def _time_ms(callable_):
    start = time.perf_counter()
    result = callable_()
    elapsed = (time.perf_counter() - start) * 1000.0
    return elapsed, result


def run(scale: int) -> None:
    data = load_dataset(scale_persons=scale, seed=42)
    raqlet = Raqlet(snb_schema_mapping())
    person_id = data.dataset.default_person_id()
    queries = {
        "SQ1": short_query_1(person_id),
        "CQ2": complex_query_2(person_id, data.dataset.median_message_date()),
    }
    print(f"dataset: {scale} persons, {data.dataset.fact_count()} facts")
    print(f"query parameter: person id {person_id}")
    print()
    header = f"{'Query':<6}{'Optimized':<11}{'Graph':>10}{'Datalog':>10}{'Relational':>12}{'SQLite':>10}"
    print(header)
    print("-" * len(header))
    for name, spec in queries.items():
        for optimized in (False, True):
            compiled = raqlet.compile_cypher(spec["query"], spec["parameters"])
            graph_ms, graph_result = _time_ms(
                lambda: raqlet.run_on_graph_engine(compiled, data.property_graph())
            )
            datalog_ms, datalog_result = _time_ms(
                lambda: raqlet.run_on_datalog_engine(compiled, data.facts, optimized)
            )
            relational_ms, relational_result = _time_ms(
                lambda: raqlet.run_on_relational_engine(
                    compiled, data.relational_database(), optimized
                )
            )
            sqlite_ms, sqlite_result = _time_ms(
                lambda: raqlet.run_on_sqlite(compiled, data.sqlite_executor(), optimized)
            )
            assert datalog_result.same_rows(graph_result)
            assert datalog_result.same_rows(relational_result)
            assert datalog_result.same_rows(sqlite_result)
            flag = "yes" if optimized else "no"
            print(
                f"{name:<6}{flag:<11}{graph_ms:>9.2f} {datalog_ms:>9.2f} "
                f"{relational_ms:>11.2f} {sqlite_ms:>9.2f}   ({len(datalog_result)} rows)"
            )
    data.close()
    print()
    print("Expected shape (paper, Table 1): translated Datalog/SQL beat the")
    print("graph-native execution, and optimized beats unoptimized.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=300, help="number of persons")
    run(parser.parse_args().scale)
