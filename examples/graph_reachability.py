"""Graph analytics: reachability and shortest paths across paradigms.

The second motivating domain of the paper is graph analytics: reachability
and shortest-path queries.  This example builds a small road network, writes
both queries in Cypher, and shows how Raqlet's static analysis routes them:

* plain reachability (transitive closure) is linear recursion, so it runs on
  every backend including the SQL ones,
* shortest path needs min-recursion (Datalog^o-style subsumption), which the
  SQL backends reject -- Raqlet reports why, and the Datalog and graph engines
  execute it.

Run with::

    python examples/graph_reachability.py
"""

import random

from repro import Raqlet
from repro.engines.graph import facts_to_property_graph
from repro.engines.relational import Database
from repro.engines.sqlite_exec import SQLiteExecutor

SCHEMA = """
CREATE GRAPH {
  (stationType : Station { id INT, name STRING }),
  (:stationType)-[linkType : connectsTo { id INT, distance INT }]->(:stationType)
}
"""

REACHABILITY = """
MATCH (s:Station {id: $source})-[:CONNECTS_TO*]->(t:Station)
RETURN DISTINCT t.id AS stationId
"""

SHORTEST_PATH = """
MATCH p = shortestPath((s:Station {id: $source})-[:CONNECTS_TO*]->(t:Station {id: $target}))
RETURN DISTINCT length(p) AS hops
"""


def build_network(stations: int = 150, extra_links: int = 180, seed: int = 11):
    """A ring with random chords: strongly connected with varied path lengths."""
    rng = random.Random(seed)
    station_rows = [(index, f"Station {index}") for index in range(stations)]
    links = []
    link_id = 0
    for index in range(stations):
        link_id += 1
        links.append((index, (index + 1) % stations, link_id, 1))
    for _ in range(extra_links):
        src = rng.randrange(stations)
        dst = rng.randrange(stations)
        if src != dst:
            link_id += 1
            links.append((src, dst, link_id, 1))
    return {"Station": station_rows, "Station_CONNECTS_TO_Station": links}


def main() -> None:
    raqlet = Raqlet(SCHEMA)
    facts = build_network()
    graph = facts_to_property_graph(facts, raqlet.mapping)
    database = Database()
    for relation in raqlet.dl_schema.edb_relations():
        database.create_table(relation.name, relation.column_names())
        database.insert_many(relation.name, facts.get(relation.name, []))

    print("== reachability (linear recursion, supported everywhere) ==")
    compiled = raqlet.compile_cypher(REACHABILITY, {"source": 0})
    assert compiled.analysis is not None
    print(f"  linear recursion: {compiled.analysis.linearity.is_linear}")
    print(f"  SQL backend ok:   {not compiled.backend_problems('sqlite')}")
    with SQLiteExecutor(raqlet.dl_schema, facts) as sqlite_executor:
        sqlite_executor.create_indexes()
        results = raqlet.run_everywhere(
            compiled, facts, database, graph, sqlite_executor
        )
    for engine, result in results.items():
        print(f"  {engine:<12} {len(result)} reachable stations")
    reference = next(iter(results.values()))
    assert all(result.same_rows(reference) for result in results.values())

    print()
    print("== shortest path (min-recursion, rejected by SQL backends) ==")
    compiled_sp = raqlet.compile_cypher(SHORTEST_PATH, {"source": 0, "target": 75})
    problems = compiled_sp.backend_problems("sqlite")
    print(f"  SQL backend problems: {problems}")
    datalog_result = raqlet.run_on_datalog_engine(compiled_sp, facts)
    graph_result = raqlet.run_on_graph_engine(compiled_sp, graph)
    print(f"  Datalog engine shortest hops: {datalog_result.sorted_rows()}")
    print(f"  Graph engine shortest hops:   {graph_result.sorted_rows()}")
    assert datalog_result.same_rows(graph_result)
    print("  Datalog and graph engines agree ✔")


if __name__ == "__main__":
    main()
