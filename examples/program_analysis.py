"""Deductive program analysis: a points-to analysis written in Datalog.

The paper's introduction motivates Raqlet with deductive databases used for
large-scale static program analysis (Doop-style points-to analyses).  This
example writes a small Andersen-style points-to analysis as a Datalog program,
feeds it through Raqlet's Datalog frontend, and:

* runs the static analyses (the program is recursive but linear-izable),
* executes it on the in-repo Datalog engine,
* translates it to SQL and executes the same analysis on SQLite,
* checks both produce the same points-to sets.

Run with::

    python examples/program_analysis.py
"""

import random

from repro import Raqlet
from repro.engines.sqlite_exec import run_sql_on_sqlite

# A minimal schema: the "graph" here is a program's assignment structure.
SCHEMA = """
CREATE GRAPH {
  (varType : Variable { id INT, name STRING }),
  (objType : Object { id INT, site STRING }),
  (:varType)-[assignType : assign { id INT }]->(:varType)
}
"""

# Andersen-style points-to: new-site facts seed the analysis, assignments
# propagate points-to sets transitively.
POINTS_TO_PROGRAM = """
.decl NewObject(v:number, o:number)
.decl Assign(src:number, dst:number)
.decl PointsTo(v:number, o:number)

PointsTo(v, o) :- NewObject(v, o).
PointsTo(dst, o) :- Assign(src, dst), PointsTo(src, o).

.output PointsTo
"""


def generate_program(variables: int = 400, objects: int = 80, assignments: int = 900, seed: int = 3):
    """Generate a random program's NewObject / Assign facts."""
    rng = random.Random(seed)
    new_object = []
    for obj in range(objects):
        new_object.append((rng.randrange(variables), obj))
    assign = set()
    while len(assign) < assignments:
        src = rng.randrange(variables)
        dst = rng.randrange(variables)
        if src != dst:
            assign.add((src, dst))
    return {"NewObject": new_object, "Assign": sorted(assign)}


def main() -> None:
    raqlet = Raqlet(SCHEMA)
    compiled = raqlet.compile_datalog(POINTS_TO_PROGRAM)

    assert compiled.analysis is not None
    print("static analysis of the points-to program:")
    print(compiled.analysis.to_text())
    print()
    print("generated SQL:")
    print(compiled.sql_text())

    facts = generate_program()
    datalog_result = raqlet.run_on_datalog_engine(compiled, facts)
    print(f"Datalog engine: {len(datalog_result)} points-to facts")

    # The same analysis as a recursive SQL query on SQLite.  The EDB schema is
    # the program's own declarations, so build a DL-Schema for SQLite from the
    # compiled program (the graph schema above is not used for this input).
    sql = compiled.sql_text(dialect="sqlite")
    sqlite_result = run_sql_on_sqlite(compiled.program().schema, facts, sql)
    print(f"SQLite        : {len(sqlite_result)} points-to facts")

    assert datalog_result.same_rows(sqlite_result), "engines disagree!"
    print("both engines derive the same points-to sets ✔")

    sample = datalog_result.sorted_rows()[:5]
    print(f"sample facts: {sample}")


if __name__ == "__main__":
    main()
