"""Quickstart: compile the paper's running example and run it everywhere.

This walks through the exact pipeline of the paper's Figure 3: a PG-Schema,
a Cypher query, and the artifacts Raqlet produces at every stage (PGIR, DLIR,
Soufflé Datalog, SQL), then executes the query on all four engines over a tiny
hand-written dataset and checks that they agree.

Run with::

    python examples/quickstart.py
"""

from repro import Raqlet
from repro.engines.graph import facts_to_property_graph
from repro.engines.relational import Database
from repro.engines.sqlite_exec import SQLiteExecutor

SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
}
"""

QUERY = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

FACTS = {
    "Person": [
        (42, "Ada", "10.0.0.1"),
        (43, "Alan", "10.0.0.2"),
        (44, "Edgar", "10.0.0.3"),
    ],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901), (44, 1, 902)],
}


def main() -> None:
    raqlet = Raqlet(SCHEMA)
    compiled = raqlet.compile_cypher(QUERY)

    print("=" * 70)
    print("PGIR (Figure 3b)")
    print("=" * 70)
    print(compiled.pgir_text())

    print("=" * 70)
    print("DLIR / generated Soufflé Datalog, unoptimized (Figure 3c/3d)")
    print("=" * 70)
    print(compiled.datalog_text(optimized=False))

    print("=" * 70)
    print("Generated SQL, unoptimized (Figure 3e)")
    print("=" * 70)
    print(compiled.sql_text(optimized=False))

    print("=" * 70)
    print("Fully optimized Datalog (Figure 4b + semantic join elimination)")
    print("=" * 70)
    print(compiled.datalog_text(optimized=True))

    print("=" * 70)
    print("Static analysis (Section 4)")
    print("=" * 70)
    assert compiled.analysis is not None
    print(compiled.analysis.to_text())

    # Execute on every engine over the same facts.
    database = Database()
    for relation in raqlet.dl_schema.edb_relations():
        database.create_table(relation.name, relation.column_names())
        database.insert_many(relation.name, FACTS.get(relation.name, []))
    graph = facts_to_property_graph(FACTS, raqlet.mapping)
    with SQLiteExecutor(raqlet.dl_schema, FACTS) as sqlite_executor:
        results = raqlet.run_everywhere(
            compiled, FACTS, database, graph, sqlite_executor
        )
    print("=" * 70)
    print("Execution results")
    print("=" * 70)
    for engine, result in results.items():
        print(f"  {engine:<12} {result.columns} -> {result.sorted_rows()}")
    reference = next(iter(results.values()))
    assert all(result.same_rows(reference) for result in results.values())
    print("  all engines agree ✔")


if __name__ == "__main__":
    main()
