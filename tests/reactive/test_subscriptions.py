"""Subscription semantics: exactly-once deltas, counters, lifecycle.

The contract under test: after every committed mutation batch, each live
subscription receives the exact ``(added, removed)`` result-row delta of
its standing query — computed by incremental maintenance, never by
re-running the query — delivered exactly once, with broken callbacks
isolated and unsubscription immediate.
"""

from __future__ import annotations

import pytest

from repro.common.errors import RaqletError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.pipeline import Raqlet
from repro.reactive import ResultDelta

SCHEMA = """
CREATE GRAPH {
  (sensorType : Sensor { id INT, value INT })
}
"""

HOT = """
.decl reading(s:number, v:number)
.decl hot(s:number, v:number)
hot(s, v) :- reading(s, v), v >= $threshold.
.output hot
"""

def _count_query(raqlet):
    """``sensors(n) :- reading(s, _), n = count()`` — aggregates are not in
    the Datalog text frontend, so the view is built as DLIR directly."""
    builder = ProgramBuilder()
    builder.edb("reading", [("s", "number"), ("v", "number")])
    builder.idb("sensors", [("n", "number")])
    builder.rule(
        "sensors",
        ["n"],
        [("reading", ["s", "_"])],
        aggregations=[Aggregation("count", Var("n"))],
    )
    builder.output("sensors")
    return raqlet.compile_dlir(builder.build(), optimize=False)


@pytest.fixture()
def raqlet():
    return Raqlet(SCHEMA)


@pytest.fixture()
def session(raqlet):
    with raqlet.session() as session:
        session.insert("reading", [(1, 10), (2, 96)])
        yield session


def collect(events):
    def callback(delta: ResultDelta) -> None:
        events.append((sorted(delta.added), sorted(delta.removed)))

    return callback


class TestDelivery:
    def test_baseline_is_not_delivered(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        assert events == []

    def test_insert_delivers_added_rows(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.insert("reading", [(3, 99)])
        assert events == [([(3, 99)], [])]

    def test_retract_delivers_removed_rows(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.retract("reading", [(2, 96)])
        assert events == [([], [(2, 96)])]

    def test_batch_delivers_once(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.insert("reading", [(3, 99), (4, 97), (5, 12)])
        assert events == [([(3, 99), (4, 97)], [])]

    def test_irrelevant_mutation_is_silent(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.insert("reading", [(3, 11)])
        session.retract("reading", [(1, 10)])
        assert events == []

    def test_bindings_filter_the_delta(self, session):
        strict, loose = [], []
        session.subscribe(HOT, collect(strict), threshold=98)
        session.subscribe(HOT, collect(loose), threshold=50)
        session.insert("reading", [(3, 99), (4, 60)])
        assert strict == [([(3, 99)], [])]
        assert loose == [([(3, 99), (4, 60)], [])]

    def test_delta_columns_and_epoch(self, session):
        deltas = []
        session.subscribe(HOT, deltas.append, threshold=90)
        session.insert("reading", [(3, 99)])
        (delta,) = deltas
        assert delta.columns == ["s", "v"]
        assert delta.epoch == session.mutation_epoch

    def test_aggregate_view_transitions(self, raqlet, session):
        events = []
        session.subscribe(_count_query(raqlet), collect(events))
        session.insert("reading", [(3, 50)])
        assert events[-1] == ([(3,)], [(2,)])

    def test_incremental_path_no_rederive(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        for step in range(10):
            session.insert("reading", [(100 + step, 90 + step)])
        engines = [prepared.engine for prepared in session._all_prepared]
        assert sum(engine.full_rederive_count for engine in engines) == 0
        assert len(events) == 10


class TestSharingAndLifecycle:
    def test_same_binding_shares_one_standing_query(self, session):
        first, second = [], []
        session.subscribe(HOT, collect(first), threshold=90)
        session.subscribe(HOT, collect(second), threshold=90)
        assert session.reactive.standing_count == 1
        session.insert("reading", [(3, 99)])
        assert first == second == [([(3, 99)], [])]

    def test_distinct_bindings_get_distinct_standing_queries(self, session):
        session.subscribe(HOT, lambda delta: None, threshold=90)
        session.subscribe(HOT, lambda delta: None, threshold=50)
        assert session.reactive.standing_count == 2

    def test_unsubscribe_stops_delivery(self, session):
        events = []
        subscription = session.subscribe(HOT, collect(events), threshold=90)
        subscription.unsubscribe()
        subscription.unsubscribe()  # idempotent
        session.insert("reading", [(3, 99)])
        assert events == []
        assert session.reactive.subscription_count == 0
        assert session.reactive.standing_count == 0

    def test_unsubscribe_one_of_two_keeps_the_other(self, session):
        kept, gone = [], []
        keeper = session.subscribe(HOT, collect(kept), threshold=90)
        leaver = session.subscribe(HOT, collect(gone), threshold=90)
        leaver.unsubscribe()
        session.insert("reading", [(3, 99)])
        assert kept == [([(3, 99)], [])]
        assert gone == []
        assert keeper.active and not leaver.active

    def test_subscription_counters(self, session):
        subscription = session.subscribe(HOT, lambda delta: None, threshold=90)
        session.insert("reading", [(3, 99), (4, 97)])
        session.retract("reading", [(3, 99)])
        assert subscription.delivery_count == 2
        assert subscription.rows_added == 2
        assert subscription.rows_removed == 1

    def test_callback_errors_are_isolated(self, session):
        healthy = []

        def broken(delta):
            raise RuntimeError("subscriber bug")

        bad = session.subscribe(HOT, broken, threshold=90)
        session.subscribe(HOT, collect(healthy), threshold=90)
        session.insert("reading", [(3, 99)])
        assert healthy == [([(3, 99)], [])]
        assert bad.error_count == 1
        assert isinstance(bad.last_error, RuntimeError)

    def test_close_tears_everything_down(self, raqlet):
        session = raqlet.session()
        session.insert("reading", [(1, 96)])
        subscription = session.subscribe(HOT, lambda delta: None, threshold=90)
        session.close()
        assert not subscription.active

    def test_subscribe_accepts_prepared_query(self, session):
        prepared = session.prepare(HOT)
        events = []
        session.subscribe(prepared, collect(events), threshold=90)
        # The caller's own runs (other bindings!) must not disturb delivery.
        prepared.run(threshold=10)
        session.insert("reading", [(3, 99)])
        assert events == [([(3, 99)], [])]

    def test_mutating_derived_relation_is_rejected(self, session):
        session.subscribe(HOT, lambda delta: None, threshold=90)
        with pytest.raises(RaqletError, match="derived"):
            session.insert("hot", [(9, 99)])


class TestFlushControl:
    def test_auto_flush_off_coalesces_batches(self, session):
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.reactive.auto_flush = False
        session.insert("reading", [(3, 99)])
        session.insert("reading", [(4, 97)])
        session.retract("reading", [(3, 99)])
        assert events == []
        delivered = session.reactive.flush()
        assert delivered == 1
        # One coalesced notification: (3, 99) cancelled itself out.
        assert events == [([(4, 97)], [])]

    def test_flush_without_pending_changes_is_free(self, session):
        session.subscribe(HOT, lambda delta: None, threshold=90)
        assert session.reactive.flush() == 0

    def test_manager_counters(self, session):
        session.subscribe(HOT, lambda delta: None, threshold=90)
        session.subscribe(HOT, lambda delta: None, threshold=50)
        session.insert("reading", [(3, 99)])
        assert session.reactive.notification_count == 2
        assert session.reactive.flush_count == 1


class TestFallbackExactness:
    def test_bulk_ingest_still_delivers_exact_delta(self, session):
        """A bulk ingest logs the sentinel and forces a full re-derivation;
        the snapshot/diff fallback must keep the delta exact (and count the
        event — no silent missed notifications)."""
        events = []
        session.subscribe(HOT, collect(events), threshold=90)
        session.ingest({"reading": [(50, 99), (51, 10), (2, 96)]})
        assert events == [([(50, 99)], [])]
        engines = [prepared.engine for prepared in session._all_prepared]
        assert sum(engine.full_rederive_count for engine in engines) >= 1

    def test_incremental_and_fallback_agree(self, raqlet):
        streams = {"incremental": [], "fallback": []}
        sessions = {}
        for mode in streams:
            sessions[mode] = raqlet.session()
            sessions[mode].insert("reading", [(1, 10), (2, 96)])
            sessions[mode].subscribe(HOT, collect(streams[mode]), threshold=90)
        # Same logical mutations; one side through the maintainable path,
        # the other through bulk ingest (sentinel -> re-derive + diff).
        sessions["incremental"].insert("reading", [(3, 99)])
        sessions["fallback"].ingest({"reading": [(3, 99)]})
        assert streams["incremental"] == streams["fallback"]
        for mode in streams:
            sessions[mode].close()
