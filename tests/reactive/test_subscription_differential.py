"""Differential testing for subscription deltas.

Every seeded random Datalog program from the cross-backend harness
(:mod:`tests.engines.test_store_differential` — recursion, stratified
negation, aggregates, arithmetic, constants, wildcards) runs as a set of
standing queries, one subscription per IDB relation, over a scripted
stream of mutations on the ``edge`` EDB.

The oracle is independent of the whole reactive stack: after every step
the naive evaluator recomputes each relation's full result from scratch,
and the set difference against the previous step's full result must equal
**exactly** the ``(added, removed)`` delta the subscription delivered —
or no delivery at all when the diff is empty.  The script mixes
maintainable batches with bulk ``ingest`` steps (the delta-log sentinel
that forces the snapshot/diff re-derivation fallback), so both the
incremental path and the fallback path are held to the same bar, on every
executor × store combination.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.pipeline import Raqlet

from tests.engines.test_store_differential import (
    HAVE_NUMPY,
    _random_case,
    naive_evaluate,
)

SCHEMA = """
CREATE GRAPH {
  (nodeType : Node { id INT })
}
"""

EXECUTORS = ("compiled",) + (("columnar",) if HAVE_NUMPY else ())
COMBINATIONS = [
    (executor, store) for executor in EXECUTORS for store in ("memory", "sqlite")
]

#: enough seeds to cover every generator feature (recursion flavours ×
#: negation/aggregate/arithmetic/constant/wildcard) on every combination
SEEDS = range(0, 32, 2)

#: mutation steps per seed; step 3 is a bulk ingest (fallback coverage)
STEPS = 6
INGEST_STEP = 3


def _mutation_script(rng: random.Random, nodes: int):
    """Yield ``(kind, rows)`` steps over the ``edge`` relation."""
    for step in range(STEPS):
        rows = {
            (rng.randrange(nodes), rng.randrange(nodes))
            for _ in range(rng.randrange(1, 4))
        }
        if step == INGEST_STEP:
            yield "ingest", sorted(rows)
        elif rng.random() < 0.35:
            yield "retract", sorted(rows)
        else:
            yield "insert", sorted(rows)


@pytest.mark.parametrize("seed", SEEDS)
def test_subscription_deltas_match_full_rediff_oracle(seed):
    program, facts, idbs = _random_case(seed)
    raqlet = Raqlet(SCHEMA)
    for executor, store in COMBINATIONS:
        rng = random.Random(1000 + seed)
        nodes = max(
            (max(edge) + 1 for edge in facts["edge"]), default=4
        )
        session = raqlet.session(store=store, executor=executor)
        try:
            if facts["edge"]:
                session.insert("edge", facts["edge"])
            deliveries = {relation: [] for relation in idbs}
            for relation in idbs:
                compiled = raqlet.compile_dlir(
                    replace(program, outputs=[relation]), optimize=False
                )
                session.subscribe(
                    compiled,
                    lambda delta, _relation=relation: deliveries[_relation].append(
                        (set(delta.added), set(delta.removed))
                    ),
                )
            state = {
                relation: rows
                for relation, rows in naive_evaluate(program, facts).items()
            }
            edges = set(facts["edge"])
            for kind, rows in _mutation_script(rng, nodes):
                if kind == "insert":
                    session.insert("edge", rows)
                    edges.update(rows)
                elif kind == "retract":
                    session.retract("edge", rows)
                    edges.difference_update(rows)
                else:
                    session.ingest({"edge": rows})
                    edges.update(rows)
                oracle = naive_evaluate(program, {"edge": sorted(edges)})
                for relation in idbs:
                    before = state.get(relation, set())
                    after = oracle.get(relation, set())
                    added, removed = after - before, before - after
                    got = deliveries[relation]
                    label = (
                        f"seed {seed}, {executor} on {store}, {relation!r}, "
                        f"step {kind} {rows}"
                    )
                    if added or removed:
                        assert got, f"{label}: delta {added}/{removed} not delivered"
                        assert got[-1] == (added, removed), (
                            f"{label}: delivered {got[-1]}, oracle says "
                            f"({added}, {removed})"
                        )
                        deliveries[relation].clear()
                    else:
                        assert not got, f"{label}: spurious delivery {got}"
                    state[relation] = after
        finally:
            session.close()


@pytest.mark.parametrize("seed", (0, 7, 13))
def test_fallback_steps_are_counted(seed):
    """The bulk-ingest step must route through the counted re-derivation
    fallback — deltas stay exact (asserted above) and the event is visible,
    never silently absorbed."""
    program, facts, idbs = _random_case(seed)
    raqlet = Raqlet(SCHEMA)
    session = raqlet.session()
    try:
        if facts["edge"]:
            session.insert("edge", facts["edge"])
        for relation in idbs:
            compiled = raqlet.compile_dlir(
                replace(program, outputs=[relation]), optimize=False
            )
            session.subscribe(compiled, lambda delta: None)
        session.ingest({"edge": [(97, 98), (98, 99)]})
        engines = [prepared.engine for prepared in session._all_prepared]
        assert sum(engine.full_rederive_count for engine in engines) == len(idbs)
    finally:
        session.close()
