"""Scheduler semantics, driven through virtual time via ``run_pending``.

The thread itself gets one smoke test; everything else uses the testable
core so the suite stays deterministic and fast.
"""

from __future__ import annotations

import threading

import pytest

from repro.pipeline import Raqlet
from repro.reactive import ReactiveScheduler

SCHEMA = """
CREATE GRAPH {
  (sensorType : Sensor { id INT, value INT })
}
"""

HOT = """
.decl reading(s:number, v:number)
.decl hot(s:number, v:number)
hot(s, v) :- reading(s, v), v >= 95.
.output hot
"""


def make_scheduler():
    """A scheduler whose clock starts at 0 (jobs anchor to it)."""
    return ReactiveScheduler(clock=lambda: 0.0)


class TestVirtualTime:
    def test_job_runs_once_per_interval(self):
        scheduler = make_scheduler()
        runs = []
        scheduler.every(10.0, lambda: runs.append(1), name="tick")
        assert scheduler.run_pending(now=5.0) == 0
        assert scheduler.run_pending(now=10.0) == 1
        assert scheduler.run_pending(now=15.0) == 0
        assert scheduler.run_pending(now=20.0) == 1
        assert len(runs) == 2

    def test_slipped_job_runs_once_and_reanchors(self):
        scheduler = make_scheduler()
        runs = []
        scheduler.every(1.0, lambda: runs.append(1))
        # 40 intervals late: one catch-up run, next due a full interval out.
        assert scheduler.run_pending(now=40.0) == 1
        assert scheduler.run_pending(now=40.5) == 0
        assert scheduler.run_pending(now=41.0) == 1

    def test_multiple_jobs_independent_cadence(self):
        scheduler = make_scheduler()
        counts = {"fast": 0, "slow": 0}

        def bump(name):
            counts[name] += 1

        scheduler.every(1.0, lambda: bump("fast"), name="fast")
        scheduler.every(3.0, lambda: bump("slow"), name="slow")
        for tick in range(1, 7):
            scheduler.run_pending(now=float(tick))
        assert counts == {"fast": 6, "slow": 2}

    def test_cancel_stops_a_job(self):
        scheduler = make_scheduler()
        runs = []
        job = scheduler.every(1.0, lambda: runs.append(1), name="tick")
        scheduler.run_pending(now=1.0)
        scheduler.cancel("tick")
        scheduler.run_pending(now=2.0)
        assert runs == [1]
        assert not job.active
        assert scheduler.jobs() == []
        scheduler.cancel("tick")  # idempotent

    def test_job_errors_recorded_and_schedule_kept(self):
        scheduler = make_scheduler()
        healthy = []

        def broken():
            raise RuntimeError("job bug")

        job = scheduler.every(1.0, broken, name="bad")
        scheduler.every(1.0, lambda: healthy.append(1), name="good")
        scheduler.run_pending(now=1.0)
        scheduler.run_pending(now=2.0)
        assert job.error_count == 2
        assert isinstance(job.last_error, RuntimeError)
        assert healthy == [1, 1]

    def test_counters_and_validation(self):
        scheduler = make_scheduler()
        job = scheduler.every(1.0, lambda: None, name="tick")
        scheduler.run_pending(now=1.0)
        assert job.run_count == 1
        assert scheduler.tick_count == 1
        with pytest.raises(ValueError, match="positive"):
            scheduler.every(0, lambda: None)
        with pytest.raises(ValueError, match="already exists"):
            scheduler.every(1.0, lambda: None, name="tick")


class TestSessionWatch:
    def test_watch_flushes_on_tick(self):
        """auto_flush off + watch(): the tick is the delivery point, and a
        burst of mutations coalesces into one notification."""
        with Raqlet(SCHEMA).session() as session:
            events = []
            session.subscribe(
                HOT, lambda delta: events.append(sorted(delta.added))
            )
            session.reactive.auto_flush = False
            scheduler = make_scheduler()
            scheduler.watch(session, interval=1.0)
            session.insert("reading", [(1, 99)])
            session.insert("reading", [(2, 97)])
            assert events == []
            scheduler.run_pending(now=1.0)
            assert events == [[(1, 99), (2, 97)]]
            scheduler.run_pending(now=2.0)  # nothing new: no delivery
            assert len(events) == 1


class TestThread:
    def test_background_thread_delivers(self):
        scheduler = ReactiveScheduler()
        fired = threading.Event()
        scheduler.every(0.01, fired.set, name="tick")
        with scheduler:
            assert fired.wait(timeout=5.0)
        assert scheduler._thread is None

    def test_start_is_idempotent(self):
        scheduler = ReactiveScheduler()
        scheduler.start()
        thread = scheduler._thread
        scheduler.start()
        assert scheduler._thread is thread
        scheduler.stop()
