"""Reactive rules: head-relation deltas trigger registered actions.

Covers the trigger contract (``on`` selectors, fire counters, eager action
validation), cascading — an action's own inserts are observed by other
standing queries in the *same* flush — and the two failure bounds: depth
(:class:`ReactiveCascadeError`) and repeated-delta cycles
(:class:`ReactiveCycleError`).
"""

from __future__ import annotations

import pytest

from repro.pipeline import Raqlet
from repro.reactive import (
    ReactiveCascadeError,
    ReactiveCycleError,
    ReactiveError,
)

SCHEMA = """
CREATE GRAPH {
  (sensorType : Sensor { id INT, value INT })
}
"""

HOT = """
.decl reading(s:number, v:number)
.decl hot(s:number, v:number)
hot(s, v) :- reading(s, v), v >= 95.
.output hot
"""

OPEN_ALERTS = """
.decl alert(s:number, v:number)
.decl open_alert(s:number, v:number)
open_alert(s, v) :- alert(s, v).
.output open_alert
"""

WATCH = """
.decl reading(s:number, v:number)
.decl watch(s:number, v:number)
watch(s, v) :- reading(s, v).
.output watch
"""


@pytest.fixture()
def session():
    with Raqlet(SCHEMA).session() as session:
        session.insert("reading", [(1, 10)])
        yield session


class TestTriggers:
    def test_rule_fires_on_added_rows(self, session):
        fired = []
        session.reactive.register_action(
            "record", lambda ctx: fired.append(sorted(ctx.rows))
        )
        rule = session.reactive.add_rule("hot-watch", HOT, "record")
        session.insert("reading", [(2, 99), (3, 12)])
        assert fired == [[(2, 99)]]
        assert rule.fire_count == 1

    def test_added_rule_skips_pure_removals(self, session):
        session.insert("reading", [(2, 99)])
        fired = []
        session.reactive.register_action("record", lambda ctx: fired.append(ctx.rows))
        session.reactive.add_rule("hot-watch", HOT, "record", on="added")
        session.retract("reading", [(2, 99)])
        assert fired == []

    def test_on_removed_selector(self, session):
        session.insert("reading", [(2, 99)])
        fired = []
        session.reactive.register_action(
            "record", lambda ctx: fired.append(sorted(ctx.delta.removed))
        )
        session.reactive.add_rule("hot-watch", HOT, "record", on="removed")
        session.insert("reading", [(3, 97)])  # pure addition: not fired
        session.retract("reading", [(2, 99)])
        assert fired == [[(2, 99)]]

    def test_on_both_fires_either_way(self, session):
        fired = []
        session.reactive.register_action(
            "record",
            lambda ctx: fired.append((sorted(ctx.delta.added), sorted(ctx.delta.removed))),
        )
        session.reactive.add_rule("hot-watch", HOT, "record", on="both")
        session.insert("reading", [(2, 99)])
        session.retract("reading", [(2, 99)])
        assert fired == [([(2, 99)], []), ([], [(2, 99)])]

    def test_action_context_carries_session_and_rule(self, session):
        seen = {}

        def action(ctx):
            seen["session"] = ctx.session
            seen["rule"] = ctx.rule.name

        session.reactive.register_action("probe", action)
        session.reactive.add_rule("hot-watch", HOT, "probe")
        session.insert("reading", [(2, 99)])
        assert seen == {"session": session, "rule": "hot-watch"}

    def test_unknown_action_rejected_at_add_time(self, session):
        with pytest.raises(ReactiveError, match="no registered action"):
            session.reactive.add_rule("hot-watch", HOT, "missing")

    def test_invalid_selector_rejected(self, session):
        session.reactive.register_action("noop", lambda ctx: None)
        with pytest.raises(ReactiveError, match="invalid rule trigger"):
            session.reactive.add_rule("hot-watch", HOT, "noop", on="changed")

    def test_duplicate_rule_name_rejected(self, session):
        session.reactive.register_action("noop", lambda ctx: None)
        session.reactive.add_rule("hot-watch", HOT, "noop")
        with pytest.raises(ReactiveError, match="already exists"):
            session.reactive.add_rule("hot-watch", HOT, "noop")

    def test_remove_rule_stops_firing(self, session):
        fired = []
        session.reactive.register_action("record", lambda ctx: fired.append(ctx.rows))
        session.reactive.add_rule("hot-watch", HOT, "record")
        session.reactive.remove_rule("hot-watch")
        session.insert("reading", [(2, 99)])
        assert fired == []
        assert session.reactive.rules == {}
        with pytest.raises(ReactiveError, match="no reactive rule"):
            session.reactive.remove_rule("hot-watch")

    def test_register_action_as_decorator(self, session):
        fired = []

        @session.reactive.actions.register("record")
        def record(ctx):
            fired.append(len(ctx.rows))

        session.reactive.add_rule("hot-watch", HOT, "record")
        session.insert("reading", [(2, 99)])
        assert fired == [1]

    def test_hot_swapping_an_action(self, session):
        calls = []
        session.reactive.register_action("record", lambda ctx: calls.append("old"))
        session.reactive.add_rule("hot-watch", HOT, "record")
        session.reactive.register_action("record", lambda ctx: calls.append("new"))
        session.insert("reading", [(2, 99)])
        assert calls == ["new"]


class TestCascades:
    def test_action_mutation_cascades_within_one_flush(self, session):
        """rule: hot rows raise alert facts; a second standing query over
        the alerts sees them in the same mutation batch's flush."""
        session.reactive.register_action(
            "raise-alert", lambda ctx: ctx.session.insert("alert", ctx.rows)
        )
        session.reactive.add_rule("escalate", HOT, "raise-alert")
        alerts = []
        session.subscribe(
            OPEN_ALERTS, lambda delta: alerts.append(sorted(delta.added))
        )
        session.insert("reading", [(2, 99)])
        assert alerts == [[(2, 99)]]
        assert session.store.scan("alert") == [(2, 99)]

    def test_retraction_cascade(self, session):
        session.reactive.register_action(
            "raise-alert", lambda ctx: ctx.session.insert("alert", ctx.rows)
        )
        session.reactive.register_action(
            "clear-alert", lambda ctx: ctx.session.retract("alert", ctx.delta.removed)
        )
        session.reactive.add_rule("escalate", HOT, "raise-alert")
        session.reactive.add_rule("deescalate", HOT, "clear-alert", on="removed")
        session.insert("reading", [(2, 99)])
        session.retract("reading", [(2, 99)])
        assert session.store.scan("alert") == []

    def test_runaway_cascade_hits_depth_bound(self, session):
        """An action that keeps feeding its own standing query must stop at
        the depth bound instead of spinning forever."""
        state = {"next": 1000}

        def feed(ctx):
            state["next"] += 1
            ctx.session.insert("reading", [(state["next"], 99)])

        session.reactive.max_cascade_depth = 4
        session.reactive.register_action("feed", feed)
        session.reactive.add_rule("feedback", HOT, "feed")
        with pytest.raises(ReactiveCascadeError, match="exceeded 4 rounds"):
            session.insert("reading", [(2, 99)])

    def test_oscillating_rules_hit_cycle_detection(self, session):
        """Two rules endlessly undoing each other produce the same delta
        twice in one flush — detected as a cycle, not run to the depth
        bound."""
        session.reactive.register_action(
            "undo", lambda ctx: ctx.session.retract("reading", ctx.rows)
        )
        session.reactive.register_action(
            "redo", lambda ctx: ctx.session.insert("reading", ctx.delta.removed)
        )
        session.reactive.add_rule("undo-inserts", WATCH, "undo", on="added")
        session.reactive.add_rule("redo-removals", WATCH, "redo", on="removed")
        with pytest.raises(ReactiveCycleError, match="same delta twice"):
            session.insert("reading", [(2, 50)])

    def test_action_errors_are_recorded_not_raised(self, session):
        def broken(ctx):
            raise RuntimeError("action bug")

        session.reactive.register_action("broken", broken)
        rule = session.reactive.add_rule("hot-watch", HOT, "broken")
        session.insert("reading", [(2, 99)])  # must not raise
        assert rule.subscription.error_count == 1
        assert isinstance(rule.subscription.last_error, RuntimeError)
