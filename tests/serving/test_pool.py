"""Tests for the serving pool: correctness, IVM, coalescing, admission.

Every concurrency claim is proved against a single-session oracle: the pool
answers exactly what one plain :class:`~repro.session.Session` over the same
facts would answer, before and after mutations, on every worker.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait

import pytest

from repro import Raqlet
from repro.common.errors import RaqletError
from repro.engines.datalog.storage_shared import SharedEDB
from repro.serving import PoolSaturatedError, ServingPool

SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType),
  (:personType)-[knowsType : knows { id INT }]->(:personType)
}
"""

FACTS = {
    "Person": [
        (42, "Ada", "10.0.0.1"),
        (43, "Alan", "10.0.0.2"),
        (44, "Edgar", "10.0.0.3"),
        (45, "Grace", "10.0.0.4"),
    ],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901), (44, 1, 902), (45, 2, 903)],
    "Person_KNOWS_Person": [(42, 43, 1), (43, 44, 2), (44, 45, 3)],
}

CITY_QUERY = """
MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

REACH_QUERY = """
MATCH (a:Person {id: $personId})-[:KNOWS*]->(b:Person)
RETURN DISTINCT b.id AS reachable
"""


@pytest.fixture
def raqlet():
    return Raqlet(SCHEMA)


def _oracle(raqlet, facts, query, params):
    with raqlet.session(facts) as session:
        return session.execute(query, params).row_set()


# -- correctness vs the single-session oracle --------------------------------


@pytest.mark.parametrize("store", ["memory", "sqlite"])
def test_pool_matches_single_session_oracle(raqlet, store):
    with ServingPool(raqlet, FACTS, workers=2, store=store) as pool:
        pool.prepare("city", CITY_QUERY)
        pool.prepare("reach", REACH_QUERY)
        for pid in (42, 43, 44, 45):
            assert pool.run("city", personId=pid).row_set() == _oracle(
                raqlet, FACTS, CITY_QUERY, {"personId": pid}
            )
            assert pool.run("reach", personId=pid).row_set() == _oracle(
                raqlet, FACTS, REACH_QUERY, {"personId": pid}
            )
        stats = pool.stats()
        assert stats["executed_count"] == 8
        assert stats["rejected_count"] == 0


def test_every_worker_answers_identically(raqlet):
    """Force the same binding through every worker: same rows everywhere."""
    with ServingPool(raqlet, FACTS, workers=3) as pool:
        pool.prepare("reach", REACH_QUERY)
        expected = _oracle(raqlet, FACTS, REACH_QUERY, {"personId": 42})
        seen_workers = set()
        # distinct bindings round-robin across workers; repeat the probe
        # binding between them so affinity lands it on each worker over time
        for pid in (42, 43, 44, 42, 45, 42):
            response = pool.submit("reach", personId=pid).result(timeout=60)
            if pid == 42:
                assert response.result.row_set() == expected
                seen_workers.add(response.worker)
        assert len(seen_workers) >= 1  # affinity keeps 42 on one worker
        per_worker = pool.stats()["per_worker"]
        assert sum(entry["executed"] for entry in per_worker) == 6


# -- mutations: snapshot isolation + O(|delta|) maintenance ------------------


def test_mutations_are_seen_by_later_runs(raqlet):
    with ServingPool(raqlet, FACTS, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        before = pool.run("reach", personId=44).row_set()
        assert before == {(45,)}
        outcome = pool.mutate(insert={"Person_KNOWS_Person": [(45, 42, 9)]})
        assert outcome["inserted"] == 1
        after = pool.run("reach", personId=44).row_set()
        assert after == {(45,), (42,), (43,), (44,)}
        # retraction returns to the original answer
        pool.mutate(retract={"Person_KNOWS_Person": [(45, 42, 9)]})
        assert pool.run("reach", personId=44).row_set() == before


def test_streaming_mutations_maintain_incrementally(raqlet):
    """The serving acceptance bar: a mutate/run stream on a warm binding
    goes through IVM on every step — zero full re-derivations."""
    facts = {name: list(rows) for name, rows in FACTS.items()}
    with ServingPool(raqlet, facts, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        oracle_facts = {name: list(rows) for name, rows in FACTS.items()}
        assert pool.run("reach", personId=42).row_set() == _oracle(
            raqlet, oracle_facts, REACH_QUERY, {"personId": 42}
        )
        for step in range(4):
            edge = (45, 50 + step, 100 + step)
            pool.mutate(insert={"Person_KNOWS_Person": [edge]})
            oracle_facts["Person_KNOWS_Person"].append(edge)
            assert pool.run("reach", personId=42).row_set() == _oracle(
                raqlet, oracle_facts, REACH_QUERY, {"personId": 42}
            )
        stats = pool.stats()
        assert stats["maintain_count"] >= 4
        assert stats["full_rederive_count"] == 0


def test_mutating_a_derived_relation_is_rejected(raqlet):
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("city", CITY_QUERY)
        derived = next(iter(pool._derived_originals))
        with pytest.raises(RaqletError, match="derived"):
            pool.mutate(insert={derived: [(1,)]})


# -- coalescing ---------------------------------------------------------------


def test_identical_inflight_requests_coalesce(raqlet):
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("city", CITY_QUERY)
        release = pool._pause_worker(0)
        try:
            futures = [pool.submit("city", personId=42) for _ in range(5)]
            # all five share one future object -> one execution
            assert all(future is futures[0] for future in futures[1:])
        finally:
            release.set()
        results = [future.result(timeout=60) for future in futures]
        assert results[0].result.row_set() == {("Ada", 1)}
        stats = pool.stats()
        assert stats["coalesced_count"] == 4
        assert stats["executed_count"] == 1


def test_coalescing_is_epoch_tagged(raqlet):
    """A request admitted after a mutation must not share the answer of one
    admitted before it — same statement, same binding, different epoch."""
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("reach", REACH_QUERY)
        release = pool._pause_worker(0)
        try:
            first = pool.submit("reach", personId=44)
            pool.mutate(insert={"Person_KNOWS_Person": [(45, 42, 9)]})
            second = pool.submit("reach", personId=44)
            assert second is not first  # the epoch moved: no coalescing
        finally:
            release.set()
        # Reads are "latest committed at execution time": both requests ran
        # after the mutation, so both see the new state — through two
        # separate executions, never one shared stale answer.
        after = {(45,), (42,), (43,), (44,)}
        assert first.result(timeout=60).result.row_set() == after
        assert second.result(timeout=60).result.row_set() == after
        assert pool.stats()["coalesced_count"] == 0
        assert pool.stats()["executed_count"] == 2


def test_distinct_bindings_do_not_coalesce(raqlet):
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("city", CITY_QUERY)
        release = pool._pause_worker(0)
        try:
            first = pool.submit("city", personId=42)
            second = pool.submit("city", personId=43)
            assert second is not first
        finally:
            release.set()
        wait([first, second], timeout=60)
        assert pool.stats()["coalesced_count"] == 0


# -- admission control --------------------------------------------------------


def test_saturated_pool_rejects_new_requests(raqlet):
    with ServingPool(raqlet, FACTS, workers=1, max_pending=2) as pool:
        pool.prepare("city", CITY_QUERY)
        release = pool._pause_worker(0)
        try:
            held = [pool.submit("city", personId=pid) for pid in (42, 43)]
            with pytest.raises(PoolSaturatedError):
                pool.submit("city", personId=44)
            # coalescing onto an in-flight request is still admitted
            again = pool.submit("city", personId=42)
            assert again is held[0]
        finally:
            release.set()
        wait(held, timeout=60)
        assert pool.stats()["rejected_count"] == 1
        # capacity is released: new submissions are admitted again
        assert pool.run("city", personId=44).row_set() == {("Edgar", 1)}


# -- shared caches across workers ---------------------------------------------


def test_workers_share_one_closure_cache(raqlet):
    with ServingPool(raqlet, FACTS, workers=3) as pool:
        pool.prepare("city", CITY_QUERY)
        for pid in (42, 43, 44):  # round-robins across all three workers
            pool.run("city", personId=pid)
        compile_count = pool._executor.compile_count
        assert compile_count > 0
        # a fresh binding on yet another worker reuses every closure
        pool.run("city", personId=45)
        assert pool._executor.compile_count == compile_count


def test_columnar_workers_share_relation_encodings(raqlet):
    """Satellite: one ValueDict + one columnar cache across the pool —
    a second statement and other workers add zero relation re-encodes."""
    pytest.importorskip("numpy")
    with ServingPool(raqlet, FACTS, workers=2, executor="columnar") as pool:
        pool.prepare("city", CITY_QUERY)
        pool.run("city", personId=42)
        encodes_after_first = pool._executor.store_encode_count
        assert encodes_after_first > 0
        # same statement, other worker: the encoded columns are keyed by the
        # *shared* store identity, so nothing is re-encoded
        pool.run("city", personId=43)
        pool.run("city", personId=44)
        # a different prepared statement over the same relations reuses the
        # shared encodings too (the cross-query ValueDict satellite)
        pool.prepare("city2", CITY_QUERY)
        pool.run("city2", personId=42)
        assert pool._executor.store_encode_count == encodes_after_first


# -- lifecycle ----------------------------------------------------------------


def test_statement_replacement_bumps_version(raqlet):
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("q", CITY_QUERY)
        assert pool.run("q", personId=42).row_set() == {("Ada", 1)}
        pool.prepare("q", REACH_QUERY)  # re-prepare under the same name
        assert pool.run("q", personId=42).row_set() == {(43,), (44,), (45,)}


def test_unknown_statement_and_closed_pool(raqlet):
    pool = ServingPool(raqlet, FACTS, workers=1)
    pool.prepare("city", CITY_QUERY)
    with pytest.raises(RaqletError, match="unknown prepared statement"):
        pool.run("nope", personId=42)
    pool.close()
    with pytest.raises(RaqletError, match="closed"):
        pool.run("city", personId=42)


def test_pool_over_caller_supplied_shared_edb(raqlet):
    """A caller-owned SharedEDB survives the pool: external writers keep
    the epoch moving and the pool picks the new state up."""
    shared = SharedEDB()
    shared.ingest(FACTS)
    pool = ServingPool(raqlet, workers=1, store=shared)
    try:
        pool.prepare("reach", REACH_QUERY)
        assert pool.run("reach", personId=44).row_set() == {(45,)}
        shared.insert("Person_KNOWS_Person", [(45, 42, 9)])  # external writer
        assert pool.run("reach", personId=44).row_set() == {
            (45,), (42,), (43,), (44,),
        }
    finally:
        pool.close()
        # still open after pool.close(): the pool does not own the store
        snap = shared.pin()
        assert snap.contains("Person_KNOWS_Person", (45, 42, 9))
        snap.release()
        shared.close()


def test_concurrent_clients_hammer_one_pool(raqlet):
    """Many client threads, mixed statements and bindings: every single
    response equals the oracle for its binding."""
    oracles = {
        pid: _oracle(raqlet, FACTS, REACH_QUERY, {"personId": pid})
        for pid in (42, 43, 44, 45)
    }
    errors = []
    with ServingPool(raqlet, FACTS, workers=4, max_pending=256) as pool:
        pool.prepare("reach", REACH_QUERY)

        def client(seed):
            try:
                for step in range(6):
                    pid = 42 + (seed + step) % 4
                    rows = pool.run("reach", personId=pid, timeout=120).row_set()
                    assert rows == oracles[pid], f"pid {pid}: {rows}"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]


# -- subscriptions: standing queries over the shared EDB ---------------------


class _Listener:
    """Thread-safe notification collector with a wait helper."""

    def __init__(self):
        self.events = []
        self._cond = threading.Condition()

    def __call__(self, sid, name, delta):
        with self._cond:
            self.events.append((sid, name, delta))
            self._cond.notify_all()

    def wait_for(self, count, timeout=10.0):
        with self._cond:
            assert self._cond.wait_for(
                lambda: len(self.events) >= count, timeout=timeout
            ), f"expected {count} notifications, got {len(self.events)}"
            return list(self.events)

    def snapshot(self):
        with self._cond:
            return list(self.events)


def test_subscribe_delivers_deltas_on_mutate(raqlet):
    with ServingPool(raqlet, FACTS, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        sid = pool.subscribe("reach", listener, personId=44)
        edge = (45, 42, 9)
        outcome = pool.mutate(insert={"Person_KNOWS_Person": [edge]})
        (event,) = listener.wait_for(1)
        got_sid, got_name, delta = event
        assert (got_sid, got_name) == (sid, "reach")
        assert set(delta.added) == {(42,), (43,), (44,)}
        assert delta.removed == []
        assert delta.epoch == outcome["epoch"]
        # retraction notifies with the same rows removed
        pool.mutate(retract={"Person_KNOWS_Person": [edge]})
        events = listener.wait_for(2)
        delta = events[1][2]
        assert delta.added == []
        assert set(delta.removed) == {(42,), (43,), (44,)}
        assert pool.stats()["full_rederive_count"] == 0


def test_subscription_is_exactly_once_with_query_traffic(raqlet):
    """A run request on the owning worker syncs (and delivers) first; the
    mutation's own poke must not deliver the same epoch again."""
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        pool.subscribe("reach", listener, personId=44)
        pool.mutate(insert={"Person_KNOWS_Person": [(45, 42, 9)]})
        # query traffic races the notify control for the same epoch
        assert pool.run("reach", personId=44).row_set() == {
            (45,), (42,), (43,), (44,),
        }
        listener.wait_for(1)
        # drain the worker queue: a no-op control proves the notify ran
        pool.poke()
        pool.run("reach", personId=44)
        events = listener.snapshot()
        assert len(events) == 1, [e[2].added for e in events]


def test_irrelevant_mutations_do_not_notify(raqlet):
    with ServingPool(raqlet, FACTS, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        pool.subscribe("reach", listener, personId=44)
        pool.mutate(insert={"City": [(3, "Zurich")]})
        pool.run("reach", personId=44)  # forces a sync + flush round
        assert listener.snapshot() == []


def test_unsubscribe_stops_delivery(raqlet):
    with ServingPool(raqlet, FACTS, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        sid = pool.subscribe("reach", listener, personId=44)
        assert pool.unsubscribe(sid) is True
        assert pool.unsubscribe(sid) is False  # idempotent
        pool.mutate(insert={"Person_KNOWS_Person": [(45, 42, 9)]})
        pool.run("reach", personId=44)
        assert listener.snapshot() == []
        assert pool.stats()["subscription_count"] == 0


def test_distinct_bindings_notify_independently(raqlet):
    with ServingPool(raqlet, FACTS, workers=2) as pool:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        sid_44 = pool.subscribe("reach", listener, personId=44)
        sid_45 = pool.subscribe("reach", listener, personId=45)
        assert pool.stats()["subscription_count"] == 2
        pool.mutate(insert={"Person_KNOWS_Person": [(45, 42, 9)]})
        events = listener.wait_for(2)
        by_sid = {sid: delta for sid, _, delta in events}
        assert set(by_sid) == {sid_44, sid_45}
        assert set(by_sid[sid_44].added) == {(42,), (43,), (44,)}
        assert set(by_sid[sid_45].added) == {(42,), (43,), (44,), (45,)}
        assert pool.stats()["notification_count"] == 2


def test_subscribe_unknown_statement_rejected(raqlet):
    with ServingPool(raqlet, FACTS, workers=1) as pool:
        with pytest.raises(RaqletError, match="unknown prepared statement"):
            pool.subscribe("missing", lambda *a: None)


def test_ticker_delivers_for_external_writers(raqlet):
    """A writer that bypasses pool.mutate (caller-owned SharedEDB) never
    pokes; the periodic ticker is the delivery path."""
    shared = SharedEDB()
    shared.ingest(FACTS)
    pool = ServingPool(Raqlet(SCHEMA), workers=1, store=shared)
    try:
        pool.prepare("reach", REACH_QUERY)
        listener = _Listener()
        pool.subscribe("reach", listener, personId=44)
        pool.start_ticker(interval=0.01)
        shared.insert("Person_KNOWS_Person", [(45, 42, 9)])  # external
        (event,) = listener.wait_for(1)
        assert set(event[2].added) == {(42,), (43,), (44,)}
    finally:
        pool.close()
        shared.close()
