"""Tests for the asyncio JSON protocol server.

pytest-asyncio is deliberately not a dependency: each test is a sync
function running one event loop via ``asyncio.run``, which also mirrors how
the CLI drives the server.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import Raqlet
from repro.engines.result import QueryResult
from repro.serving import RaqletServer, ServingPool

from tests.serving.test_pool import CITY_QUERY, FACTS, REACH_QUERY, SCHEMA


@pytest.fixture
def pool():
    pool = ServingPool(Raqlet(SCHEMA), FACTS, workers=2)
    pool.prepare("city", CITY_QUERY)
    yield pool
    pool.close()


class _Client:
    """Newline-delimited JSON over an asyncio stream pair."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer

    async def request(self, payload):
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    async def send_raw(self, data: bytes):
        self._writer.write(data)
        await self._writer.drain()
        return json.loads(await self._reader.readline())

    def close(self):
        self._writer.close()


async def _connect(server):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    return _Client(reader, writer)


def _with_server(pool, scenario):
    """Start a server on a free port, run ``scenario(client)``, tear down."""

    async def main():
        server = RaqletServer(pool)
        await server.start()
        client = await _connect(server)
        try:
            return await scenario(server, client)
        finally:
            client.close()
            await server.stop()

    return asyncio.run(main())


def test_ping_run_and_stats(pool):
    async def scenario(server, client):
        pong = await client.request({"op": "ping"})
        assert pong["ok"] and pong["pong"]

        reply = await client.request(
            {"op": "run", "name": "city", "params": {"personId": 42}}
        )
        assert reply["ok"]
        result = QueryResult.from_jsonable(reply)
        assert result.row_set() == {("Ada", 1)}
        assert reply["epoch"] == pool.epoch
        assert "worker" in reply

        stats = await client.request({"op": "stats"})
        assert stats["ok"]
        assert stats["stats"]["executed_count"] == 1

    _with_server(pool, scenario)


def test_prepare_over_the_wire(pool):
    async def scenario(server, client):
        reply = await client.request(
            {"op": "prepare", "name": "reach", "query": REACH_QUERY}
        )
        assert reply["ok"]
        assert reply["params"] == ["personId"]
        reply = await client.request(
            {"op": "run", "name": "reach", "params": {"personId": 42}}
        )
        assert QueryResult.from_jsonable(reply).row_set() == {(43,), (44,), (45,)}

    _with_server(pool, scenario)


def test_mutate_changes_later_answers(pool):
    async def scenario(server, client):
        await client.request(
            {"op": "prepare", "name": "reach", "query": REACH_QUERY}
        )
        before = await client.request(
            {"op": "run", "name": "reach", "params": {"personId": 44}}
        )
        assert QueryResult.from_jsonable(before).row_set() == {(45,)}
        mutated = await client.request(
            {"op": "mutate", "insert": {"Person_KNOWS_Person": [[45, 42, 9]]}}
        )
        assert mutated["ok"] and mutated["inserted"] == 1
        assert mutated["epoch"] == before["epoch"] + 1
        after = await client.request(
            {"op": "run", "name": "reach", "params": {"personId": 44}}
        )
        assert QueryResult.from_jsonable(after).row_set() == {
            (45,), (42,), (43,), (44,),
        }

    _with_server(pool, scenario)


def test_error_responses_keep_the_connection_alive(pool):
    async def scenario(server, client):
        bad = await client.send_raw(b"{not json\n")
        assert not bad["ok"] and bad["code"] == "bad-request"
        bad = await client.request({"op": "warp"})
        assert not bad["ok"] and bad["code"] == "bad-request"
        bad = await client.request({"op": "run", "name": "nope"})
        assert not bad["ok"] and bad["code"] == "error"
        assert "unknown prepared statement" in bad["error"]
        bad = await client.request({"op": "run", "name": "city", "params": []})
        assert not bad["ok"] and bad["code"] == "bad-request"
        # the connection survived four bad requests
        good = await client.request(
            {"op": "run", "name": "city", "params": {"personId": 43}}
        )
        assert good["ok"]

    _with_server(pool, scenario)


def test_concurrent_connections(pool):
    async def scenario(server, client):
        clients = [await _connect(server) for _ in range(4)]
        try:
            replies = await asyncio.gather(
                *(
                    c.request({"op": "run", "name": "city", "params": {"personId": pid}})
                    for c, pid in zip(clients, (42, 43, 44, 45))
                )
            )
            rows = [QueryResult.from_jsonable(reply).row_set() for reply in replies]
            assert rows == [
                {("Ada", 1)}, {("Alan", 2)}, {("Edgar", 1)}, {("Grace", 2)},
            ]
        finally:
            for c in clients:
                c.close()

    _with_server(pool, scenario)


def test_shutdown_request_stops_the_server(pool):
    async def main():
        server = RaqletServer(pool)
        await server.start()
        serve_task = asyncio.create_task(server.serve_until_shutdown())
        client = await _connect(server)
        reply = await client.request({"op": "shutdown"})
        assert reply["ok"] and reply["stopping"]
        client.close()
        await asyncio.wait_for(serve_task, timeout=30)
        # the listening socket is gone
        host, port = server.address
        with pytest.raises(OSError):
            await asyncio.open_connection(host, port)

    asyncio.run(main())


# -- subscriptions over the wire ---------------------------------------------


def test_subscribe_mutate_notify_unsubscribe(pool):
    """The full standing-query round trip: subscribe, mutate from another
    connection, receive the pushed notification frame, unsubscribe."""

    async def scenario(server, client):
        await client.request(
            {"op": "prepare", "name": "reach", "query": REACH_QUERY}
        )
        reply = await client.request(
            {"op": "subscribe", "name": "reach", "params": {"personId": 44}}
        )
        assert reply["ok"]
        sid = reply["sid"]
        assert reply["name"] == "reach"

        writer = await _connect(server)
        try:
            mutated = await writer.request(
                {"op": "mutate", "insert": {"Person_KNOWS_Person": [[45, 42, 9]]}}
            )
            assert mutated["ok"]
            # the subscriber's next line is the pushed frame, no request sent
            frame = json.loads(
                await asyncio.wait_for(client._reader.readline(), timeout=10)
            )
            assert frame["event"] == "notification"
            assert frame["sid"] == sid and frame["name"] == "reach"
            assert frame["epoch"] == mutated["epoch"]
            assert {tuple(row) for row in frame["added"]} == {(42,), (43,), (44,)}
            assert frame["removed"] == []
        finally:
            writer.close()

        gone = await client.request({"op": "unsubscribe", "sid": sid})
        assert gone["ok"] and gone["removed"]
        again = await client.request({"op": "unsubscribe", "sid": sid})
        assert again["ok"] and not again["removed"]
        assert pool.stats()["subscription_count"] == 0

    _with_server(pool, scenario)


def test_subscribe_validation_errors(pool):
    async def scenario(server, client):
        bad = await client.request({"op": "subscribe"})
        assert not bad["ok"] and bad["code"] == "bad-request"
        bad = await client.request({"op": "subscribe", "name": "missing"})
        assert not bad["ok"]
        bad = await client.request({"op": "unsubscribe"})
        assert not bad["ok"] and bad["code"] == "bad-request"

    _with_server(pool, scenario)


def test_connection_close_tears_down_subscriptions(pool):
    """A dropped connection must not leave dangling standing queries."""

    async def scenario(server, client):
        await client.request(
            {"op": "prepare", "name": "reach", "query": REACH_QUERY}
        )
        subscriber = await _connect(server)
        reply = await subscriber.request(
            {"op": "subscribe", "name": "reach", "params": {"personId": 44}}
        )
        assert reply["ok"]
        assert pool.stats()["subscription_count"] == 1
        subscriber.close()
        for _ in range(200):
            if pool.stats()["subscription_count"] == 0:
                break
            await asyncio.sleep(0.02)
        assert pool.stats()["subscription_count"] == 0
        # later mutations push nothing anywhere and break nothing
        mutated = await client.request(
            {"op": "mutate", "insert": {"Person_KNOWS_Person": [[45, 42, 9]]}}
        )
        assert mutated["ok"]

    _with_server(pool, scenario)
