"""Tests for the PG-Schema model."""

import pytest

from repro.common.errors import SchemaError
from repro.schema.pg_schema import (
    EdgeType,
    NodeType,
    PGSchema,
    PropertyDef,
    PropertyType,
    normalize_edge_label,
)


def _person():
    return NodeType(
        type_name="personType",
        label="Person",
        properties=(
            PropertyDef("id", PropertyType.INT),
            PropertyDef("firstName", PropertyType.STRING),
        ),
    )


def _city():
    return NodeType(
        type_name="cityType",
        label="City",
        properties=(PropertyDef("id", PropertyType.INT), PropertyDef("name", PropertyType.STRING)),
    )


def _located():
    return EdgeType(
        type_name="locationType",
        label="isLocatedIn",
        source="personType",
        target="cityType",
        properties=(PropertyDef("id", PropertyType.INT),),
    )


def test_property_type_aliases():
    assert PropertyType.from_name("integer") is PropertyType.INT
    assert PropertyType.from_name("VARCHAR") is PropertyType.STRING
    assert PropertyType.from_name("double") is PropertyType.FLOAT
    assert PropertyType.from_name("boolean") is PropertyType.BOOL
    assert PropertyType.from_name("timestamp") is PropertyType.DATE


def test_property_type_unknown_raises():
    with pytest.raises(SchemaError):
        PropertyType.from_name("geometry")


def test_node_type_property_lookup():
    person = _person()
    assert person.property_type("firstName") is PropertyType.STRING
    assert person.has_property("id")
    assert not person.has_property("age")
    with pytest.raises(SchemaError):
        person.property_type("age")


def test_edge_type_property_lookup():
    edge = _located()
    assert edge.property_type("id") is PropertyType.INT
    assert edge.property_names() == ["id"]
    with pytest.raises(SchemaError):
        edge.property_type("weight")


def test_schema_validates_duplicate_node_labels():
    with pytest.raises(SchemaError):
        PGSchema(node_types=[_person(), _person()])


def test_schema_validates_unknown_edge_endpoint():
    bad_edge = EdgeType(
        type_name="x", label="rel", source="personType", target="ghostType"
    )
    with pytest.raises(SchemaError):
        PGSchema(node_types=[_person()], edge_types=[bad_edge])


def test_node_type_lookup_by_label():
    schema = PGSchema(node_types=[_person(), _city()], edge_types=[_located()])
    assert schema.node_type("City").label == "City"
    assert schema.has_node_label("Person")
    assert not schema.has_node_label("Forum")
    with pytest.raises(SchemaError):
        schema.node_type("Forum")


def test_resolve_node_label_accepts_type_name_or_label():
    schema = PGSchema(node_types=[_person(), _city()], edge_types=[_located()])
    assert schema.resolve_node_label("personType") == "Person"
    assert schema.resolve_node_label("Person") == "Person"
    with pytest.raises(SchemaError):
        schema.resolve_node_label("nope")


def test_edge_types_by_label_normalises_case():
    schema = PGSchema(node_types=[_person(), _city()], edge_types=[_located()])
    assert len(schema.edge_types_by_label("IS_LOCATED_IN")) == 1
    assert len(schema.edge_types_by_label("isLocatedIn")) == 1
    assert schema.edge_types_by_label("KNOWS") == []


def test_edge_type_between_filters_on_endpoints():
    schema = PGSchema(node_types=[_person(), _city()], edge_types=[_located()])
    edge = schema.edge_type_between("IS_LOCATED_IN", "Person", "City")
    assert edge.label == "isLocatedIn"
    with pytest.raises(SchemaError):
        schema.edge_type_between("IS_LOCATED_IN", "City", "Person")


def test_edge_type_between_ambiguous():
    other = EdgeType(type_name="l2", label="isLocatedIn", source="cityType", target="cityType")
    schema = PGSchema(node_types=[_person(), _city()], edge_types=[_located(), other])
    with pytest.raises(SchemaError):
        schema.edge_type_between("isLocatedIn")


def test_build_helper():
    schema = PGSchema.build(
        nodes=[("A", [("id", "INT")]), ("B", [("id", "INT"), ("name", "STRING")])],
        edges=[("rel", "A", "B", [("weight", "INT")])],
    )
    assert schema.node_labels() == ["A", "B"]
    assert schema.edge_labels() == ["rel"]
    assert schema.edge_types[0].properties[0].type is PropertyType.INT


def test_normalize_edge_label():
    assert normalize_edge_label("isLocatedIn") == "IS_LOCATED_IN"
    assert normalize_edge_label("KNOWS") == "KNOWS"
    assert normalize_edge_label("HAS_CREATOR") == "HAS_CREATOR"
    assert normalize_edge_label("replyOf") == "REPLY_OF"
