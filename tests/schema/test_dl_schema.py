"""Tests for the DL-Schema model."""

import pytest

from repro.common.errors import SchemaError
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType
from repro.schema.pg_schema import PropertyType


def _relation():
    return DLRelation(
        name="Person",
        columns=(
            DLColumn("id", DLType.NUMBER),
            DLColumn("firstName", DLType.SYMBOL),
        ),
    )


def test_type_mapping_from_property_types():
    assert DLType.from_property_type(PropertyType.INT) is DLType.NUMBER
    assert DLType.from_property_type(PropertyType.STRING) is DLType.SYMBOL
    assert DLType.from_property_type(PropertyType.FLOAT) is DLType.FLOAT
    assert DLType.from_property_type(PropertyType.BOOL) is DLType.NUMBER
    assert DLType.from_property_type(PropertyType.DATE) is DLType.NUMBER


def test_python_and_sql_types():
    assert DLType.NUMBER.python_type() is int
    assert DLType.SYMBOL.python_type() is str
    assert DLType.FLOAT.python_type() is float
    assert DLType.NUMBER.sql_type() == "BIGINT"
    assert DLType.SYMBOL.sql_type() == "VARCHAR"


def test_relation_basics():
    relation = _relation()
    assert relation.arity == 2
    assert relation.column_names() == ["id", "firstName"]
    assert relation.column_types() == [DLType.NUMBER, DLType.SYMBOL]
    assert relation.column_index("firstName") == 1
    assert relation.has_column("id")
    assert not relation.has_column("lastName")
    with pytest.raises(SchemaError):
        relation.column_index("lastName")


def test_relation_str():
    assert str(_relation()) == "Person(id:number, firstName:symbol)"


def test_schema_add_and_get():
    schema = DLSchema()
    schema.add(_relation())
    assert "Person" in schema
    assert schema.get("Person").arity == 2
    assert schema.maybe_get("City") is None
    with pytest.raises(SchemaError):
        schema.get("City")


def test_schema_rejects_duplicates():
    schema = DLSchema()
    schema.add(_relation())
    with pytest.raises(SchemaError):
        schema.add(_relation())


def test_edb_and_idb_partition():
    schema = DLSchema()
    schema.add(_relation())
    schema.add(DLRelation("View", (DLColumn("x", DLType.NUMBER),), is_edb=False))
    assert [r.name for r in schema.edb_relations()] == ["Person"]
    assert [r.name for r in schema.idb_relations()] == ["View"]
    assert len(schema) == 2


def test_schema_copy_is_independent():
    schema = DLSchema()
    schema.add(_relation())
    copy = schema.copy()
    copy.add(DLRelation("Extra", (DLColumn("x", DLType.NUMBER),)))
    assert "Extra" in copy
    assert "Extra" not in schema


def test_build_helper():
    schema = DLSchema.build([("edge", [("src", "number"), ("dst", "number")])])
    assert schema.get("edge").column_names() == ["src", "dst"]
