"""Tests for the textual PG-Schema parser."""

import pytest

from repro.common.errors import ParseError, SchemaError
from repro.schema.pg_parser import parse_pg_schema
from repro.schema.pg_schema import PropertyType

from tests.conftest import PAPER_SCHEMA_TEXT


def test_parses_paper_schema():
    schema = parse_pg_schema(PAPER_SCHEMA_TEXT)
    assert schema.node_labels() == ["Person", "City"]
    assert schema.edge_labels() == ["isLocatedIn"]


def test_node_properties_preserved_in_order():
    schema = parse_pg_schema(PAPER_SCHEMA_TEXT)
    person = schema.node_type("Person")
    assert person.property_names() == ["id", "firstName", "locationIP"]
    assert person.property_type("id") is PropertyType.INT
    assert person.property_type("locationIP") is PropertyType.STRING


def test_edge_endpoints_resolved_to_labels():
    schema = parse_pg_schema(PAPER_SCHEMA_TEXT)
    edge = schema.edge_types[0]
    assert schema.resolve_node_label(edge.source) == "Person"
    assert schema.resolve_node_label(edge.target) == "City"


def test_schema_without_properties():
    schema = parse_pg_schema(
        "CREATE GRAPH { (aType: A), (bType: B), (:aType)-[rType: rel]->(:bType) }"
    )
    assert schema.node_type("A").properties == ()
    assert schema.edge_types[0].properties == ()


def test_optional_graph_name_accepted():
    schema = parse_pg_schema("CREATE GRAPH social { (aType: A { id INT }) }")
    assert schema.node_labels() == ["A"]


def test_comments_are_ignored():
    schema = parse_pg_schema(
        """
        CREATE GRAPH {
          // people
          (aType: A { id INT }),
          # cities
          (bType: B { id INT })
        }
        """
    )
    assert schema.node_labels() == ["A", "B"]


def test_trailing_comma_tolerated():
    schema = parse_pg_schema("CREATE GRAPH { (aType: A { id INT }), }")
    assert schema.node_labels() == ["A"]


def test_missing_create_keyword_raises():
    with pytest.raises(ParseError):
        parse_pg_schema("GRAPH { (aType: A) }")


def test_unclosed_braces_raise():
    with pytest.raises(ParseError):
        parse_pg_schema("CREATE GRAPH { (aType: A { id INT })")


def test_unknown_property_type_raises():
    with pytest.raises(SchemaError):
        parse_pg_schema("CREATE GRAPH { (aType: A { id GEOMETRY }) }")


def test_edge_referencing_unknown_type_raises():
    with pytest.raises(SchemaError):
        parse_pg_schema(
            "CREATE GRAPH { (aType: A), (:aType)-[rType: rel]->(:ghost) }"
        )


def test_unexpected_character_reports_location():
    with pytest.raises(ParseError) as excinfo:
        parse_pg_schema("CREATE GRAPH { (aType: A { id INT }) @ }")
    assert excinfo.value.location is not None
