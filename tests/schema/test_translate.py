"""Tests for the PG-Schema to DL-Schema translation (paper Figure 2)."""

import pytest

from repro.common.errors import SchemaError
from repro.schema.dl_schema import DLType
from repro.schema.pg_parser import parse_pg_schema
from repro.schema.pg_schema import PGSchema
from repro.schema.translate import edge_label_to_snake, pg_to_dl_schema

from tests.conftest import PAPER_SCHEMA_TEXT


@pytest.fixture(scope="module")
def mapping():
    return pg_to_dl_schema(parse_pg_schema(PAPER_SCHEMA_TEXT))


def test_figure2_node_relations(mapping):
    person = mapping.dl_schema.get("Person")
    assert person.column_names() == ["id", "firstName", "locationIP"]
    assert person.column_types() == [DLType.NUMBER, DLType.SYMBOL, DLType.SYMBOL]
    city = mapping.dl_schema.get("City")
    assert city.column_names() == ["id", "name"]


def test_figure2_edge_relation(mapping):
    edge = mapping.dl_schema.get("Person_IS_LOCATED_IN_City")
    assert edge.column_names() == ["id1", "id2", "id"]
    assert edge.column_types() == [DLType.NUMBER, DLType.NUMBER, DLType.NUMBER]


def test_all_relations_are_edbs(mapping):
    assert all(relation.is_edb for relation in mapping.dl_schema)


def test_node_relation_lookup(mapping):
    assert mapping.node_relation("Person").name == "Person"
    with pytest.raises(SchemaError):
        mapping.node_relation("Forum")


def test_node_property_index(mapping):
    assert mapping.node_property_index("Person", "firstName") == 1
    assert mapping.node_key_index("Person") == 0


def test_edge_relation_lookup_by_query_label(mapping):
    relation = mapping.edge_relation("IS_LOCATED_IN", "Person", "City")
    assert relation.name == "Person_IS_LOCATED_IN_City"
    relation = mapping.edge_relation("isLocatedIn")
    assert relation.name == "Person_IS_LOCATED_IN_City"


def test_edge_endpoints(mapping):
    assert mapping.edge_endpoints("Person_IS_LOCATED_IN_City") == ("Person", "City")
    with pytest.raises(SchemaError):
        mapping.edge_endpoints("Person")


def test_relation_kind_predicates(mapping):
    assert mapping.is_node_relation("Person")
    assert not mapping.is_node_relation("Person_IS_LOCATED_IN_City")
    assert mapping.is_edge_relation("Person_IS_LOCATED_IN_City")
    assert not mapping.is_edge_relation("City")


def test_edge_label_to_snake():
    assert edge_label_to_snake("isLocatedIn") == "IS_LOCATED_IN"
    assert edge_label_to_snake("knows") == "KNOWS"
    assert edge_label_to_snake("HAS_TAG") == "HAS_TAG"


def test_node_without_id_gets_synthetic_key():
    schema = PGSchema.build(nodes=[("Tagless", [("name", "STRING")])], edges=[])
    mapping = pg_to_dl_schema(schema)
    relation = mapping.dl_schema.get("Tagless")
    assert relation.column_names()[0] == "id"
    assert relation.column_types()[0] is DLType.NUMBER


def test_id_column_moved_to_front():
    schema = PGSchema.build(
        nodes=[("Thing", [("name", "STRING"), ("id", "INT")])], edges=[]
    )
    mapping = pg_to_dl_schema(schema)
    assert mapping.dl_schema.get("Thing").column_names() == ["id", "name"]


def test_duplicate_property_rejected():
    schema = PGSchema.build(
        nodes=[("Thing", [("id", "INT"), ("name", "STRING"), ("name", "STRING")])],
        edges=[],
    )
    with pytest.raises(SchemaError):
        pg_to_dl_schema(schema)


def test_edge_property_named_id1_rejected():
    schema = PGSchema.build(
        nodes=[("A", [("id", "INT")]), ("B", [("id", "INT")])],
        edges=[("rel", "A", "B", [("id1", "INT")])],
    )
    with pytest.raises(SchemaError):
        pg_to_dl_schema(schema)


def test_snb_schema_translates_all_edges():
    from repro.ldbc.schema import snb_schema_mapping

    mapping = snb_schema_mapping()
    expected = {
        "Person_KNOWS_Person",
        "Person_IS_LOCATED_IN_City",
        "City_IS_PART_OF_Country",
        "Person_HAS_INTEREST_Tag",
        "Message_HAS_CREATOR_Person",
        "Message_HAS_TAG_Tag",
        "Person_LIKES_Message",
        "Forum_HAS_MEMBER_Person",
        "Forum_HAS_MODERATOR_Person",
        "Forum_CONTAINER_OF_Message",
        "Message_REPLY_OF_Message",
    }
    assert expected <= set(mapping.dl_schema.relations)
