"""Concurrency regression tests for the shared executor caches.

The serving pool shares one executor (and therefore one closure cache, one
``ValueDict``, one columnar lowering/encoding cache) across every worker
session.  These hammers drive the caches from many threads at once and
assert two things: no corruption (every thread reads back correct results)
and no duplicated work beyond the benign races the design allows.

Pure-Python threads interleave at bytecode granularity under the GIL, so
check-then-act races here are real — the hammers reliably caught them
before the double-checked locking went in.
"""

from __future__ import annotations

import threading

import pytest

from repro.dlir.core import Atom, Rule, Var
from repro.engines.datalog import CompiledExecutor, FactStore, plan_rule


def _hammer(worker, threads=8, iterations=25):
    """Run ``worker(thread_index)`` concurrently; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        try:
            for _ in range(iterations):
                worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced to pytest
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


def _chain_rule(head: str, first: str, second: str) -> Rule:
    return Rule(
        Atom(head, (Var("x"), Var("z"))),
        (Atom(first, (Var("x"), Var("y"))), Atom(second, (Var("y"), Var("z")))),
    )


def test_compiled_closure_cache_under_contention():
    """N threads × M structurally distinct plans: every evaluation is
    correct and each structure is compiled at most once."""
    store = FactStore()
    for index in range(6):
        store.add_many(f"e{index}", [(1, 2), (2, 3), (3, 4)])
    executor = CompiledExecutor()
    rules = [_chain_rule(f"q{index}", f"e{index}", f"e{index}") for index in range(6)]
    shapes = [(rule, plan_rule(rule, store)) for rule in rules]
    expected = {(1, 3), (2, 4)}

    def worker(thread_index):
        for rule, plan in shapes:
            compiled = executor.compiled_for(plan)
            assert compiled is not None
            derived = executor.evaluate_rule(rule, store, plan=plan)
            assert derived == expected

    _hammer(worker)
    # one compile per distinct structure — the lock makes the
    # check-then-compile atomic, so contention cannot duplicate work
    assert executor.compile_count == len(shapes)


def test_value_dict_bijection_under_contention():
    """Concurrent encoders agree on one code per value and decode returns
    the exact original (including across the side-array resync)."""
    np = pytest.importorskip("numpy")
    from repro.engines.datalog.executor_columnar import ValueDict

    vd = ValueDict()
    values = [f"v{index}" for index in range(40)] + list(range(40))
    codes_seen = [dict() for _ in range(8)]

    def worker(thread_index):
        mine = codes_seen[thread_index]
        # interleave scalar and batch encoding of an overlapping value set
        for value in values[thread_index::3]:
            mine[value] = vd.encode_one(value)
        array = vd.encode_scalars(values)
        for value, code in zip(values, array.tolist()):
            previous = mine.setdefault(value, code)
            assert previous == code

    _hammer(worker)
    # cross-thread agreement: every thread saw the same value -> code map
    merged = {}
    for mine in codes_seen:
        for value, code in mine.items():
            assert merged.setdefault(value, code) == code
    # and decoding returns the original values
    array = vd.encode_scalars(values)
    assert list(vd.decode(array)) == values


def test_columnar_store_cache_under_contention():
    """Concurrent scans of the same relations share one encoding each;
    ``store_encode_count`` proves no thread re-encoded a cached relation."""
    pytest.importorskip("numpy")
    from repro.engines.datalog.executor_columnar import ColumnarExecutor

    store = FactStore()
    store.add_many("edge", [(i, i + 1) for i in range(50)])
    store.add_many("label", [(i, f"l{i % 5}") for i in range(50)])
    executor = ColumnarExecutor()
    rules = [_chain_rule("q", "edge", "edge"), _chain_rule("r", "edge", "label")]
    shapes = [(rule, plan_rule(rule, store)) for rule in rules]
    expected = [
        executor.evaluate_rule(rule, store, plan=plan) for rule, plan in shapes
    ]
    encoded_once = executor.store_encode_count
    assert encoded_once >= 2  # edge + label went through the encoder

    def worker(thread_index):
        for (rule, plan), want in zip(shapes, expected):
            assert executor.evaluate_rule(rule, store, plan=plan) == want

    _hammer(worker)
    # the hot data never changed, so no further encodes happened at all
    assert executor.store_encode_count == encoded_once
