"""Unit tests for the compiled closure executor.

The differential suite (`test_store_differential.py`) proves whole-program
equivalence across executors; these tests pin the executor's own machinery:
closure caching, the interpreter fallback, error-behaviour parity (unsafe
rules, delta mismatch, mixed-type comparisons, division), selection
threading (engine option, ``REPRO_EXECUTOR``), and the batched probe path
on the SQLite store.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import ExecutionError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Rule,
    Var,
)
from repro.engines.datalog import (
    CompiledExecutor,
    DatalogEngine,
    FactStore,
    InterpretedExecutor,
    create_executor,
    plan_rule,
)
from repro.engines.datalog.evaluation import evaluate_rule


@pytest.fixture()
def store():
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3), (3, 4), (2, 4), (4, 1)])
    store.add_many("node", [(i,) for i in range(1, 6)])
    store.add_many("label", [(1, "a"), (2, "b"), (4, "a")])
    return store


def _assert_executors_agree(rule, store, **kwargs):
    compiled = CompiledExecutor().evaluate_rule(rule, store, **kwargs)
    interpreted = evaluate_rule(rule, store, **kwargs)
    assert compiled == interpreted
    return compiled


# -- result equivalence on targeted rule shapes ------------------------------


def test_join_negation_and_guard_agree(store):
    rule = Rule(
        Atom("q", (Var("x"), Var("z"))),
        (
            Atom("edge", (Var("x"), Var("y"))),
            Atom("edge", (Var("y"), Var("z"))),
            NegatedAtom(Atom("edge", (Var("x"), Var("z")))),
            Comparison("<>", Var("x"), Var("z")),
        ),
    )
    derived = _assert_executors_agree(rule, store)
    assert derived  # not vacuous


def test_later_negation_with_raising_key_is_not_batched(store):
    """A later negation whose key uses arithmetic must not be pre-evaluated
    for rows an earlier negation rejects: the interpreter rejects (2, 0) at
    ``!a(x)`` and never computes ``10 / y``, so eager level-wide key
    collection would raise a division-by-zero the interpreter doesn't."""
    store.add_many("p", [(1, 2), (2, 0)])
    store.add_many("a", [(2,)])
    rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("p", (Var("x"), Var("y"))),
            NegatedAtom(Atom("a", (Var("x"),))),
            NegatedAtom(Atom("b", (ArithExpr("/", Const(10), Var("y")),))),
        ),
    )
    derived = _assert_executors_agree(rule, store)
    assert derived == {(1,)}


def test_first_negation_with_raising_key_still_agrees(store):
    """Arithmetic in the *first* negation's key is evaluated for exactly the
    rows that pass the guard ops on both executors — including the raise."""
    store.add_many("p", [(1, 2), (2, 0)])
    rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("p", (Var("x"), Var("y"))),
            NegatedAtom(Atom("b", (ArithExpr("/", Const(10), Var("y")),))),
        ),
    )
    with pytest.raises(ExecutionError):
        CompiledExecutor().evaluate_rule(rule, store)
    with pytest.raises(ExecutionError):
        evaluate_rule(rule, store)


def test_delta_restricted_evaluation_agrees(store):
    rule = Rule(
        Atom("path", (Var("x"), Var("z"))),
        (Atom("path", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))),
    )
    store.add_many("path", [(1, 2), (2, 3), (1, 3)])
    plan = plan_rule(rule, store, delta_index=0, delta_size=2)
    delta = [(1, 3), (2, 3)]
    derived = _assert_executors_agree(
        rule, store, delta_index=0, delta_rows=delta, plan=plan
    )
    assert derived
    # The same (delta-variant) plan is also a valid full plan.
    _assert_executors_agree(rule, store, plan=plan)


def test_aggregate_rule_agrees(store):
    rule = Rule(
        Atom("outdeg", (Var("x"), Var("n"))),
        (Atom("edge", (Var("x"), Var("y"))),),
        aggregations=(Aggregation("count", Var("n"), argument=Var("y")),),
    )
    derived = _assert_executors_agree(rule, store)
    assert (2, 2) in derived  # node 2 has two outgoing edges


def test_division_semantics_agree(store):
    rule = Rule(
        Atom("q", (Var("x"), Var("h"))),
        (
            Atom("edge", (Var("x"), Var("y"))),
            Comparison("=", Var("h"), ArithExpr("/", Var("y"), Const(2))),
        ),
    )
    derived = _assert_executors_agree(rule, store)
    assert derived == {(1, 1), (2, 1), (3, 2), (2, 2), (4, 0)}


def test_division_by_zero_raises_execution_error(store):
    rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("node", (Var("x"),)),
            Comparison("=", Var("w"), ArithExpr("/", Var("x"), Const(0))),
        ),
    )
    with pytest.raises(ExecutionError):
        CompiledExecutor().evaluate_rule(rule, store)


def test_non_finite_float_constants_compile(store):
    """``repr(inf)``/``repr(nan)`` are bare names — codegen must not emit them."""
    import math

    inf_rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("node", (Var("x"),)),
            Comparison("<", Var("x"), Const(float("inf"))),
        ),
    )
    derived = _assert_executors_agree(inf_rule, store)
    assert derived == {(i,) for i in range(1, 6)}

    nan_rule = Rule(
        Atom("q", (Var("x"), Const(float("nan")))),
        (Atom("node", (Var("x"),)),),
    )
    compiled = CompiledExecutor().evaluate_rule(nan_rule, store)
    interpreted = evaluate_rule(nan_rule, store)
    # NaN != NaN, so compare structure instead of set equality.
    assert len(compiled) == len(interpreted) == 5
    assert all(math.isnan(row[1]) for row in compiled)


def test_mixed_type_comparison_raises_like_interpreter(store):
    rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("label", (Var("x"), Var("lab"))),
            Comparison("<", Var("lab"), Const(3)),
        ),
    )
    with pytest.raises(ExecutionError, match="cannot compare"):
        CompiledExecutor().evaluate_rule(rule, store)
    with pytest.raises(ExecutionError, match="cannot compare"):
        evaluate_rule(rule, store)


def test_unsafe_rule_raises_only_when_solutions_exist(store):
    rule = Rule(
        Atom("q", (Var("x"), Var("w"))),
        (Atom("node", (Var("x"),)), Comparison("<", Var("w"), Const(3))),
    )
    with pytest.raises(ExecutionError, match="unbound variables"):
        CompiledExecutor().evaluate_rule(rule, store)
    # With no matching rows the unsafe comparison is never reached.
    empty = FactStore()
    assert CompiledExecutor().evaluate_rule(rule, empty) == set()


def test_mismatched_delta_plan_is_rejected(store):
    rule = Rule(
        Atom("path", (Var("x"), Var("z"))),
        (Atom("path", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))),
    )
    store.add_many("path", [(1, 2)])
    plan = plan_rule(rule, store, delta_index=0, delta_size=1)
    with pytest.raises(ExecutionError, match="delta position"):
        CompiledExecutor().evaluate_rule(
            rule, store, delta_index=1, delta_rows=[(1, 2)], plan=plan
        )


# -- caching and fallback ----------------------------------------------------


def test_closures_are_cached_per_plan_structure(store):
    rule = Rule(Atom("q", (Var("x"),)), (Atom("node", (Var("x"),)),))
    executor = CompiledExecutor()
    plan = plan_rule(rule, store)
    first = executor.compiled_for(plan)
    assert first is executor.compiled_for(plan)
    # A structurally equal plan built from scratch hits the same cache entry.
    assert first is executor.compiled_for(plan_rule(rule, store))
    # A delta variant is a different plan and compiles separately.
    variant = executor.compiled_for(plan_rule(rule, store, delta_index=0))
    assert variant is not first
    assert executor.fallback_count == 0


def test_uncompilable_plan_falls_back_to_the_interpreter(store):
    rule = Rule(
        Atom("path", (Var("x"), Var("z"))),
        (Atom("path", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))),
    )
    store.add_many("path", [(1, 2), (2, 3)])
    plan = plan_rule(rule, store)
    # A delta position no step carries: the generator refuses (the planner
    # never produces this), and evaluation must fall back to the interpreter.
    broken = dataclasses.replace(plan, delta_index=7)
    executor = CompiledExecutor()
    assert executor.compiled_for(broken) is None
    assert executor.fallback_count == 1
    derived = executor.evaluate_rule(rule, store, plan=broken)
    assert derived == evaluate_rule(rule, store, plan=broken)
    # The failure is cached: evaluating again does not recount.
    executor.evaluate_rule(rule, store, plan=broken)
    assert executor.fallback_count == 1


# -- selection threading -----------------------------------------------------


def test_create_executor_resolution(monkeypatch):
    assert create_executor("interpreted").name == "interpreted"
    assert create_executor("compiled").name == "compiled"
    existing = CompiledExecutor()
    assert create_executor(existing) is existing
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert create_executor(None).name == "compiled"
    monkeypatch.setenv("REPRO_EXECUTOR", "interpreted")
    assert create_executor(None).name == "interpreted"
    with pytest.raises(ValueError):
        create_executor("bytecode")


def _tc_program():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    return builder.build()


TC_FACTS = {"edge": [(0, 1), (1, 2), (2, 3), (3, 1)]}


def test_engine_threads_executor_selection(monkeypatch):
    compiled_engine = DatalogEngine(_tc_program(), TC_FACTS, executor="compiled")
    interpreted_engine = DatalogEngine(
        _tc_program(), TC_FACTS, executor="interpreted"
    )
    assert isinstance(compiled_engine.executor, CompiledExecutor)
    assert isinstance(interpreted_engine.executor, InterpretedExecutor)
    assert compiled_engine.query("tc").same_rows(interpreted_engine.query("tc"))

    monkeypatch.setenv("REPRO_EXECUTOR", "interpreted")
    env_engine = DatalogEngine(_tc_program(), TC_FACTS)
    assert env_engine.executor.name == "interpreted"


def test_compiled_executor_batches_probes_on_sqlite():
    """Each join step of each application costs one lookup_many SQL query."""
    engine = DatalogEngine(
        _tc_program(), TC_FACTS, store="sqlite", executor="compiled"
    )
    engine.run()
    store = engine.store
    assert store.batch_probe_count > 0
    assert store.batch_probe_query_count == store.batch_probe_count
    # One batched probe per non-delta join step per rule application: the
    # recursive rule has one such step and the stratum ran
    # ``iteration_count`` rounds (initial full round included).
    assert store.batch_probe_count <= engine.iteration_count("tc") + 1
    store.close()


def test_cli_exposes_executor_flag(capsys):
    from repro.cli import main

    assert main(["ldbc", "--query", "sq1", "--scale", "30",
                 "--executor", "compiled"]) == 0
    out = capsys.readouterr().out
    assert "engines agree: True" in out
