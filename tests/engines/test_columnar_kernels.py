"""Property-based contract tests for the columnar executor's kernels.

Each vectorised kernel — dictionary encoding, hash join, membership
(negation probe), comparison masks, arithmetic, grouped reductions — is run
against an independent **tuple-loop reference** on generated columns
covering ``None``, NaN, 64-bit integers and mixed dtypes.  The encoding
round-trip pins the NULL/NaN set-semantics already fixed for SQLite in
PR 2: ``None`` is an ordinary joinable value, ``1``/``1.0``/``True``
collapse to one key, and NaN follows *container* semantics (the same NaN
object matches itself in joins, negation probes and dedup — exactly like a
Python set or a store hash index — while the ``=`` guard still rejects it,
like Python ``==``).

:class:`ColumnarFallback` is a **legal outcome** for the value-level
kernels (arithmetic, numeric materialisation, reductions): it routes the
rule application to the compiled executor, which is exact by construction.
The contract here is one-sided soundness — whenever a kernel *does* answer,
the answer must equal the tuple-loop reference.
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy", reason="columnar kernels require NumPy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.datalog.executor_columnar import (
    ColumnarFallback,
    ValueDict,
    arith_kernel,
    compare_codes_kernel,
    group_rows_kernel,
    grouped_reduce_kernel,
    hash_join_kernel,
    membership_kernel,
)

#: one shared NaN object — container semantics make identity significant
NAN = float("nan")

#: the value pool: None, NaN, numeric collapse triples, 64-bit extremes,
#: floats, strings — everything the stores can hold
_values = st.sampled_from(
    [
        None,
        NAN,
        True,
        False,
        0,
        1,
        1.0,
        -1,
        2,
        2.5,
        -2.5,
        2**63 - 1,
        -(2**63),
        2**53 + 1,
        "a",
        "b",
        "",
    ]
)

_small_ints = st.integers(min_value=-5, max_value=5)
_int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def _same_key(a, b) -> bool:
    """Tuple/set/dict key equality: identity shortcut, then ``==``."""
    return a is b or a == b


def _encode(vd: ValueDict, values):
    return vd.encode_scalars(list(values))


# -- dictionary encoding ------------------------------------------------------


@given(values=st.lists(_values, max_size=30))
@settings(max_examples=100, deadline=None)
def test_encoding_matches_dict_key_semantics(values):
    """Two values share a code exactly when a dict/set would treat them as
    one key — the store's own semantics."""
    vd = ValueDict()
    codes = _encode(vd, values)
    # independent reference: first-occurrence grouping under key semantics
    expected = []
    seen = []  # list of (value, code) in allocation order
    for value in values:
        for other, code in seen:
            if _same_key(other, value):
                expected.append(code)
                break
        else:
            code = len(seen)
            seen.append((value, code))
            expected.append(code)
    # Codes are allocated in first-sight order, so they must match exactly.
    assert codes.tolist() == expected


@given(values=st.lists(_values, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_decode_round_trips(values):
    vd = ValueDict()
    codes = _encode(vd, values)
    decoded = vd.decode(codes).tolist()
    for original, back in zip(values, decoded):
        assert original is back or original == back


def test_null_nan_and_numeric_collapse_pinned():
    """The PR 2 semantics, pinned explicitly."""
    vd = ValueDict()
    # 1 == 1.0 == True collapse to one key
    assert vd.encode_one(1) == vd.encode_one(1.0) == vd.encode_one(True)
    # None is an ordinary value with its own code
    assert vd.encode_one(None) != vd.encode_one(0)
    # the same NaN object collapses (container identity shortcut) ...
    assert vd.encode_one(NAN) == vd.encode_one(NAN)
    # ... but a distinct NaN object is a distinct key
    assert vd.encode_one(float("nan")) != vd.encode_one(NAN)
    # 64-bit extremes encode and decode exactly
    codes = vd.encode_scalars([2**63 - 1, -(2**63), 2**63])
    assert vd.decode(codes).tolist() == [2**63 - 1, -(2**63), 2**63]


# -- hash join ----------------------------------------------------------------


@given(
    left=st.lists(st.tuples(_values, _values), max_size=15),
    right=st.lists(st.tuples(_values, _values), max_size=15),
    width=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=100, deadline=None)
def test_hash_join_matches_nested_loop(left, right, width):
    vd = ValueDict()
    left_cols = [
        _encode(vd, [row[i] for row in left]) for i in range(width)
    ]
    right_cols = [
        _encode(vd, [row[i] for row in right]) for i in range(width)
    ]
    left_idx, order, sorted_pos = hash_join_kernel(
        left_cols, right_cols, len(vd) or 1
    )
    right_idx = order[sorted_pos]  # pairs are (left_idx[k], order[sorted_pos[k]])
    got = sorted(zip(left_idx.tolist(), right_idx.tolist()))
    expected = sorted(
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        # join on codes == container key equality (NaN object included)
        if all(
            _same_key(left[i][k], right[j][k]) for k in range(width)
        )
    )
    assert got == expected


def test_hash_join_wide_keys_overflow_pack():
    """A code range too large to pack arithmetically must take the joint
    factorization path and still answer exactly."""
    vd = ValueDict()
    rows = [(i, i + 1) for i in range(20)]
    cols = [
        _encode(vd, [r[0] for r in rows]),
        _encode(vd, [r[1] for r in rows]),
    ]
    # huge claimed code range forces the np.unique(axis=0) branch
    left_idx, order, sorted_pos = hash_join_kernel(cols, cols, 2**40)
    right_idx = order[sorted_pos]
    assert sorted(zip(left_idx.tolist(), right_idx.tolist())) == [
        (i, i) for i in range(20)
    ]


# -- membership (negation probe) ---------------------------------------------


@given(
    probe=st.lists(_values, max_size=20),
    stored=st.lists(_values, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_membership_matches_container_lookup(probe, stored):
    vd = ValueDict()
    probe_col = _encode(vd, probe)
    stored_col = _encode(vd, stored)
    mask = membership_kernel([probe_col], [stored_col], len(vd) or 1)
    expected = [any(_same_key(p, s) for s in stored) for p in probe]
    assert mask.tolist() == expected


def test_membership_nan_identity_pinned():
    """The same NaN object IS found (set semantics); a fresh NaN is not."""
    vd = ValueDict()
    stored = _encode(vd, [NAN, 1])
    probe = _encode(vd, [NAN, float("nan")])
    assert membership_kernel([probe], [stored], len(vd)).tolist() == [True, False]


# -- comparison masks ---------------------------------------------------------


@given(
    pairs=st.lists(st.tuples(_values, _values), max_size=20),
    op=st.sampled_from(["=", "<>"]),
)
@settings(max_examples=100, deadline=None)
def test_equality_mask_matches_python_eq(pairs, op):
    """``=``/``<>`` guards follow Python ``==`` — NaN never equals itself,
    even the same object (unlike the join kernels above)."""
    vd = ValueDict()
    left = _encode(vd, [a for a, _b in pairs])
    right = _encode(vd, [b for _a, b in pairs])
    mask = compare_codes_kernel(op, left, right, vd)
    expected = [bool(a == b) if op == "=" else bool(a != b) for a, b in pairs]
    assert mask.tolist() == expected


# -- arithmetic ---------------------------------------------------------------


def _python_arith(op, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # interpreter raises; kernel must fall back
        return a // b if isinstance(a, int) and isinstance(b, int) else a / b
    if op == "%":
        return a % b


@given(
    pairs=st.lists(st.tuples(_int64, _int64), min_size=1, max_size=20),
    op=st.sampled_from(["+", "-", "*", "/", "%"]),
)
@settings(max_examples=150, deadline=None)
def test_int_arith_matches_python_or_falls_back(pairs, op):
    left = np.array([a for a, _b in pairs], dtype=np.int64)
    right = np.array([b for _a, b in pairs], dtype=np.int64)
    try:
        kind, result = arith_kernel(op, ("int", left), ("int", right))
    except ColumnarFallback:
        return  # legal: the compiled executor replays exactly
    assert kind == "int"
    for (a, b), got in zip(pairs, result.tolist()):
        assert got == _python_arith(op, a, b)


@given(
    pairs=st.lists(
        st.tuples(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        min_size=1,
        max_size=20,
    ),
    op=st.sampled_from(["+", "-", "*", "/"]),
)
@settings(max_examples=150, deadline=None)
def test_float_arith_matches_python_or_falls_back(pairs, op):
    left = np.array([a for a, _b in pairs], dtype=np.float64)
    right = np.array([b for _a, b in pairs], dtype=np.float64)
    try:
        _kind, result = arith_kernel(op, ("float", left), ("float", right))
    except ColumnarFallback:
        return
    for (a, b), got in zip(pairs, result.tolist()):
        expected = _python_arith(op, a, b)
        assert got == expected or (got != got and expected != expected)


def test_arith_overflow_and_div_zero_fall_back():
    big = np.array([2**62], dtype=np.int64)
    one = np.array([1], dtype=np.int64)
    zero = np.array([0], dtype=np.int64)
    with pytest.raises(ColumnarFallback):
        arith_kernel("+", ("int", big), ("int", big))
    with pytest.raises(ColumnarFallback):
        arith_kernel("*", ("int", big), ("int", big))
    with pytest.raises(ColumnarFallback):
        arith_kernel("/", ("int", one), ("int", zero))
    with pytest.raises(ColumnarFallback):
        arith_kernel("%", ("int", one), ("int", zero))


def test_mixed_dtype_column_falls_back_in_numeric():
    """A column mixing strings and ints defeats dtype inference — the
    executor must refuse rather than guess."""
    vd = ValueDict()
    codes = _encode(vd, [1, "a", 2])
    with pytest.raises(ColumnarFallback):
        vd.numeric(codes)


def test_int_beyond_float_exact_falls_back_when_mixed():
    """2**53 + 1 has no exact float64; mixing it with floats must fall back
    instead of silently rounding."""
    vd = ValueDict()
    codes = _encode(vd, [2**53 + 1, 0.5])
    with pytest.raises(ColumnarFallback):
        vd.numeric(codes)
    # pure-int columns keep exact int64 values
    kind, values = vd.numeric(_encode(vd, [2**53 + 1, 7]))
    assert kind == "int" and values.tolist() == [2**53 + 1, 7]


# -- grouping and projection dedup -------------------------------------------


@given(rows=st.lists(st.tuples(_values, _values), max_size=25))
@settings(max_examples=100, deadline=None)
def test_group_rows_matches_first_occurrence_grouping(rows):
    vd = ValueDict()
    cols = [
        _encode(vd, [r[0] for r in rows]),
        _encode(vd, [r[1] for r in rows]),
    ]
    count, gids, first = group_rows_kernel(cols, len(rows), len(vd) or 1)
    # reference: group rows by their code pair with a tuple-loop
    code_rows = list(zip(cols[0].tolist(), cols[1].tolist())) if rows else []
    groups = {}
    for i, key in enumerate(code_rows):
        groups.setdefault(key, []).append(i)
    assert count == len(groups)
    for key, members in groups.items():
        # all members share one gid, distinct keys get distinct gids
        gid_set = {int(gids[i]) for i in members}
        assert len(gid_set) == 1
        gid = gid_set.pop()
        # the exemplar row is a member of the group
        assert int(first[gid]) in members


# -- grouped reductions -------------------------------------------------------


def _reference_reduce(func, group_ids, group_count, values):
    buckets = {g: [] for g in range(group_count)}
    for g, v in zip(group_ids, values if values is not None else group_ids):
        buckets[g].append(v)
    out = []
    for g in range(group_count):
        vals = buckets[g]
        if func == "count":
            out.append(len(vals))
        elif func == "sum":
            out.append(sum(vals))
        elif func == "min":
            out.append(min(vals))
        elif func == "max":
            out.append(max(vals))
        elif func == "avg":
            out.append(sum(vals) / len(vals))
    return out


@given(
    data=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4), _small_ints),
        min_size=1,
        max_size=30,
    ),
    func=st.sampled_from(["count", "sum", "min", "max", "avg"]),
)
@settings(max_examples=150, deadline=None)
def test_grouped_reduce_matches_tuple_loop(data, func):
    # ensure every group id up to the max is populated (kernel contract:
    # groups come from actual solution rows)
    present = sorted({g for g, _v in data})
    remap = {g: i for i, g in enumerate(present)}
    group_ids = np.array([remap[g] for g, _v in data], dtype=np.int64)
    values = [v for _g, v in data]
    group_count = len(present)
    kernel_values = None if func == "count" else ("int", np.array(values, dtype=np.int64))
    got = grouped_reduce_kernel(func, group_ids, group_count, kernel_values)
    expected = _reference_reduce(
        func, group_ids.tolist(), group_count, None if func == "count" else values
    )
    assert got == expected
    for g, e in zip(got, expected):
        # avg must be exact division, matching Python's type too
        assert type(g) is type(e)


def test_grouped_reduce_float_sum_and_nan_fall_back():
    gids = np.zeros(3, dtype=np.int64)
    floats = np.array([0.1, 0.2, 0.3], dtype=np.float64)
    with pytest.raises(ColumnarFallback):
        grouped_reduce_kernel("sum", gids, 1, ("float", floats))
    with pytest.raises(ColumnarFallback):
        grouped_reduce_kernel("avg", gids, 1, ("float", floats))
    with_nan = np.array([1.0, math.nan], dtype=np.float64)
    with pytest.raises(ColumnarFallback):
        grouped_reduce_kernel("min", np.zeros(2, dtype=np.int64), 1, ("float", with_nan))
    # float min/max without NaN is exact and allowed
    clean = np.array([1.5, -2.5], dtype=np.float64)
    assert grouped_reduce_kernel(
        "min", np.zeros(2, dtype=np.int64), 1, ("float", clean)
    ) == [-2.5]


def test_grouped_reduce_big_int_sum_falls_back():
    gids = np.zeros(2, dtype=np.int64)
    big = np.array([2**61, 2**61], dtype=np.int64)
    with pytest.raises(ColumnarFallback):
        grouped_reduce_kernel("sum", gids, 1, ("int", big))
