"""Tests for compiled rule plans: structure, and equivalence with a naive oracle.

Two layers of checks:

* ``rule_solutions`` driven by compiled plans must produce exactly the same
  bindings as a brute-force reference evaluator (cartesian product over the
  body atoms, seed-style comparison fixpoint and existential negation at the
  end) across a battery of rule shapes;
* whole programs — the repository's example programs among them — must
  produce identical results whichever engine mode evaluates them (cached
  plans + incremental indexes vs. the seed strategy).
"""

import pytest

from repro import Raqlet
from repro.common.errors import ExecutionError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import (
    ArithExpr,
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Rule,
    Var,
    Wildcard,
)
from repro.engines.datalog import (
    DatalogEngine,
    FactStore,
    PlanCache,
    RelationStats,
    plan_rule,
)
from repro.engines.datalog.evaluation import (
    _compare,
    evaluate_rule,
    evaluate_term,
    rule_solutions,
)

# ---------------------------------------------------------------------------
# Brute-force reference evaluator (the seed semantics, without any indexes)
# ---------------------------------------------------------------------------


def _reference_extend(atom, row, bindings):
    new_bindings = dict(bindings)
    for index, term in enumerate(atom.terms):
        if isinstance(term, Wildcard):
            continue
        if isinstance(term, Const):
            if row[index] != term.value:
                return None
        elif isinstance(term, Var):
            existing = new_bindings.get(term.name, _MISSING)
            if existing is _MISSING:
                new_bindings[term.name] = row[index]
            elif existing != row[index]:
                return None
        else:
            raise ExecutionError(f"unexpected term {term!r}")
    return new_bindings


_MISSING = object()


def reference_solutions(rule, store, delta_index=None, delta_rows=None):
    """Cartesian-product evaluation with end-of-body checks (the oracle)."""
    atoms = [
        (index, literal)
        for index, literal in enumerate(rule.body)
        if isinstance(literal, Atom)
    ]
    solutions = []

    def finish(bindings):
        bindings = dict(bindings)
        pending = list(rule.comparisons())
        progress = True
        while progress:
            progress = False
            remaining = []
            for comparison in pending:
                left_bound = all(
                    name in bindings for name in _term_vars(comparison.left)
                )
                right_bound = all(
                    name in bindings for name in _term_vars(comparison.right)
                )
                if left_bound and right_bound:
                    if not _compare(
                        comparison.op,
                        evaluate_term(comparison.left, bindings),
                        evaluate_term(comparison.right, bindings),
                    ):
                        return
                    progress = True
                elif (
                    comparison.op == "="
                    and left_bound
                    and isinstance(comparison.right, Var)
                ):
                    bindings[comparison.right.name] = evaluate_term(
                        comparison.left, bindings
                    )
                    progress = True
                elif (
                    comparison.op == "="
                    and right_bound
                    and isinstance(comparison.left, Var)
                ):
                    bindings[comparison.left.name] = evaluate_term(
                        comparison.right, bindings
                    )
                    progress = True
                else:
                    remaining.append(comparison)
            pending = remaining
        if pending:
            raise ExecutionError(f"rule {rule} has comparisons over unbound variables")
        for negated in rule.negated_atoms():
            atom = negated.atom
            positions, key = [], []
            for index, term in enumerate(atom.terms):
                if isinstance(term, Wildcard):
                    continue
                if isinstance(term, Var) and term.name not in bindings:
                    continue
                positions.append(index)
                key.append(evaluate_term(term, bindings))
            matches = [
                row
                for row in store.scan(atom.relation)
                if tuple(row[i] for i in positions) == tuple(key)
            ]
            if matches:
                return
        solutions.append(bindings)

    def recurse(position, bindings):
        if position == len(atoms):
            finish(bindings)
            return
        body_index, atom = atoms[position]
        rows = (
            list(delta_rows)
            if body_index == delta_index and delta_rows is not None
            else store.scan(atom.relation)
        )
        for row in rows:
            extended = _reference_extend(atom, row, bindings)
            if extended is not None:
                recurse(position + 1, extended)

    recurse(0, {})
    return solutions


def _term_vars(term):
    from repro.dlir.core import term_variables

    return list(term_variables(term))


def _as_binding_set(solutions):
    return {frozenset(bindings.items()) for bindings in solutions}


def assert_same_solutions(rule, store, delta_index=None, delta_rows=None):
    planned = _as_binding_set(
        rule_solutions(rule, store, delta_index=delta_index, delta_rows=delta_rows)
    )
    reference = _as_binding_set(
        reference_solutions(rule, store, delta_index=delta_index, delta_rows=delta_rows)
    )
    assert planned == reference


# ---------------------------------------------------------------------------
# Rule-level equivalence battery
# ---------------------------------------------------------------------------


@pytest.fixture()
def store():
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3), (3, 4), (2, 4), (4, 1)])
    store.add_many("node", [(i,) for i in range(1, 6)])
    store.add_many("label", [(1, "a"), (2, "b"), (4, "a")])
    store.add_many("triple", [(1, 1, 5), (1, 2, 6), (2, 2, 7)])
    return store


def _rule(head, body, **kwargs):
    return Rule(head=head, body=tuple(body), **kwargs)


def test_plain_join_matches_reference(store):
    rule = _rule(
        Atom("path", (Var("x"), Var("z"))),
        [Atom("edge", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))],
    )
    assert_same_solutions(rule, store)


def test_constants_repeated_vars_and_wildcards(store):
    rule = _rule(
        Atom("q", (Var("x"),)),
        [
            Atom("triple", (Var("x"), Var("x"), Wildcard())),
            Atom("edge", (Const(1), Var("x"))),
        ],
    )
    assert_same_solutions(rule, store)


def test_comparison_filters_and_assignment_chain(store):
    rule = _rule(
        Atom("q", (Var("x"), Var("lab"), Var("nxt"))),
        [
            Atom("edge", (Var("x"), Var("y"))),
            Comparison("=", Var("lab"), Const(7)),
            Comparison("=", Var("nxt"), ArithExpr("+", Var("y"), Const(1))),
            Comparison("<", Var("x"), Const(3)),
        ],
    )
    assert_same_solutions(rule, store)


def test_negation_with_existential_variable(store):
    # "nodes with no outgoing edge": y is existential inside the negation.
    rule = _rule(
        Atom("sink", (Var("n"),)),
        [
            Atom("node", (Var("n"),)),
            NegatedAtom(Atom("edge", (Var("n"), Var("y")))),
        ],
    )
    assert_same_solutions(rule, store)


def test_negation_over_late_bound_variable(store):
    rule = _rule(
        Atom("q", (Var("x"), Var("z"))),
        [
            Atom("edge", (Var("x"), Var("y"))),
            Atom("edge", (Var("y"), Var("z"))),
            NegatedAtom(Atom("edge", (Var("x"), Var("z")))),
        ],
    )
    assert_same_solutions(rule, store)


def test_delta_restricted_evaluation_matches_reference(store):
    rule = _rule(
        Atom("path", (Var("x"), Var("z"))),
        [Atom("path", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))],
    )
    store.add_many("path", [(1, 2), (2, 3), (1, 3)])
    delta = [(1, 3), (2, 3)]
    assert_same_solutions(rule, store, delta_index=0, delta_rows=delta)


def test_unsafe_rule_raises_in_both(store):
    rule = _rule(
        Atom("q", (Var("x"), Var("w"))),
        [Atom("node", (Var("x"),)), Comparison("<", Var("w"), Const(3))],
    )
    with pytest.raises(ExecutionError):
        list(rule_solutions(rule, store))
    with pytest.raises(ExecutionError):
        reference_solutions(rule, store)


def test_evaluate_rule_heads_match_reference(store):
    rule = _rule(
        Atom("q", (Var("y"), ArithExpr("*", Var("x"), Const(10)))),
        [Atom("edge", (Var("x"), Var("y")))],
    )
    derived = evaluate_rule(rule, store)
    expected = {
        (bindings["y"], bindings["x"] * 10)
        for bindings in reference_solutions(rule, store)
    }
    assert derived == expected


# ---------------------------------------------------------------------------
# Plan structure
# ---------------------------------------------------------------------------


def test_plan_puts_delta_atom_first(store):
    rule = _rule(
        Atom("path", (Var("x"), Var("z"))),
        [Atom("edge", (Var("x"), Var("y"))), Atom("path", (Var("y"), Var("z")))],
    )
    plan = plan_rule(rule, store, delta_index=1, delta_size=4)
    assert plan.steps[0].body_index == 1
    # The edge atom then has its join column bound by the delta bindings.
    assert plan.steps[1].key_positions == (1,)


def test_plan_schedules_checks_at_earliest_step(store):
    rule = _rule(
        Atom("q", (Var("x"), Var("z"))),
        [
            Atom("edge", (Var("x"), Var("y"))),
            Atom("edge", (Var("y"), Var("z"))),
            Comparison("<", Var("x"), Const(3)),
        ],
    )
    plan = plan_rule(rule, store)
    first = next(step for step in plan.steps if "x" in dict(step.bind_positions).values())
    assert any(op[0] == "check" for op in first.guard.ops)
    assert not plan.unresolved


def test_plan_compiles_negation_probe(store):
    rule = _rule(
        Atom("sink", (Var("n"),)),
        [
            Atom("node", (Var("n"),)),
            NegatedAtom(Atom("edge", (Var("n"), Var("y")))),
        ],
    )
    plan = plan_rule(rule, store)
    negations = [
        negation for step in plan.steps for negation in step.guard.negations
    ]
    assert len(negations) == 1
    # y is existential, so the probe keys only on the first column.
    assert negations[0].positions == (0,)


def test_mismatched_delta_plan_is_rejected(store):
    rule = _rule(
        Atom("path", (Var("x"), Var("z"))),
        [Atom("path", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))],
    )
    store.add_many("path", [(1, 2)])
    plan = plan_rule(rule, store, delta_index=0, delta_size=1)
    with pytest.raises(ExecutionError):
        list(rule_solutions(rule, store, delta_index=1, delta_rows=[(1, 2)], plan=plan))
    # ... but a delta-variant plan is a valid full plan when no delta is given.
    assert _as_binding_set(rule_solutions(rule, store, plan=plan)) == _as_binding_set(
        reference_solutions(rule, store)
    )


def test_plan_cache_reuses_plans(store):
    rule = _rule(
        Atom("q", (Var("x"),)),
        [Atom("node", (Var("x"),))],
    )
    cache = PlanCache()
    first = cache.plan_for(rule, store)
    second = cache.plan_for(rule, store)
    assert first is second
    delta_variant = cache.plan_for(rule, store, delta_index=0, delta_size=1)
    assert delta_variant is not first
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# Cost-based ordering and adaptive re-planning
# ---------------------------------------------------------------------------


def test_cost_model_orders_by_fanout_not_size(store):
    # After the delta binds n, `wide` (500 rows over 5 keys -> fan-out 100)
    # must come after `narrow` (2000 rows over 2000 keys -> fan-out 1), even
    # though `wide` is the *smaller* relation — exactly the case the greedy
    # size heuristic gets backwards.
    rule = _rule(
        Atom("q", (Var("n"), Var("a"), Var("b"))),
        [
            Atom("seed", (Var("n"),)),
            Atom("wide", (Var("n"), Var("a"))),
            Atom("narrow", (Var("n"), Var("b"))),
        ],
    )
    stats = {
        "seed": RelationStats(1, (1,)),
        "wide": RelationStats(500, (5, 500)),
        "narrow": RelationStats(2000, (2000, 2000)),
    }
    costed = plan_rule(rule, store, delta_index=0, delta_size=1, stats=stats)
    assert [step.relation for step in costed.steps] == ["seed", "narrow", "wide"]
    assert costed.stats_basis == (("narrow", 2000), ("seed", 1), ("wide", 500))
    assert costed.step_fanouts == (1.0, 1.0, 100.0)
    # Greedy fallback (no stats): smaller relation first, no basis recorded.
    greedy = plan_rule(rule, store, delta_index=0, delta_size=1)
    assert greedy.stats_basis is None
    assert greedy.step_fanouts is None


def test_cost_model_prefers_filtering_atom_over_grown_relation(store):
    # An unbound small filter beats scanning a grown relation: with `big` at
    # 10k rows, the 40-row `filt` should be enumerated first even though it
    # shares no variable with the delta.
    rule = _rule(
        Atom("q", (Var("x"), Var("y"))),
        [
            Atom("d", (Var("n"),)),
            Atom("big", (Var("x"), Var("y"))),
            Atom("filt", (Var("x"),)),
        ],
    )
    stats = {
        "d": RelationStats(1, (1,)),
        "big": RelationStats(10_000, (100, 10_000)),
        "filt": RelationStats(40, (40,)),
    }
    plan = plan_rule(rule, store, delta_index=0, delta_size=1, stats=stats)
    order = [step.relation for step in plan.steps]
    assert order == ["d", "filt", "big"]
    # ... and big is then probed on its bound x column.
    assert plan.steps[2].key_positions == (0,)


def test_plan_cache_replans_on_drift(store):
    rule = _rule(
        Atom("tc", (Var("x"), Var("y"))),
        [Atom("tc", (Var("x"), Var("z"))), Atom("edge", (Var("z"), Var("y")))],
    )
    cache = PlanCache(replan_threshold=10)
    small = {"tc": RelationStats(2, (2, 2)), "edge": RelationStats(5, (4, 4))}
    first = cache.plan_for(rule, store, delta_index=0, delta_size=2, stats=small)
    assert cache.replan_count == 0 and cache.stats_epoch == 0
    # Under 10x drift: the cached plan object is returned untouched.
    drifted_a_bit = {
        "tc": RelationStats(15, (5, 5)),
        "edge": RelationStats(5, (4, 4)),
    }
    assert (
        cache.plan_for(rule, store, delta_index=0, delta_size=4, stats=drifted_a_bit)
        is first
    )
    # Past 10x: a new plan object, counters advance, epoch stamps the plan.
    grown = {
        "tc": RelationStats(500, (40, 40)),
        "edge": RelationStats(5, (4, 4)),
    }
    replanned = cache.plan_for(
        rule, store, delta_index=0, delta_size=40, stats=grown
    )
    assert replanned is not first
    assert cache.replan_count == 1
    assert cache.stats_epoch == 1
    assert replanned.stats_epoch == 1
    assert dict(replanned.stats_basis)["tc"] == 500
    # Same join structure -> equal by value (the compiled-closure cache key),
    # different provenance.
    assert replanned == first


def test_plan_cache_threshold_modes(store):
    rule = _rule(Atom("q", (Var("x"),)), [Atom("node", (Var("x"),))])
    stats = {"node": RelationStats(5, (5,))}
    frozen = PlanCache(replan_threshold=float("inf"))
    plan = frozen.plan_for(rule, store, stats=stats)
    grown = {"node": RelationStats(50_000, (50_000,))}
    assert frozen.plan_for(rule, store, stats=grown) is plan
    assert frozen.replan_count == 0
    eager = PlanCache(replan_threshold=1)
    first = eager.plan_for(rule, store, stats=stats)
    second = eager.plan_for(rule, store, stats=stats)  # zero drift still fires
    assert second is not first
    assert eager.replan_count == 1
    # Plans without a basis (greedy fallback) never drift.
    lazy = PlanCache(replan_threshold=1)
    greedy = lazy.plan_for(rule, store)
    assert lazy.plan_for(rule, store, stats=stats) is greedy
    assert lazy.replan_count == 0


def test_replanned_join_orders_agree_on_results(store):
    # The same rule evaluated under wildly wrong statistics must still
    # produce the reference solutions — stats steer cost, never semantics.
    rule = _rule(
        Atom("path", (Var("x"), Var("z"))),
        [Atom("edge", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))],
    )
    for stats in (
        None,
        {"edge": RelationStats(5, (4, 4))},
        {"edge": RelationStats(1_000_000, (1, 1))},
    ):
        plan = plan_rule(rule, store, stats=stats)
        planned = _as_binding_set(rule_solutions(rule, store, plan=plan))
        assert planned == _as_binding_set(reference_solutions(rule, store))


def test_engine_exposes_replan_counters():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    facts = {"edge": [(i, i + 1) for i in range(40)]}
    eager = DatalogEngine(builder.build(), facts, replan_threshold=1)
    eager.run()
    assert eager.replan_count > 0
    assert eager.stats_epoch == eager.replan_count
    assert eager.plan_build_count > eager.replan_count  # first builds too
    assert eager.stats_snapshot_count > 0
    report = eager.plan_report()
    assert any(entry["delta_index"] == 0 for entry in report)
    text = eager.explain()
    assert "replans=" in text and "est_fanout=" in text
    frozen = DatalogEngine(builder.build(), facts, replan_threshold=float("inf"))
    frozen.run()
    assert frozen.replan_count == 0
    assert frozen.query("tc").same_rows(eager.query("tc"))


# ---------------------------------------------------------------------------
# Whole-program equivalence across engine modes (example programs)
# ---------------------------------------------------------------------------

QUICKSTART_SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
}
"""

QUICKSTART_QUERY = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

QUICKSTART_FACTS = {
    "Person": [(42, "Ada", "10.0.0.1"), (43, "Alan", "10.0.0.2")],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901)],
}

GRAPH_SCHEMA = """
CREATE GRAPH {
  (nodeType : Node { id INT, name STRING }),
  (:nodeType)-[linkType : linksTo { id INT }]->(:nodeType)
}
"""

GRAPH_FACTS = {
    "Node": [(i, f"n{i}") for i in range(8)],
    "Node_LINKS_TO_Node": [
        (0, 1, 100), (1, 2, 101), (2, 3, 102), (3, 4, 103),
        (4, 0, 104), (2, 5, 105), (5, 6, 106), (6, 7, 107),
    ],
}

POINTS_TO_PROGRAM = """
.decl NewObject(v:number, o:number)
.decl Assign(src:number, dst:number)
.decl PointsTo(v:number, o:number)

PointsTo(v, o) :- NewObject(v, o).
PointsTo(dst, o) :- Assign(src, dst), PointsTo(src, o).

.output PointsTo
"""

POINTS_TO_FACTS = {
    "NewObject": [(0, 0), (1, 1), (5, 2)],
    "Assign": [(0, 2), (2, 3), (3, 0), (1, 3), (5, 4)],
}


def _run_both_modes(program, facts):
    current = DatalogEngine(program, facts)
    seedlike = DatalogEngine(
        program, facts, incremental_indexes=False, reuse_plans=False
    )
    return current, seedlike


def _assert_modes_agree(program, facts, relations=None):
    current, seedlike = _run_both_modes(program, facts)
    current.run()
    seedlike.run()
    relations = relations or program.outputs
    for relation in relations:
        assert current.query(relation).same_rows(seedlike.query(relation))


def test_example_quickstart_agrees_across_modes():
    raqlet = Raqlet(QUICKSTART_SCHEMA)
    compiled = raqlet.compile_cypher(QUICKSTART_QUERY)
    for optimized in (False, True):
        _assert_modes_agree(compiled.program(optimized), QUICKSTART_FACTS)


def test_example_reachability_agrees_across_modes():
    raqlet = Raqlet(GRAPH_SCHEMA)
    compiled = raqlet.compile_cypher(
        "MATCH (a:Node {id: 0})-[:LINKS_TO*]->(b:Node) RETURN b.id AS target"
    )
    for optimized in (False, True):
        _assert_modes_agree(compiled.program(optimized), GRAPH_FACTS)


def test_example_shortest_path_agrees_across_modes():
    raqlet = Raqlet(GRAPH_SCHEMA)
    compiled = raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Node {id: 0})-[:LINKS_TO*]->(b:Node {id: 7})) "
        "RETURN length(p) AS hops"
    )
    _assert_modes_agree(compiled.program(True), GRAPH_FACTS)


def test_example_points_to_agrees_across_modes():
    raqlet = Raqlet(QUICKSTART_SCHEMA)
    compiled = raqlet.compile_datalog(POINTS_TO_PROGRAM)
    for optimized in (False, True):
        _assert_modes_agree(compiled.program(optimized), POINTS_TO_FACTS)


def test_negation_and_aggregation_agree_across_modes():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("reach", [("b", "number")])
    builder.idb("unreached", [("id", "number")])
    builder.idb("outdeg", [("a", "number"), ("n", "number")])
    builder.rule("reach", ["y"], [("edge", [0, "y"])])
    builder.rule("reach", ["y"], [("reach", ["x"]), ("edge", ["x", "y"])])
    builder.rule("unreached", ["n"], [("node", ["n"])], negated=[("reach", ["n"])])
    from repro.dlir.core import Aggregation

    builder.rule(
        "outdeg", ["a", "n"],
        [("edge", ["a", "b"])],
        aggregations=[Aggregation("count", Var("n"), Var("b"))],
    )
    builder.output("unreached")
    builder.output("outdeg")
    facts = {
        "node": [(i,) for i in range(6)],
        "edge": [(0, 1), (1, 2), (2, 0), (4, 5), (0, 3)],
    }
    _assert_modes_agree(builder.build(), facts)
