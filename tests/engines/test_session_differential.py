"""Differential testing for parameter late-binding.

Every seeded program from the cross-backend differential harness is
*parameterised*: each constant in a rule body is replaced by a ``$pN``
placeholder.  One prepared engine is then run with at least three different
bindings, and each run must agree fact-for-fact — on every IDB relation —
with a fresh engine evaluating the program with that binding's values
substituted back in (:func:`repro.dlir.bind_parameters`).

On top of result equality, the counters prove the warm path does no hidden
work: between bindings there is zero fact re-ingest, zero index rebuilds
and (with re-planning frozen to isolate the property) zero plan rebuilds,
and the compiled executor never falls back to the interpreter because of a
parameter.
"""

from __future__ import annotations

import pytest

from repro.dlir.core import (
    ArithExpr,
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Param,
    Rule,
    bind_parameters,
)
from repro.engines.datalog import DatalogEngine

from tests.engines.test_store_differential import COMBINATIONS, _random_case

#: seeds whose programs actually contain body constants are the interesting
#: ones (about half of them do), but parameter-free programs still exercise
#: the reset/re-run path
SEEDS = range(0, 50, 3)


def _parameterize(program):
    """Replace every body constant with a ``$pN`` placeholder.

    Returns ``(parameterised program, {name: original value})``.  Distinct
    constant values map to distinct parameters.
    """
    names = {}

    def convert(term):
        if isinstance(term, Const):
            name = names.setdefault(term.value, f"p{len(names)}")
            return Param(name)
        if isinstance(term, ArithExpr):
            return ArithExpr(term.op, convert(term.left), convert(term.right))
        return term

    def convert_atom(atom):
        return Atom(atom.relation, tuple(convert(term) for term in atom.terms))

    new_rules = []
    for rule in program.rules:
        body = []
        for literal in rule.body:
            if isinstance(literal, Atom):
                body.append(convert_atom(literal))
            elif isinstance(literal, NegatedAtom):
                body.append(NegatedAtom(convert_atom(literal.atom)))
            elif isinstance(literal, Comparison):
                body.append(
                    Comparison(
                        literal.op, convert(literal.left), convert(literal.right)
                    )
                )
            else:  # pragma: no cover - the generator emits no other literals
                body.append(literal)
        new_rules.append(
            Rule(
                head=rule.head,
                body=tuple(body),
                aggregations=rule.aggregations,
                subsume_min=rule.subsume_min,
                subsume_max=rule.subsume_max,
            )
        )
    parameterised = program.copy()
    parameterised.rules = new_rules
    return parameterised, {name: value for value, name in names.items()}


def _bindings_under_test(baseline):
    """At least three bindings: the original values plus shifted variants.

    Shifts keep arithmetic operands non-zero (the generator uses ``%``).
    """
    return [
        dict(baseline),
        {name: value + 1 for name, value in baseline.items()},
        {name: value + 2 for name, value in baseline.items()},
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_prepared_engine_matches_fresh_compiles_per_binding(seed):
    program, facts, idbs = _random_case(seed)
    parameterised, baseline = _parameterize(program)
    for executor, store in COMBINATIONS:
        # Frozen re-planning isolates the claim "plans are binding
        # independent"; adaptive re-planning across bindings is legitimate
        # but would make the flat-counter assertion vacuous.
        engine = DatalogEngine(
            parameterised,
            facts,
            store=store,
            executor=executor,
            replan_threshold=float("inf"),
        )
        plan_builds = index_builds = None
        for binding in _bindings_under_test(baseline):
            engine.reset(parameters=binding)
            engine.run()
            oracle = DatalogEngine(
                bind_parameters(parameterised, binding),
                facts,
                store="memory",
                executor="interpreted",
            )
            oracle.run()
            for relation in idbs:
                assert set(engine.store.scan(relation)) == set(
                    oracle.store.scan(relation)
                ), (
                    f"seed {seed}: {executor}/{store} with binding {binding} "
                    f"disagrees with the bound fresh compile on {relation!r}"
                )
            if plan_builds is None:
                plan_builds = engine.plan_build_count
                index_builds = engine.store.index_build_count
            else:
                assert engine.plan_build_count == plan_builds, (
                    f"seed {seed}: {executor}/{store} rebuilt plans between "
                    "bindings"
                )
                assert engine.store.index_build_count == index_builds, (
                    f"seed {seed}: {executor}/{store} rebuilt indexes "
                    "between bindings"
                )
        if executor == "compiled" and baseline:
            # Parameters must not push plans off the compiled path.
            assert engine.executor.fallback_count == 0
        engine.store.close()


def test_parameterization_covers_constants():
    """At least some sampled seeds exercise real parameters."""
    parameterised_seeds = 0
    for seed in SEEDS:
        program, _facts, _idbs = _random_case(seed)
        _parameterised, baseline = _parameterize(program)
        if baseline:
            parameterised_seeds += 1
    assert parameterised_seeds >= 3
