"""Tests for the session API: persistent stores, prepared queries, late binding.

The headline contract (the PR's acceptance bar): re-running a
:class:`~repro.session.PreparedQuery` with a different parameter binding
performs **zero** fact re-ingest, **zero** index rebuilds and **zero** plan
recompiles — asserted through the store's ``index_build_count``, the
engine's ``plan_build_count`` and the session's ``ingest_count``.
"""

from __future__ import annotations

import pytest

from repro import Raqlet
from repro.common.errors import ExecutionError, RaqletError, UnsupportedFeatureError

SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType),
  (:personType)-[knowsType : knows { id INT }]->(:personType)
}
"""

FACTS = {
    "Person": [
        (42, "Ada", "10.0.0.1"),
        (43, "Alan", "10.0.0.2"),
        (44, "Edgar", "10.0.0.3"),
        (45, "Grace", "10.0.0.4"),
    ],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901), (44, 1, 902), (45, 2, 903)],
    "Person_KNOWS_Person": [(42, 43, 1), (43, 44, 2), (44, 45, 3)],
}

CITY_QUERY = """
MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

REACH_QUERY = """
MATCH (a:Person {id: $personId})-[:KNOWS*]->(b:Person)
RETURN DISTINCT b.id AS reachable
"""


@pytest.fixture
def raqlet():
    return Raqlet(SCHEMA)


# -- the warm-path contract -------------------------------------------------


@pytest.mark.parametrize("store", ["memory", "sqlite"])
@pytest.mark.parametrize("executor", ["interpreted", "compiled"])
def test_rebinding_is_free_of_rebuilds(raqlet, store, executor):
    """Different bindings on one PreparedQuery: zero re-ingest, zero index
    rebuilds, zero plan recompiles, and stats snapshots grow by the same
    amount each warm run (no hidden extra work).

    The re-plan threshold is pinned to the default: the always-replan
    stress configuration (REPRO_REPLAN_THRESHOLD=1) rebuilds plans every
    snapshot by design, which is exactly what this test must not measure.
    """
    with raqlet.session(
        FACTS, store=store, executor=executor, replan_threshold=10
    ) as session:
        prepared = session.prepare(CITY_QUERY)
        assert prepared.param_names == ("personId",)
        first = prepared.run(personId=42)
        assert first.row_set() == {("Ada", 1)}

        ingests = session.ingest_count
        plan_builds = prepared.engine.plan_build_count
        index_builds = session.store.index_build_count
        closure_compiles = getattr(session.executor, "compile_count", 0)
        snapshots_before = prepared.engine.stats_snapshot_count
        second = prepared.run(personId=43)
        snapshots_per_run = prepared.engine.stats_snapshot_count - snapshots_before
        third = prepared.run(personId=44)

        assert second.row_set() == {("Alan", 2)}
        assert third.row_set() == {("Edgar", 1)}
        assert session.ingest_count == ingests == 1
        assert prepared.engine.plan_build_count == plan_builds
        assert session.store.index_build_count == index_builds
        if executor == "compiled":
            # The closure cache never regenerated code for a new binding.
            assert session.executor.compile_count == closure_compiles
        # The third run did exactly the same amount of statistics work as
        # the second: warm runs are uniform.
        assert (
            prepared.engine.stats_snapshot_count
            == snapshots_before + 2 * snapshots_per_run
        )


def test_rebinding_matches_per_binding_fresh_compiles(raqlet):
    """A prepared run equals compiling the query with the value inlined."""
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        for person_id in (42, 43, 44, 45):
            warm = prepared.run(personId=person_id)
            compiled = raqlet.compile_cypher(
                CITY_QUERY, {"personId": person_id}
            )
            fresh = raqlet.run_on_datalog_engine(compiled, FACTS)
            assert warm.row_set() == fresh.row_set()
            assert warm.columns == fresh.columns


def test_recursive_prepared_query_rebinds(raqlet):
    """Late binding works through recursive helper IDBs (VarLength)."""
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(REACH_QUERY)
        assert prepared.run(personId=42).row_set() == {(43,), (44,), (45,)}
        assert prepared.run(personId=44).row_set() == {(45,)}
        assert prepared.run(personId=45).row_set() == set()
        assert session.ingest_count == 1


def test_same_binding_reuses_derived_result(raqlet):
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        prepared.run(personId=42)
        resets = prepared.engine.reset_count
        prepared.run(personId=42)  # identical binding, no mutation: cached
        assert prepared.engine.reset_count == resets
        prepared.run(personId=43)  # new binding: reset + re-derive
        assert prepared.engine.reset_count == resets + 1


def test_missing_parameter_is_reported(raqlet):
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        with pytest.raises(RaqletError, match=r"\$personId"):
            prepared.run()


# -- mutations --------------------------------------------------------------


def test_insert_marks_dirty_and_rederives(raqlet):
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        assert prepared.run(personId=42).row_set() == {("Ada", 1)}
        added = session.insert("Person_IS_LOCATED_IN_City", [(42, 2, 950)])
        assert added == 1
        assert prepared.run(personId=42).row_set() == {("Ada", 1), ("Ada", 2)}
        session.retract("Person_IS_LOCATED_IN_City", [(42, 2, 950)])
        assert prepared.run(personId=42).row_set() == {("Ada", 1)}
        # Mutations never re-ingested or re-planned anything.
        assert session.ingest_count == 1


def test_mutating_a_derived_relation_is_rejected(raqlet):
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        prepared.run(personId=42)
        derived = next(iter(prepared.idb_relations))
        with pytest.raises(RaqletError, match="derived"):
            session.insert(derived, [(1, 2)])


def test_two_prepared_queries_share_one_store_safely(raqlet):
    """Generated IDB names collide across queries ('Return' — at different
    arities, even); the per-query namespace must keep them apart so
    interleaved runs stay correct on every store backend."""
    with raqlet.session(FACTS) as session:
        cities = session.prepare(CITY_QUERY)
        reach = session.prepare(REACH_QUERY)
        # Both derive a relation called 'Return' (the hazard)...
        assert "Return" in cities.namespace and "Return" in reach.namespace
        # ...but the namespaced names never collide.
        assert not cities.idb_relations & reach.idb_relations
        assert cities.run(personId=42).row_set() == {("Ada", 1)}
        assert reach.run(personId=42).row_set() == {(43,), (44,), (45,)}
        assert cities.run(personId=42).row_set() == {("Ada", 1)}
        assert reach.run(personId=44).row_set() == {(45,)}
        assert session.ingest_count == 1
        # Disjoint namespaces also mean interleaving does not invalidate
        # the other query's derived result.
        resets = cities.engine.reset_count
        assert cities.run(personId=42).row_set() == {("Ada", 1)}
        assert cities.engine.reset_count == resets


# -- engine routing ---------------------------------------------------------


def test_execute_routes_to_every_engine(raqlet):
    with raqlet.session(FACTS) as session:
        reference = session.execute(CITY_QUERY, personId=43)
        for engine in ("datalog", "sqlite", "relational", "graph"):
            result = session.execute(CITY_QUERY, engine=engine, personId=43)
            assert result.row_set() == reference.row_set() == {("Alan", 2)}


def test_execute_rejects_unknown_engine(raqlet):
    with raqlet.session(FACTS) as session:
        with pytest.raises(RaqletError, match="unknown execution engine"):
            session.execute(CITY_QUERY, engine="quantum", personId=42)


def test_execute_capability_check_rejects_unsupported(raqlet):
    shortest = """
MATCH p = shortestPath((a:Person {id: $src})-[:KNOWS*]->(b:Person {id: $dst}))
RETURN length(p) AS hops
"""
    with raqlet.session(FACTS) as session:
        result = session.execute(shortest, src=42, dst=45)  # datalog supports it
        assert result.row_set() == {(3,)}
        with pytest.raises(UnsupportedFeatureError):
            session.execute(shortest, engine="sqlite", src=42, dst=45)


def test_prepare_datalog_text_with_parameters(raqlet):
    program = """
.decl Located(n:number, c:number)
Located(n, c) :- Person_IS_LOCATED_IN_City(n, c, _), n = $pid.
.output Located
"""
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(program)
        assert prepared.param_names == ("pid",)
        assert prepared.run(pid=42).row_set() == {(42, 1)}
        assert prepared.run(pid=43).row_set() == {(43, 2)}
        # Text-prepare caching: the same text returns the same warm object.
        assert session.prepare(program) is prepared


# -- lifecycle --------------------------------------------------------------


def test_closed_session_rejects_use(raqlet):
    session = raqlet.session(FACTS)
    session.close()
    session.close()  # idempotent
    with pytest.raises(RaqletError, match="closed"):
        session.prepare(CITY_QUERY)
    with pytest.raises(RaqletError, match="closed"):
        session.insert("Person", [(99, "Zed", "z")])


def test_caller_supplied_store_stays_open(raqlet):
    from repro.engines.datalog.storage import FactStore

    store = FactStore()
    with raqlet.session(FACTS, store=store) as session:
        assert session.store is store
        session.prepare(CITY_QUERY).run(personId=42)
    # The session closed, but the caller's store is still usable.
    assert store.count("Person") == len(FACTS["Person"])


def test_engine_set_parameters_guard():
    """Rebinding without reset is an error at the engine level."""
    from repro.engines.datalog import DatalogEngine
    from repro.frontend.datalog import parse_datalog

    program = parse_datalog(
        """
.decl edge(a:number, b:number)
.decl hop(a:number, b:number)
hop(a, b) :- edge(a, b), a = $src.
.output hop
"""
    )
    engine = DatalogEngine(
        program, {"edge": [(1, 2), (2, 3)]}, parameters={"src": 1}
    )
    assert engine.query().row_set() == {(1, 2)}
    with pytest.raises(ExecutionError, match="reset"):
        engine.set_parameters({"src": 2})
    engine.reset(parameters={"src": 2})
    assert engine.query().row_set() == {(2, 3)}


def test_ingest_after_run_marks_results_stale(raqlet):
    """ingest() is a mutation like insert(): derived results must refresh."""
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        assert prepared.run(personId=42).row_set() == {("Ada", 1)}
        session.ingest({"Person_IS_LOCATED_IN_City": [(42, 2, 960)]})
        assert prepared.run(personId=42).row_set() == {("Ada", 1), ("Ada", 2)}
        # The secondary engines rebuild from the mutated EDB too.
        sqlite_rows = session.execute(CITY_QUERY, engine="sqlite", personId=42)
        assert sqlite_rows.row_set() == {("Ada", 1), ("Ada", 2)}


def test_prepare_cache_distinguishes_optimization_flags(raqlet):
    with raqlet.session(FACTS) as session:
        optimized = session.prepare(CITY_QUERY)
        unoptimized = session.prepare(CITY_QUERY, optimize=False)
        assert optimized is not unoptimized
        # The unoptimized artifact keeps the un-propagated comparison form.
        assert unoptimized.compiled.dlir_optimized is unoptimized.compiled.dlir
        assert session.prepare(CITY_QUERY) is optimized


def test_missing_parameter_raises_execution_error_on_both_executors():
    """Both executors raise the same ExecutionError for an unbound $param
    (the interpreted probe-key path used to leak a raw KeyError)."""
    from repro.engines.datalog import evaluate_program
    from repro.frontend.datalog import parse_datalog

    program = parse_datalog(
        """
.decl edge(a:number, b:number)
.decl hop(a:number, b:number)
hop(a, b) :- edge($src, b), a = $src.
.output hop
"""
    )
    for executor in ("interpreted", "compiled"):
        with pytest.raises(ExecutionError, match=r"no value bound.*\$src"):
            evaluate_program(
                program, {"edge": [(1, 2)]}, relation="hop", executor=executor
            )


def test_graph_engine_names_missing_parameter(raqlet):
    from repro.engines.graph import facts_to_property_graph

    compiled = raqlet.compile_cypher(CITY_QUERY)
    graph = facts_to_property_graph(FACTS, raqlet.mapping)
    with pytest.raises(ExecutionError, match=r"no value bound.*\$personId"):
        raqlet.run_on_graph_engine(compiled, graph)
    bound = raqlet.run_on_graph_engine(compiled, graph, {"personId": 42})
    assert bound.row_set() == {("Ada", 1)}


def test_seed_facts_on_derived_relations_survive(raqlet):
    """A relation with both rules and externally supplied rows keeps the
    seed rows through namespacing and warm resets (the pre-session
    behaviour of run_on_datalog_engine)."""
    program_text = """
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(a, b) :- edge(a, b).
path(a, c) :- path(a, b), edge(b, c).
.output path
"""
    compiled = raqlet.compile_datalog(program_text)
    facts = {"edge": [(1, 2)], "path": [(10, 11)]}
    expected = {(1, 2), (10, 11)}
    # One-shot API (pre-PR behaviour).
    assert raqlet.run_on_datalog_engine(compiled, facts).row_set() == expected
    # Session path, including a warm re-run after a reset-forcing mutation.
    with raqlet.session(facts) as session:
        prepared = session.prepare(compiled)
        assert prepared.run().row_set() == expected
        session.insert("edge", [(2, 3)])
        assert prepared.run().row_set() == {(1, 2), (2, 3), (1, 3), (10, 11)}


def test_binding_an_inlined_parameter_is_rejected(raqlet):
    """Binding a value for a compile-time-inlined parameter must not
    silently return the old binding's rows."""
    compiled = raqlet.compile_cypher(CITY_QUERY, {"personId": 42})
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(compiled)
        assert prepared.param_names == ()
        assert prepared.run().row_set() == {("Ada", 1)}
        # Re-stating the inlined value is harmless...
        assert prepared.run(personId=42).row_set() == {("Ada", 1)}
        # ...a different value (or an unknown name) is an error.
        with pytest.raises(RaqletError, match="inlined at compile"):
            prepared.run(personId=43)
        late = session.prepare(CITY_QUERY)
        with pytest.raises(RaqletError, match=r"unknown query parameter \$personid"):
            late.run(personid=42)  # typo: the real name is $personId


def test_language_detection_ignores_turnstile_in_strings(raqlet):
    from repro.session import detect_query_language

    cypher = 'MATCH (n:Person) WHERE n.firstName = ":-)" RETURN n.id AS id'
    assert detect_query_language(cypher) == "cypher"
    assert detect_query_language("p(a) :- q(a).") == "datalog"
    assert detect_query_language(".decl p(a:number)\np(1).") == "datalog"
    with raqlet.session(FACTS) as session:
        # Must compile as Cypher (no Datalog parse error).
        result = session.execute(cypher)
        assert result.rows == []


def test_mutating_the_original_name_of_a_derived_relation_is_rejected(raqlet):
    """An insert under the pre-namespace name would land in the shared
    store but never reach the renamed relation — reject it loudly."""
    program_text = """
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(a, b) :- edge(a, b).
.output path
"""
    with raqlet.session({"edge": [(1, 2)]}) as session:
        prepared = session.prepare(program_text)
        assert prepared.run().row_set() == {(1, 2)}
        with pytest.raises(RaqletError, match="derived"):
            session.insert("path", [(10, 11)])
        with pytest.raises(RaqletError, match="derived"):
            session.ingest({"path": [(10, 11)]})


def test_explain_accepts_bindings(raqlet):
    with raqlet.session(FACTS) as session:
        prepared = session.prepare(CITY_QUERY)
        # Usable before any run by supplying the binding directly.
        report = prepared.explain(personId=42)
        assert "datalog plan report" in report
        # Without arguments it reuses the most recent binding.
        assert "datalog plan report" in prepared.explain()


def test_datalog_engine_accepts_parameters(raqlet):
    compiled = raqlet.compile_cypher(CITY_QUERY)
    engine = raqlet.datalog_engine(compiled, FACTS, parameters={"personId": 43})
    assert engine.query().row_set() == {("Alan", 2)}
    assert "datalog plan report" in engine.explain()
