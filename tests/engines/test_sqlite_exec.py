"""Tests for the SQLite executor."""

import pytest

from repro.common.errors import ExecutionError
from repro.engines.sqlite_exec import SQLiteExecutor, run_sql_on_sqlite

from tests.conftest import PAPER_QUERY


def test_tables_created_from_schema(paper_raqlet, paper_facts):
    with SQLiteExecutor(paper_raqlet.dl_schema, paper_facts) as executor:
        assert executor.table_count("Person") == 3
        assert executor.table_count("City") == 2
        assert executor.table_count("Person_IS_LOCATED_IN_City") == 3


def test_execute_simple_sql(paper_raqlet, paper_facts):
    with SQLiteExecutor(paper_raqlet.dl_schema, paper_facts) as executor:
        result = executor.execute_sql("SELECT firstName FROM Person WHERE id = 42")
        assert result.rows == [("Ada",)]
        assert result.columns == ["firstName"]


def test_create_indexes_is_idempotent(paper_raqlet, paper_facts):
    with SQLiteExecutor(paper_raqlet.dl_schema, paper_facts) as executor:
        executor.create_indexes()
        executor.create_indexes()
        result = executor.execute_sql("SELECT COUNT(*) FROM Person")
        assert result.rows == [(3,)]


def test_invalid_sql_raises_execution_error(paper_raqlet, paper_facts):
    with SQLiteExecutor(paper_raqlet.dl_schema, paper_facts) as executor:
        with pytest.raises(ExecutionError):
            executor.execute_sql("SELECT * FROM MissingTable")


def test_unknown_relations_in_facts_are_ignored(paper_raqlet):
    facts = {"Person": [(1, "X", "ip")], "NotARelation": [(1,)]}
    with SQLiteExecutor(paper_raqlet.dl_schema, facts) as executor:
        assert executor.table_count("Person") == 1


def test_run_sql_on_sqlite_one_shot(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    sql = compiled.sql_text(dialect="sqlite")
    result = run_sql_on_sqlite(paper_raqlet.dl_schema, paper_facts, sql)
    assert result.rows == [("Ada", 1)]


def test_sqlite_matches_other_engines_on_snb(snb_raqlet, snb_data):
    from repro.ldbc import complex_query_2

    spec = complex_query_2(
        snb_data.dataset.default_person_id(), snb_data.dataset.median_message_date()
    )
    compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
    sqlite_result = snb_raqlet.run_on_sqlite(compiled, snb_data.sqlite_executor())
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    assert sqlite_result.same_rows(datalog_result)
