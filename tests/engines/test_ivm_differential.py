"""Mutation-sequence differential harness for incremental view maintenance.

Every seeded program from the cross-backend differential generator is run
through a deterministic script of interleaved ``insert``/``retract``/query
steps.  After **every** mutation the incrementally maintained store must be
set-equal — on every IDB relation — to a from-scratch re-derivation oracle
(:func:`tests.engines.test_store_differential.naive_evaluate`) of the
mutated EDB, across {interpreted, compiled, columnar} × {memory, sqlite}
(the columnar leg joins whenever NumPy is importable).  The
engine counters prove the property is not vacuous: every generated program
is maintainable, so ``full_rederive_count`` must stay 0 and
``maintain_count`` must equal the number of applied mutations — the
results came out of the counting/DRed maintenance paths, not from hidden
re-derivations.

The generated corpus covers recursion (linear, non-linear, guarded),
negation, aggregation (count/sum/min/max/avg, count(*), distinct),
arithmetic, constants and wildcards — exactly the feature interactions
where delete-and-rederive bugs (over-deletion, counting drift, negation
flips) hide.
"""

from __future__ import annotations

import random

import pytest

from repro import Raqlet
from repro.dlir.builder import ProgramBuilder
from repro.engines.datalog import DatalogEngine

from tests.engines.test_store_differential import (
    COMBINATIONS,
    _random_case,
    naive_evaluate,
)

#: ≥ 30 seeds, each mutated MUTATION_STEPS times on every executor × store combo
SEEDS = range(32)
MUTATION_STEPS = 12


def _mutation_script(seed, initial_edges, nodes=8):
    """Return a deterministic list of ``("insert" | "retract", row)`` steps.

    Roughly half the steps retract a currently-present edge (favouring the
    interesting case: deletions are where over-deletion and counting bugs
    live); the rest insert a row that is currently absent.  The script is a
    pure function of the seed, so every backend combination replays the
    same sequence.
    """
    rng = random.Random(10_000 + seed)
    current = set(initial_edges)
    script = []
    while len(script) < MUTATION_STEPS:
        if current and rng.random() < 0.5:
            row = rng.choice(sorted(current))
            current.discard(row)
            script.append(("retract", row))
        else:
            row = (rng.randrange(nodes), rng.randrange(nodes))
            if row in current:
                continue
            current.add(row)
            script.append(("insert", row))
    return script


@pytest.mark.parametrize("seed", SEEDS)
def test_mutation_sequence_matches_rederivation_oracle(seed):
    program, facts, idbs = _random_case(seed)
    script = _mutation_script(seed, facts["edge"])
    for executor, store in COMBINATIONS:
        engine = DatalogEngine(
            program, facts, store=store, executor=executor, ivm=True
        )
        engine.run()
        edges = set(facts["edge"])
        for step, (action, row) in enumerate(script):
            if action == "retract":
                assert engine.store.remove("edge", row), (
                    f"seed {seed}: script retracts an absent row {row}"
                )
                edges.discard(row)
                engine.maintain({}, {"edge": {row}})
            else:
                assert engine.store.add("edge", row), (
                    f"seed {seed}: script inserts a present row {row}"
                )
                edges.add(row)
                engine.maintain({"edge": {row}}, {})
            oracle = naive_evaluate(program, {"edge": sorted(edges)})
            for relation in idbs:
                assert set(engine.store.scan(relation)) == oracle.get(
                    relation, set()
                ), (
                    f"seed {seed}: {executor}/{store} diverged from the "
                    f"re-derivation oracle on {relation!r} after step {step} "
                    f"({action} {row})"
                )
        # The counters prove IVM (not hidden re-derivation) produced the
        # results: every generated program is maintainable.
        assert engine.maintain_count == len(script), (
            f"seed {seed}: {executor}/{store} maintained "
            f"{engine.maintain_count}/{len(script)} mutations incrementally"
        )
        assert engine.full_rederive_count == 0, (
            f"seed {seed}: {executor}/{store} fell back to full "
            "re-derivation on a maintainable program"
        )
        assert engine.reset_count == 0
        engine.store.close()


@pytest.mark.parametrize("seed", range(0, 32, 2))
def test_maintenance_report_equals_snapshot_diff(seed):
    """``engine.maintain`` must *report* exactly what it changed.

    At every step of the mutation script the returned
    :class:`MaintenanceReport` is checked against an independent
    before/after snapshot diff of every IDB relation — the contract the
    reactive subscription layer is built on.
    """
    program, facts, idbs = _random_case(seed)
    script = _mutation_script(seed, facts["edge"])
    engine = DatalogEngine(program, facts, ivm=True)
    engine.run()
    for step, (action, row) in enumerate(script):
        before = {relation: set(engine.store.scan(relation)) for relation in idbs}
        if action == "retract":
            engine.store.remove("edge", row)
            report = engine.maintain({}, {"edge": {row}})
        else:
            engine.store.add("edge", row)
            report = engine.maintain({"edge": {row}}, {})
        assert not report.full_rederive
        for relation in idbs:
            added, removed = report.relation_delta(relation)
            after = set(engine.store.scan(relation))
            assert added == after - before[relation], (
                f"seed {seed} step {step} ({action} {row}): report added "
                f"{added} but the store gained {after - before[relation]} "
                f"on {relation!r}"
            )
            assert removed == before[relation] - after, (
                f"seed {seed} step {step} ({action} {row}): report removed "
                f"{removed} but the store lost {before[relation] - after} "
                f"on {relation!r}"
            )
        # A reported relation carries a non-empty delta on at least a side.
        for relation in report.relations():
            added, removed = report.relation_delta(relation)
            assert added or removed
    engine.store.close()


@pytest.mark.parametrize("seed", (0, 5, 11))
def test_fallback_report_equals_snapshot_diff(seed, monkeypatch):
    """When maintenance errors out, the counted re-derivation fallback must
    report the same exact delta a successful pass would have."""
    from repro.engines.datalog import ivm

    program, facts, idbs = _random_case(seed)
    engine = DatalogEngine(program, facts, ivm=True)
    engine.run()

    def explode(self, added, removed):
        raise RuntimeError("forced maintenance failure")

    monkeypatch.setattr(ivm.IncrementalMaintainer, "maintain", explode)
    before = {relation: set(engine.store.scan(relation)) for relation in idbs}
    row = (0, 1)
    fresh = engine.store.add("edge", row)
    report = engine.maintain({"edge": {row}} if fresh else {}, {})
    assert report.full_rederive
    assert engine.full_rederive_count == 1
    assert engine.maintain_count == 0
    for relation in idbs:
        added, removed = report.relation_delta(relation)
        after = set(engine.store.scan(relation))
        assert added == after - before[relation]
        assert removed == before[relation] - after
    engine.store.close()


def test_corpus_covers_negation_and_aggregates():
    """The sampled seeds must include negation and aggregate programs."""
    with_negation = with_aggregate = with_recursion = 0
    for seed in SEEDS:
        program, _facts, _idbs = _random_case(seed)
        if any(rule.has_negation() for rule in program.rules):
            with_negation += 1
        if any(rule.has_aggregation() for rule in program.rules):
            with_aggregate += 1
        relations = {rule.head.relation for rule in program.rules}
        if any(
            name in relations
            for rule in program.rules
            for name in rule.referenced_relations()
        ):
            with_recursion += 1
    assert with_negation >= 3
    assert with_aggregate >= 3
    assert with_recursion >= 3


# -- the over-deletion regression (pinned before DRed was wired) ------------


def test_retract_keeps_alternately_derived_row_nonrecursive():
    """Counting: a head row with two supports survives losing one.

    ``t(x) :- edge(x, _)`` derives ``t(1)`` from both (1, 2) and (1, 3);
    retracting (1, 2) must keep ``t(1)`` (the naive "delete what the
    retracted row derived" strategy would drop it).
    """


    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("t", [("a", "number")])
    builder.rule("t", ["x"], [("edge", ["x", "_"])])
    program = builder.output("t").build()
    for executor, store in COMBINATIONS:
        engine = DatalogEngine(
            program,
            {"edge": [(1, 2), (1, 3), (4, 5)]},
            store=store,
            executor=executor,
            ivm=True,
        )
        engine.run()
        engine.store.remove("edge", (1, 2))
        engine.maintain({}, {"edge": {(1, 2)}})
        assert set(engine.store.scan("t")) == {(1,), (4,)}
        assert engine.maintain_count == 1
        assert engine.full_rederive_count == 0
        # and losing the last support does delete the row
        engine.store.remove("edge", (1, 3))
        engine.maintain({}, {"edge": {(1, 3)}})
        assert set(engine.store.scan("t")) == {(4,)}
        engine.store.close()


def test_retract_keeps_rederivable_row_recursive():
    """DRed: over-deletion must be repaired by re-derivation.

    With edges 1→2, 1→3, 3→2 the closure contains path(1, 2) twice over
    (directly and via 3).  Retracting edge (1, 2) over-deletes path(1, 2)
    in DRed's first phase; the re-derivation phase must bring it back.
    """


    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("path", [("a", "number"), ("b", "number")])
    builder.rule("path", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("path", ["x", "y"], [("path", ["x", "z"]), ("edge", ["z", "y"])])
    program = builder.output("path").build()
    for executor, store in COMBINATIONS:
        engine = DatalogEngine(
            program,
            {"edge": [(1, 2), (1, 3), (3, 2)]},
            store=store,
            executor=executor,
            ivm=True,
        )
        engine.run()
        engine.store.remove("edge", (1, 2))
        engine.maintain({}, {"edge": {(1, 2)}})
        assert set(engine.store.scan("path")) == {(1, 3), (3, 2), (1, 2)}, (
            f"{executor}/{store}: path(1,2) is still derivable via 1→3→2 "
            "and must survive the retraction of the direct edge"
        )
        assert engine.maintain_count == 1
        assert engine.full_rederive_count == 0
        engine.store.close()


def test_session_retract_keeps_still_derivable_row():
    """The session path must not over-delete either (ISSUE satellite: a
    retracted fact that also matches a rule head keeps the derived row
    alive while another derivation exists)."""
    schema = """
    CREATE GRAPH {
      (personType : Person { id INT, firstName STRING, locationIP STRING }),
      (:personType)-[knowsType : knows { id INT }]->(:personType)
    }
    """
    facts = {
        "Person": [
            (1, "a", "ip1"),
            (2, "b", "ip2"),
            (3, "c", "ip3"),
        ],
        "Person_KNOWS_Person": [(1, 2, 10), (1, 3, 11), (3, 2, 12)],
    }
    raqlet = Raqlet(schema)
    with raqlet.session(facts) as session:
        prepared = session.prepare(
            """
            MATCH (a:Person {id: $src})-[:KNOWS*]->(b:Person)
            RETURN DISTINCT b.id AS reachable
            """
        )
        assert set(prepared.run(src=1).rows) == {(2,), (3,)}
        # 2 is reachable both directly and via 3; losing the direct edge
        # must keep it reachable.
        assert session.retract("Person_KNOWS_Person", [(1, 2, 10)]) == 1
        assert set(prepared.run(src=1).rows) == {(2,), (3,)}
        engine = prepared.engine
        assert engine.maintain_count == 1
        assert engine.full_rederive_count == 0
        # and severing the remaining support does remove it
        assert session.retract("Person_KNOWS_Person", [(3, 2, 12)]) == 1
        assert set(prepared.run(src=1).rows) == {(3,)}
        assert engine.maintain_count == 2
        assert engine.full_rederive_count == 0


def test_session_mutations_use_maintenance_not_rederivation():
    """Interleaved session insert/retract/read: results stay correct and the
    reset counter proves reads after mutations ran the maintenance path."""
    schema = """
    CREATE GRAPH {
      (personType : Person { id INT, firstName STRING, locationIP STRING }),
      (:personType)-[knowsType : knows { id INT }]->(:personType)
    }
    """
    facts = {
        "Person": [(i, f"p{i}", f"ip{i}") for i in range(1, 6)],
        "Person_KNOWS_Person": [(1, 2, 10), (2, 3, 11), (3, 4, 12)],
    }
    raqlet = Raqlet(schema)
    with raqlet.session(facts) as session:
        prepared = session.prepare(
            """
            MATCH (a:Person {id: $src})-[:KNOWS*]->(b:Person)
            RETURN DISTINCT b.id AS reachable
            """
        )
        assert set(prepared.run(src=1).rows) == {(2,), (3,), (4,)}
        resets_after_first_run = prepared.engine.reset_count
        session.insert("Person_KNOWS_Person", [(4, 5, 13)])
        assert set(prepared.run(src=1).rows) == {(2,), (3,), (4,), (5,)}
        session.retract("Person_KNOWS_Person", [(2, 3, 11)])
        assert set(prepared.run(src=1).rows) == {(2,)}
        session.insert("Person_KNOWS_Person", [(1, 4, 14)])
        assert set(prepared.run(src=1).rows) == {(2,), (4,), (5,)}
        engine = prepared.engine
        assert engine.maintain_count == 3
        assert engine.full_rederive_count == 0
        assert engine.reset_count == resets_after_first_run, (
            "mutated reads must maintain in place, not reset + re-derive"
        )
        # a cancelled-out mutation pair is a no-op delta for the next read
        session.insert("Person_KNOWS_Person", [(9, 9, 99)])
        session.retract("Person_KNOWS_Person", [(9, 9, 99)])
        assert set(prepared.run(src=1).rows) == {(2,), (4,), (5,)}
        assert engine.full_rederive_count == 0
