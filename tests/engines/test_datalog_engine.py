"""Tests for the semi-naive Datalog engine."""

import pytest

from repro.common.errors import ExecutionError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, ArithExpr, Atom, Const, Rule, Var
from repro.engines.datalog import DatalogEngine, evaluate_program


def _tc_program(nonlinear=False):
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    if nonlinear:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    else:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    return builder.build()


CHAIN = {"edge": [(1, 2), (2, 3), (3, 4), (4, 5)]}
CYCLE = {"edge": [(1, 2), (2, 3), (3, 1)]}


def test_transitive_closure_on_chain():
    result = evaluate_program(_tc_program(), CHAIN, relation="tc")
    assert len(result) == 10
    assert (1, 5) in result.row_set()
    assert (5, 1) not in result.row_set()


def test_transitive_closure_on_cycle_terminates():
    result = evaluate_program(_tc_program(), CYCLE, relation="tc")
    assert len(result) == 9  # every ordered pair including self-loops
    assert (1, 1) in result.row_set()


def test_nonlinear_tc_matches_linear_tc():
    linear = evaluate_program(_tc_program(False), CHAIN, relation="tc")
    nonlinear = evaluate_program(_tc_program(True), CHAIN, relation="tc")
    assert linear.same_rows(nonlinear)


def test_facts_from_program_and_argument_are_merged():
    program = _tc_program()
    program.add_fact("edge", (10, 11))
    result = evaluate_program(program, {"edge": [(11, 12)]}, relation="tc")
    assert (10, 12) in result.row_set()


def test_query_defaults_to_first_output():
    engine = DatalogEngine(_tc_program(), CHAIN)
    assert engine.query().columns == ["a", "b"]


def test_engine_run_is_idempotent():
    engine = DatalogEngine(_tc_program(), CHAIN)
    first = engine.query("tc")
    second = engine.query("tc")
    assert first.same_rows(second)
    assert engine.fact_count("tc") == 10
    assert engine.iteration_count("tc") >= 2


def test_invalid_program_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    program = builder.build()
    program.add_rule(Rule(head=Atom("q", (Var("x"),)), body=(Atom("edge", (Var("x"), Var("y"))),)))
    with pytest.raises(ExecutionError):
        DatalogEngine(program)


def test_query_without_output_raises():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    engine = DatalogEngine(builder.build(), CHAIN)
    with pytest.raises(ExecutionError):
        engine.query()


def test_comparisons_filter_and_bind():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("age", "number")])
    builder.idb("adult", [("id", "number"), ("label", "number")])
    builder.rule(
        "adult", ["x", "lab"],
        [("person", ["x", "a"])],
        comparisons=[(">=", "a", 18), ("=", "lab", 1)],
    )
    builder.output("adult")
    facts = {"person": [(1, 20), (2, 15), (3, 18)]}
    result = evaluate_program(builder.build(), facts, relation="adult")
    assert result.row_set() == {(1, 1), (3, 1)}


def test_negation_with_stratification():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("reach", [("b", "number")])
    builder.idb("unreached", [("id", "number")])
    builder.rule("reach", ["y"], [("edge", [1, "y"])])
    builder.rule("reach", ["y"], [("reach", ["x"]), ("edge", ["x", "y"])])
    builder.rule("unreached", ["n"], [("node", ["n"])], negated=[("reach", ["n"])])
    builder.output("unreached")
    facts = {"node": [(1,), (2,), (3,), (4,)], "edge": [(1, 2), (2, 3)]}
    result = evaluate_program(builder.build(), facts, relation="unreached")
    assert result.row_set() == {(1,), (4,)}


def test_aggregation_count_and_sum():
    builder = ProgramBuilder()
    builder.edb("sale", [("shop", "number"), ("amount", "number")])
    builder.idb("stats", [("shop", "number"), ("n", "number"), ("total", "number")])
    builder.rule(
        "stats", ["s", "n", "t"],
        [("sale", ["s", "a"])],
        aggregations=[
            Aggregation("count", Var("n"), Var("a")),
            Aggregation("sum", Var("t"), Var("a")),
        ],
    )
    builder.output("stats")
    facts = {"sale": [(1, 10), (1, 20), (2, 5)]}
    result = evaluate_program(builder.build(), facts, relation="stats")
    assert result.row_set() == {(1, 2, 30), (2, 1, 5)}


def test_aggregation_min_max_avg():
    builder = ProgramBuilder()
    builder.edb("sale", [("shop", "number"), ("amount", "number")])
    builder.idb("extremes", [("shop", "number"), ("lo", "number"), ("hi", "number"), ("mean", "float")])
    builder.rule(
        "extremes", ["s", "lo", "hi", "m"],
        [("sale", ["s", "a"])],
        aggregations=[
            Aggregation("min", Var("lo"), Var("a")),
            Aggregation("max", Var("hi"), Var("a")),
            Aggregation("avg", Var("m"), Var("a")),
        ],
    )
    builder.output("extremes")
    facts = {"sale": [(1, 10), (1, 20)]}
    result = evaluate_program(builder.build(), facts, relation="extremes")
    assert result.row_set() == {(1, 10, 20, 15.0)}


def test_arithmetic_in_head():
    builder = ProgramBuilder()
    builder.edb("n", [("v", "number")])
    builder.idb("double", [("v", "number")])
    program = builder.build(validate=False)
    program.add_rule(
        Rule(
            head=Atom("double", (ArithExpr("*", Var("x"), Const(2)),)),
            body=(Atom("n", (Var("x"),)),),
        )
    )
    program.add_output("double")
    result = evaluate_program(program, {"n": [(1,), (3,)]}, relation="double")
    assert result.row_set() == {(2,), (6,)}


def test_min_subsumption_shortest_paths_on_cyclic_graph():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("dist", [("a", "number"), ("b", "number"), ("d", "number")])
    program = builder.build(validate=False)
    program.add_rule(
        Rule(
            head=Atom("dist", (Var("a"), Var("b"), Const(1))),
            body=(Atom("edge", (Var("a"), Var("b"))),),
            subsume_min=2,
        )
    )
    program.add_rule(
        Rule(
            head=Atom("dist", (Var("a"), Var("b"), ArithExpr("+", Var("d"), Const(1)))),
            body=(
                Atom("dist", (Var("a"), Var("z"), Var("d"))),
                Atom("edge", (Var("z"), Var("b"))),
            ),
            subsume_min=2,
        )
    )
    program.add_output("dist")
    facts = {"edge": [(1, 2), (2, 3), (3, 1), (1, 3)]}
    result = evaluate_program(program, facts, relation="dist")
    distances = {(row[0], row[1]): row[2] for row in result}
    assert distances[(1, 3)] == 1  # direct edge wins over the 2-hop path
    assert distances[(1, 1)] == 2  # 1 -> 3 -> 1, shorter than 1 -> 2 -> 3 -> 1
    assert distances[(3, 2)] == 2
    # Exactly one distance per pair (subsumption keeps only the minimum).
    assert len(result) == len(distances)


def test_mutual_recursion_evaluation():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("even")
    builder.output("odd")
    facts = {"edge": [(1, 2), (2, 3), (3, 4), (4, 5)]}
    engine = DatalogEngine(builder.build(), facts)
    even = engine.query("even")
    odd = engine.query("odd")
    assert (1, 3) in even.row_set() and (1, 5) in even.row_set()
    assert (1, 2) in odd.row_set() and (1, 4) in odd.row_set()
    assert (1, 3) not in odd.row_set()


def test_fact_rule_heads_are_derived():
    builder = ProgramBuilder()
    builder.idb("seed", [("x", "number")])
    builder.rule("seed", [5], [])
    builder.output("seed")
    result = evaluate_program(builder.build(), {}, relation="seed")
    assert result.rows == [(5,)]


def test_reset_restores_seed_facts_on_derived_relations():
    """Constructor facts attached to a relation that also has rules must
    survive reset(): warm re-derivation equals the first derivation."""
    from repro.frontend.datalog import parse_datalog

    program = parse_datalog(
        """
.decl edge(a:number, b:number)
.decl path(a:number, b:number)
path(a, b) :- edge(a, b).
path(a, c) :- path(a, b), edge(b, c).
.output path
"""
    )
    engine = DatalogEngine(program, {"edge": [(1, 2)], "path": [(10, 11)]})
    first = engine.query("path").row_set()
    assert first == {(1, 2), (10, 11)}
    engine.reset()
    assert engine.query("path").row_set() == first
