"""Tests for the property-graph store and the PGIR interpreter."""

import pytest

from repro.common.errors import ExecutionError, UnsupportedFeatureError
from repro.engines.graph import GraphEngine, PropertyGraph, facts_to_property_graph
from repro.frontend.cypher import parse_cypher
from repro.pgir import lower_cypher_to_pgir

from tests.conftest import PAPER_QUERY


# -- store ---------------------------------------------------------------------


def _small_graph():
    graph = PropertyGraph()
    for node_id, name in [(1, "a"), (2, "b"), (3, "c")]:
        graph.add_node("Node", node_id, {"name": name})
    graph.add_edge("LINKS_TO", "Node", 1, "Node", 2, {"id": 10})
    graph.add_edge("LINKS_TO", "Node", 2, "Node", 3, {"id": 11})
    return graph


def test_store_counts_and_lookups():
    graph = _small_graph()
    assert graph.node_count() == 3
    assert graph.edge_count() == 2
    assert graph.node("Node", 1).properties["name"] == "a"
    assert graph.node("Node", 9) is None
    assert graph.node_labels() == ["Node"]
    assert graph.has_edge_label("LINKS_TO")
    assert graph.edge_endpoint_labels("LINKS_TO") == ("Node", "Node")


def test_store_adjacency_indexes():
    graph = _small_graph()
    assert [edge.target for edge in graph.out_edges("LINKS_TO", "Node", 1)] == [2]
    assert [edge.source for edge in graph.in_edges("LINKS_TO", "Node", 3)] == [2]
    assert len(graph.all_edges("LINKS_TO")) == 2
    assert graph.all_edges("OTHER") == []


def test_store_rejects_duplicates_and_dangling_edges():
    graph = _small_graph()
    with pytest.raises(ExecutionError):
        graph.add_node("Node", 1)
    with pytest.raises(ExecutionError):
        graph.add_edge("LINKS_TO", "Node", 1, "Node", 99)
    with pytest.raises(ExecutionError):
        graph.edge_endpoint_labels("MISSING")


def test_node_property_id_is_intrinsic():
    graph = _small_graph()
    assert graph.node_property("Node", 2, "id") == 2
    assert graph.node_property("Node", 2, "name") == "b"
    with pytest.raises(ExecutionError):
        graph.node_property("Node", 99, "name")


def test_facts_to_property_graph(paper_mapping, paper_facts):
    graph = facts_to_property_graph(paper_facts, paper_mapping)
    assert graph.node_count() == 5
    assert graph.edge_count() == 3
    assert graph.node("Person", 42).properties["firstName"] == "Ada"
    assert graph.edge_endpoint_labels("IS_LOCATED_IN") == ("Person", "City")


# -- interpreter -----------------------------------------------------------------


def _execute(query_text, graph, parameters=None):
    lowering = lower_cypher_to_pgir(parse_cypher(query_text), parameters)
    return GraphEngine(graph).execute(lowering)


@pytest.fixture(scope="module")
def paper_graph(paper_mapping, paper_facts):
    return facts_to_property_graph(paper_facts, paper_mapping)


def test_paper_query_on_graph_engine(paper_graph):
    result = _execute(PAPER_QUERY, paper_graph)
    assert result.columns == ["firstName", "cityId"]
    assert result.rows == [("Ada", 1)]


def test_node_scan_without_edges(paper_graph):
    result = _execute("MATCH (n:Person) RETURN n.id AS id", paper_graph)
    assert result.row_set() == {(42,), (43,), (44,)}


def test_where_filters_rows(paper_graph):
    result = _execute(
        "MATCH (n:Person) WHERE n.id > 42 RETURN n.firstName AS name", paper_graph
    )
    assert result.row_set() == {("Alan",), ("Edgar",)}


def test_incoming_direction(paper_graph):
    result = _execute(
        "MATCH (c:City)<-[:IS_LOCATED_IN]-(n:Person) WHERE c.id = 1 RETURN n.id AS id",
        paper_graph,
    )
    assert result.row_set() == {(42,), (44,)}


def test_aggregation_per_city(paper_graph):
    result = _execute(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(c:City) "
        "RETURN c.id AS cityId, count(n) AS inhabitants",
        paper_graph,
    )
    assert result.row_set() == {(1, 2), (2, 1)}


def test_distinct_projection(paper_graph):
    result = _execute(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(c:City) RETURN DISTINCT c.id AS cityId",
        paper_graph,
    )
    assert result.row_set() == {(1,), (2,)}


def _links_graph():
    graph = PropertyGraph()
    for node_id in range(1, 7):
        graph.add_node("Node", node_id, {"name": f"n{node_id}"})
    for index, (src, dst) in enumerate([(1, 2), (2, 3), (3, 4), (4, 2), (5, 6)]):
        graph.add_edge("LINKS_TO", "Node", src, "Node", dst, {"id": index})
    return graph


def test_unbounded_variable_length(paper_graph):
    graph = _links_graph()
    result = _execute(
        "MATCH (a:Node)-[:LINKS_TO*]->(b:Node) WHERE a.id = 1 RETURN b.id AS target",
        graph,
    )
    assert result.row_set() == {(2,), (3,), (4,)}


def test_bounded_variable_length_levels():
    graph = _links_graph()
    result = _execute(
        "MATCH (a:Node)-[:LINKS_TO*1..2]->(b:Node) WHERE a.id = 1 RETURN b.id AS target",
        graph,
    )
    assert result.row_set() == {(2,), (3,)}


def test_zero_length_includes_start():
    graph = _links_graph()
    result = _execute(
        "MATCH (a:Node)-[:LINKS_TO*0..1]->(b:Node) WHERE a.id = 1 RETURN b.id AS target",
        graph,
    )
    assert result.row_set() == {(1,), (2,)}


def test_shortest_path_length():
    graph = _links_graph()
    result = _execute(
        "MATCH p = shortestPath((a:Node {id: 1})-[:LINKS_TO*]->(b:Node {id: 4})) "
        "RETURN length(p) AS hops",
        graph,
    )
    assert result.rows == [(3,)]


def test_unwind_rejected(paper_graph):
    with pytest.raises(UnsupportedFeatureError):
        _execute("UNWIND [1,2] AS x RETURN x", paper_graph)


def test_optional_match_rejected(paper_graph):
    with pytest.raises(UnsupportedFeatureError):
        _execute("OPTIONAL MATCH (n:Person) RETURN n.id AS id", paper_graph)


def test_graph_engine_matches_datalog_engine_on_snb(snb_raqlet, snb_data):
    from repro.ldbc import short_query_1

    spec = short_query_1(snb_data.dataset.default_person_id())
    compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
    graph_result = snb_raqlet.run_on_graph_engine(compiled, snb_data.property_graph())
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    assert graph_result.same_rows(datalog_result)
