"""Hypothesis contract tests for the IVM counting sidecar.

Property-based pinning of the sidecar invariants on both backends:

* **counts never go negative** — after any mutation sequence every stored
  count is positive, and for counting-maintained relations the set of
  counted rows is exactly the set of stored rows;
* **retract ∘ insert is the identity** — inserting a batch and retracting
  it again restores the store (EDB and IDB) and the sidecar bit-for-bit;
* **duplicate inserts are idempotent** — set semantics: re-inserting
  present rows is an effective no-op, both through the engine and through
  ``Session.insert`` (which reports 0 new rows and logs nothing).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Raqlet
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.engines.datalog import DatalogEngine
from repro.engines.datalog.ivm import CountSidecar, IVMError

STORES = ["memory", "sqlite"]

#: small domain so mutation sequences collide often (the interesting case)
_row = st.tuples(st.integers(0, 4), st.integers(0, 4))
_rows = st.frozensets(_row, max_size=10)
_mutations = st.lists(st.tuples(st.booleans(), _row), max_size=12)

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _program():
    """Counting stratum (projection + aggregate) over one EDB relation."""
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("p", [("a", "number"), ("b", "number")])
    builder.idb("t", [("a", "number")])
    builder.idb("deg", [("a", "number"), ("n", "number")])
    builder.rule("p", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("t", ["x"], [("edge", ["x", "_"])])
    builder.rule(
        "deg", ["x", "n"], [("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("n"), argument=Var("y"))],
    )
    return builder.output("p").output("t").output("deg").build()


def _snapshot(engine):
    """Store contents of every relation plus the sidecar counts."""
    state = {
        relation: frozenset(map(tuple, engine.store.scan(relation)))
        for relation in ("edge", "p", "t", "deg")
    }
    counts = {
        relation: engine.maintainer.counts.relation_counts(relation)
        for relation in ("p", "t", "deg")
    }
    return state, counts


def _apply(engine, added, removed):
    for row in added:
        engine.store.add("edge", row)
    for row in removed:
        engine.store.remove("edge", row)
    engine.maintain({"edge": set(added)}, {"edge": set(removed)})


@pytest.mark.parametrize("store", STORES)
@_SETTINGS
@given(initial=_rows, mutations=_mutations)
def test_counts_stay_positive_and_match_store(store, initial, mutations):
    engine = DatalogEngine(
        _program(), {"edge": sorted(initial)}, store=store, ivm=True
    )
    engine.run()
    edges = set(initial)
    for insert, row in mutations:
        if insert and row not in edges:
            edges.add(row)
            _apply(engine, {row}, set())
        elif not insert and row in edges:
            edges.discard(row)
            _apply(engine, set(), {row})
        counts = engine.maintainer.counts
        for relation in ("p", "t", "deg"):
            per_row = counts.relation_counts(relation)
            assert all(count > 0 for count in per_row.values()), (
                f"{store}: negative/zero count survived in {relation}"
            )
            assert set(per_row) == set(
                map(tuple, engine.store.scan(relation))
            ), f"{store}: sidecar and store disagree on {relation}"
    assert engine.full_rederive_count == 0
    engine.store.close()


@pytest.mark.parametrize("store", STORES)
@_SETTINGS
@given(initial=_rows, batch=_rows)
def test_retract_of_insert_is_identity(store, initial, batch):
    engine = DatalogEngine(
        _program(), {"edge": sorted(initial)}, store=store, ivm=True
    )
    engine.run()
    before = _snapshot(engine)
    effective = batch - initial
    _apply(engine, effective, set())
    _apply(engine, set(), effective)
    assert _snapshot(engine) == before, (
        f"{store}: insert-then-retract of {sorted(effective)} did not "
        "restore the store and sidecar"
    )
    assert engine.full_rederive_count == 0
    engine.store.close()


@pytest.mark.parametrize("store", STORES)
@_SETTINGS
@given(initial=_rows)
def test_duplicate_insert_is_idempotent(store, initial):
    engine = DatalogEngine(
        _program(), {"edge": sorted(initial)}, store=store, ivm=True
    )
    engine.run()
    before = _snapshot(engine)
    # Set semantics: re-adding present rows is not an effective delta.
    # The store reports them as non-new; the (empty) delta is a no-op.
    effective = {row for row in initial if engine.store.add("edge", row)}
    assert effective == set()
    engine.maintain({"edge": effective}, {})
    assert _snapshot(engine) == before
    assert engine.full_rederive_count == 0
    engine.store.close()


# -- session-level set semantics -------------------------------------------

_SESSION_SCHEMA = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (:personType)-[knowsType : knows { id INT }]->(:personType)
}
"""


@pytest.mark.parametrize("store", STORES)
def test_session_duplicate_insert_and_absent_retract(store):
    raqlet = Raqlet(_SESSION_SCHEMA)
    facts = {
        "Person": [(1, "a", "ip"), (2, "b", "ip")],
        "Person_KNOWS_Person": [(1, 2, 7)],
    }
    with raqlet.session(facts, store=store) as session:
        prepared = session.prepare(
            "MATCH (a:Person {id: $src})-[:KNOWS*]->(b:Person) "
            "RETURN DISTINCT b.id AS reachable"
        )
        assert set(prepared.run(src=1).rows) == {(2,)}
        # duplicate insert: 0 new rows, nothing logged, result unchanged
        assert session.insert("Person_KNOWS_Person", [(1, 2, 7)]) == 0
        assert set(prepared.run(src=1).rows) == {(2,)}
        # retract of an absent row: 0 removed, result unchanged
        assert session.retract("Person_KNOWS_Person", [(9, 9, 9)]) == 0
        assert set(prepared.run(src=1).rows) == {(2,)}
        # insert-then-retract round trip is the identity
        assert session.insert("Person_KNOWS_Person", [(2, 1, 8)]) == 1
        assert session.retract("Person_KNOWS_Person", [(2, 1, 8)]) == 1
        assert set(prepared.run(src=1).rows) == {(2,)}
        assert prepared.engine.full_rederive_count == 0


# -- the sidecar's own contract --------------------------------------------


def test_sidecar_rejects_negative_counts():
    sidecar = CountSidecar()
    sidecar.adjust("p", (1, 2), 1)
    assert sidecar.get("p", (1, 2)) == 1
    assert sidecar.adjust("p", (1, 2), -1) == 0
    assert sidecar.relation_counts("p") == {}  # zero counts are dropped
    with pytest.raises(IVMError):
        sidecar.adjust("p", (1, 2), -1)
    with pytest.raises(IVMError):
        sidecar.set("q", (3,), -2)
