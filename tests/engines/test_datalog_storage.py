"""Tests for the Datalog engine's fact store."""

from repro.engines.datalog.storage import FactStore


def test_add_and_contains():
    store = FactStore()
    assert store.add("r", (1, 2))
    assert not store.add("r", (1, 2))  # duplicate
    assert store.contains("r", (1, 2))
    assert store.count("r") == 1


def test_add_many_counts_new_rows():
    store = FactStore()
    assert store.add_many("r", [(1,), (2,), (1,)]) == 2
    assert store.add_many("r", [(2,), (3,)]) == 1


def test_lookup_uses_position_index():
    store = FactStore()
    store.add_many("edge", [(1, 2), (1, 3), (2, 3)])
    assert sorted(store.lookup("edge", [0], (1,))) == [(1, 2), (1, 3)]
    assert store.lookup("edge", [0, 1], (2, 3)) == [(2, 3)]
    assert store.lookup("edge", [1], (9,)) == []


def test_lookup_with_no_positions_scans():
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3)])
    assert len(store.lookup("edge", [], ())) == 2


def test_index_invalidated_after_insert():
    store = FactStore()
    store.add("edge", (1, 2))
    assert store.lookup("edge", [0], (1,)) == [(1, 2)]
    store.add("edge", (1, 3))
    assert sorted(store.lookup("edge", [0], (1,))) == [(1, 2), (1, 3)]


def test_remove_and_replace():
    store = FactStore()
    store.add_many("r", [(1,), (2,)])
    store.remove("r", (1,))
    assert not store.contains("r", (1,))
    store.replace("r", [(9,)])
    assert store.scan("r") == [(9,)]


def test_snapshot_is_a_copy():
    store = FactStore()
    store.add("r", (1,))
    snapshot = store.snapshot()
    snapshot["r"].add((2,))
    assert store.count("r") == 1
