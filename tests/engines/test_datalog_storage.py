"""Tests for the Datalog engine's fact store and its incremental indexes."""

import pytest

from repro.engines.datalog.storage import (
    DeltaView,
    FactStore,
    StoreBackend,
    create_store,
)
from repro.engines.datalog.storage_sqlite import SQLiteFactStore


def test_add_and_contains():
    store = FactStore()
    assert store.add("r", (1, 2))
    assert not store.add("r", (1, 2))  # duplicate
    assert store.contains("r", (1, 2))
    assert store.count("r") == 1


def test_add_many_counts_new_rows():
    store = FactStore()
    assert store.add_many("r", [(1,), (2,), (1,)]) == 2
    assert store.add_many("r", [(2,), (3,)]) == 1


def test_lookup_uses_position_index():
    store = FactStore()
    store.add_many("edge", [(1, 2), (1, 3), (2, 3)])
    assert sorted(store.lookup("edge", [0], (1,))) == [(1, 2), (1, 3)]
    assert store.lookup("edge", [0, 1], (2, 3)) == [(2, 3)]
    assert store.lookup("edge", [1], (9,)) == []


def test_lookup_with_no_positions_scans():
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3)])
    assert len(store.lookup("edge", [], ())) == 2


def test_index_sees_rows_inserted_after_build():
    store = FactStore()
    store.add("edge", (1, 2))
    assert store.lookup("edge", [0], (1,)) == [(1, 2)]
    store.add("edge", (1, 3))
    assert sorted(store.lookup("edge", [0], (1,))) == [(1, 2), (1, 3)]


def test_interleaved_inserts_and_lookups_keep_indexes_correct():
    """The incremental-maintenance path: grow, probe, grow, probe."""
    store = FactStore()
    rows = [(i, i % 3, i * 10) for i in range(60)]
    for step, row in enumerate(rows):
        store.add("r", row)
        if step % 5 == 0:
            # Touch several indexes so later inserts must maintain them all.
            store.lookup("r", [1], (row[1],))
            store.lookup("r", [0, 1], (row[0], row[1]))
    for i, m, v in rows:
        assert (i, m, v) in store.lookup("r", [1], (m,))
        assert store.lookup("r", [0, 1], (i, m)) == [(i, m, v)]
        assert store.lookup("r", [2], (v,)) == [(i, m, v)]
    # Each distinct (relation, positions) index was built exactly once.
    assert store.index_build_count == store.index_count == 3


def test_add_many_updates_existing_indexes_in_place():
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3)])
    assert store.lookup("edge", [0], (2,)) == [(2, 3)]
    builds = store.index_build_count
    assert store.add_many("edge", [(2, 4), (2, 3), (5, 6)]) == 2
    assert sorted(store.lookup("edge", [0], (2,))) == [(2, 3), (2, 4)]
    assert store.lookup("edge", [0], (5,)) == [(5, 6)]
    assert store.index_build_count == builds


def test_remove_updates_existing_indexes_in_place():
    store = FactStore()
    store.add_many("dist", [(1, 2, 5), (1, 2, 3), (1, 4, 7)])
    assert len(store.lookup("dist", [0, 1], (1, 2))) == 2
    builds = store.index_build_count
    store.remove("dist", (1, 2, 5))
    assert store.lookup("dist", [0, 1], (1, 2)) == [(1, 2, 3)]
    store.remove("dist", (1, 2, 3))
    assert store.lookup("dist", [0, 1], (1, 2)) == []
    assert store.index_build_count == builds


def test_replace_drops_indexes_for_rebuild():
    store = FactStore()
    store.add_many("r", [(1,), (2,)])
    assert store.lookup("r", [0], (1,)) == [(1,)]
    store.replace("r", [(9,)])
    assert store.lookup("r", [0], (1,)) == []
    assert store.lookup("r", [0], (9,)) == [(9,)]
    assert store.index_build_count == 2  # one initial build, one after replace


def test_legacy_mode_rebuilds_on_every_growth():
    store = FactStore(maintain_indexes=False)
    store.add("edge", (1, 2))
    assert store.lookup("edge", [0], (1,)) == [(1, 2)]
    store.add("edge", (1, 3))
    assert sorted(store.lookup("edge", [0], (1,))) == [(1, 2), (1, 3)]
    assert store.index_build_count == 2


def test_delta_view_scan_and_lookup():
    view = DeltaView([(1, 2), (1, 3), (2, 3)])
    assert len(view) == 3
    assert sorted(view.scan()) == [(1, 2), (1, 3), (2, 3)]
    assert sorted(view.lookup([0], (1,))) == [(1, 2), (1, 3)]
    assert list(view.lookup([0, 1], (2, 3))) == [(2, 3)]
    assert list(view.lookup([1], (9,))) == []
    assert list(view.lookup([], ())) == list(view.scan())


def test_delta_view_empty_delta():
    view = DeltaView([])
    assert len(view) == 0
    assert list(view.scan()) == []
    assert list(view.lookup([0], (1,))) == []
    assert list(view.lookup([], ())) == []


def test_delta_view_collapses_duplicate_rows():
    """A delta is a set of facts: duplicates collapse, order is preserved."""
    view = DeltaView([(1, 2), (1, 2), (2, 3), (1, 2)])
    assert len(view) == 2
    assert view.scan() == ((1, 2), (2, 3))
    assert view.lookup([0], (1,)) == [(1, 2)]


def test_delta_view_lookup_on_all_positions():
    view = DeltaView([(1, 2, 3), (1, 2, 4)])
    assert view.lookup([0, 1, 2], (1, 2, 3)) == [(1, 2, 3)]
    assert list(view.lookup([0, 1, 2], (9, 9, 9))) == []
    assert sorted(view.lookup([0, 1], (1, 2))) == [(1, 2, 3), (1, 2, 4)]


def test_create_store_resolves_specs(tmp_path):
    assert isinstance(create_store("memory"), FactStore)
    assert isinstance(create_store("sqlite"), SQLiteFactStore)
    db_path = tmp_path / "facts.db"
    file_store = create_store(f"sqlite:{db_path}")
    assert isinstance(file_store, SQLiteFactStore)
    file_store.add("r", (1, 2))
    assert db_path.exists()
    file_store.close()
    existing = FactStore()
    assert create_store(existing) is existing
    with pytest.raises(ValueError):
        create_store("redis")


def test_create_store_honours_environment(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert isinstance(create_store(), FactStore)
    monkeypatch.setenv("REPRO_STORE", "sqlite")
    assert isinstance(create_store(), SQLiteFactStore)
    monkeypatch.setenv("REPRO_STORE", "memory")
    assert isinstance(create_store(), FactStore)


def test_both_backends_implement_the_protocol():
    assert isinstance(FactStore(), StoreBackend)
    assert isinstance(SQLiteFactStore(), StoreBackend)


def test_remove_and_replace():
    store = FactStore()
    store.add_many("r", [(1,), (2,)])
    store.remove("r", (1,))
    assert not store.contains("r", (1,))
    store.replace("r", [(9,)])
    assert store.scan("r") == [(9,)]


def test_snapshot_is_a_copy():
    store = FactStore()
    store.add("r", (1,))
    snapshot = store.snapshot()
    snapshot["r"].add((2,))
    assert store.count("r") == 1
