"""Tests for the shared QueryResult type."""

from repro.engines.result import QueryResult


def test_from_rows_deduplicates():
    result = QueryResult.from_rows(["a"], [(1,), (2,), (1,)])
    assert len(result) == 2
    assert result.row_set() == {(1,), (2,)}


def test_same_rows_ignores_order():
    first = QueryResult.from_rows(["a", "b"], [(1, 2), (3, 4)])
    second = QueryResult.from_rows(["a", "b"], [(3, 4), (1, 2)])
    assert first.same_rows(second)


def test_same_rows_detects_differences():
    first = QueryResult.from_rows(["a"], [(1,)])
    second = QueryResult.from_rows(["a"], [(2,)])
    assert not first.same_rows(second)


def test_sorted_rows_handles_mixed_types():
    result = QueryResult.from_rows(["a"], [(2,), ("x",), (1,)])
    assert result.sorted_rows() == [(1,), (2,), ("x",)]


def test_to_dicts():
    result = QueryResult.from_rows(["a", "b"], [(1, "x")])
    assert result.to_dicts() == [{"a": 1, "b": "x"}]


def test_iteration_and_len():
    result = QueryResult.from_rows(["a"], [(1,), (2,)])
    assert list(result) == [(1,), (2,)]
    assert len(result) == 2


def test_repr_is_stable_and_row_free():
    result = QueryResult.from_rows(["a", "b"], [(1, "x"), (2, "y")])
    assert repr(result) == "QueryResult(columns=[a, b], 2 rows)"
    single = QueryResult.from_rows(["n"], [(1,)])
    assert repr(single) == "QueryResult(columns=[n], 1 row)"
    assert "x" not in repr(result)  # data never leaks into the repr


def test_json_round_trip_preserves_row_set():
    result = QueryResult.from_rows(
        ["id", "name", "score"], [(1, "ada", 0.5), (2, "bob", None), (3, "eve", -7)]
    )
    restored = QueryResult.from_json(result.to_json())
    assert restored.columns == result.columns
    assert restored.same_rows(result)
    # rows come back as tuples, so they stay hashable set members
    assert all(isinstance(row, tuple) for row in restored.rows)


def test_jsonable_payload_shape():
    result = QueryResult.from_rows(["a"], [(1,), (2,)])
    payload = result.to_jsonable()
    assert payload == {"columns": ["a"], "rows": [[1], [2]]}
    assert QueryResult.from_jsonable(payload).same_rows(result)


def test_pickle_round_trip():
    import pickle

    result = QueryResult.from_rows(["a", "b"], [(1, "x"), (2, "y")])
    restored = pickle.loads(pickle.dumps(result))
    assert restored.columns == result.columns
    assert restored.rows == result.rows
