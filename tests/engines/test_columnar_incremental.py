"""Incremental column maintenance in the columnar executor.

When a cached relation encoding goes stale, :meth:`_relation_columns`
tries to *advance* the cached code columns by the store's change log
(append freshly-encoded rows, mask out removed ones) instead of
re-encoding the whole relation — counted in
``columnar_incremental_encode_count`` vs ``store_encode_count``.

The contract is one-sided soundness with full accounting: every advance
must decode to exactly ``store.scan()``, and every case the fold cannot
prove exact (truncated/reset change log, oversized removal batch,
wholesale replace) must fall back to a counted full encode — never a
wrong column.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy", reason="columnar executor requires NumPy")

from repro.engines.datalog.executor_columnar import ColumnarExecutor
from repro.engines.datalog.storage import FactStore, RelationChangeLog
from repro.engines.datalog.storage_sqlite import SQLiteFactStore
from repro.pipeline import Raqlet

BACKENDS = [
    pytest.param(lambda: FactStore(), id="memory"),
    pytest.param(lambda: SQLiteFactStore(), id="sqlite"),
]


def decoded_rows(executor, cols, count):
    """Materialise encoded columns back into the set of row tuples."""
    if count == 0:
        return set()
    arrays = [executor._vd.decode(col).tolist() for col in cols]
    rows = set(zip(*arrays))
    assert len(rows) == count  # store relations are sets: no dup rows
    return rows


def columns_for(executor, store, name="r"):
    cols, count = executor._relation_columns(store, name)
    assert decoded_rows(executor, cols, count) == set(store.scan(name))
    return cols, count


@pytest.mark.parametrize("make_store", BACKENDS)
def test_inserts_advance_cached_columns(make_store):
    store = make_store()
    try:
        executor = ColumnarExecutor()
        store.add_many("r", [(i, i * 2) for i in range(50)])
        columns_for(executor, store)
        assert executor.store_encode_count == 1
        store.add("r", (100, 200))
        store.add("r", (101, 202))
        columns_for(executor, store)
        assert executor.columnar_incremental_encode_count == 1
        assert executor.store_encode_count == 1  # no re-encode
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_removals_advance_cached_columns(make_store):
    store = make_store()
    try:
        executor = ColumnarExecutor()
        store.add_many("r", [(i, i * 2) for i in range(50)])
        columns_for(executor, store)
        store.remove("r", (7, 14))
        store.remove("r", (31, 62))
        columns_for(executor, store)
        assert executor.columnar_incremental_encode_count == 1
        assert executor.store_encode_count == 1
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_streaming_mutation_mix_stays_exact(make_store):
    """A long alternating insert/retract stream advances the same cache
    entry every step; each advance folds only that step's delta."""
    store = make_store()
    try:
        executor = ColumnarExecutor()
        store.add_many("r", [(i, 0) for i in range(40)])
        columns_for(executor, store)
        for step in range(1, 21):
            if step % 3 == 0:
                store.remove("r", (step, 0))
            else:
                store.add("r", (1000 + step, step))
            columns_for(executor, store)
        assert executor.columnar_incremental_encode_count == 20
        assert executor.store_encode_count == 1
    finally:
        store.close()


def test_oversized_removal_batch_falls_back_to_full_encode():
    """Removal masking is O(rows × removed); past the limit a re-encode is
    cheaper and the executor must take it (counted, still exact)."""
    store = FactStore()
    executor = ColumnarExecutor()
    limit = ColumnarExecutor._INCREMENTAL_REMOVAL_LIMIT
    store.add_many("r", [(i, i) for i in range(limit * 3)])
    columns_for(executor, store)
    for i in range(limit + 1):
        store.remove("r", (i, i))
    columns_for(executor, store)
    assert executor.columnar_incremental_encode_count == 0
    assert executor.store_encode_count == 2


def test_truncated_changelog_falls_back_to_full_encode():
    """A batch larger than the change log retains resets the history;
    ``changes_since`` declines and the executor re-encodes."""
    store = FactStore()
    executor = ColumnarExecutor()
    store.add("r", (-1, -1))
    columns_for(executor, store)
    store.add_many("r", [(i, 1) for i in range(RelationChangeLog.LIMIT + 2)])
    columns_for(executor, store)
    assert executor.columnar_incremental_encode_count == 0
    assert executor.store_encode_count == 2


@pytest.mark.parametrize("make_store", BACKENDS)
def test_replace_falls_back_to_full_encode(make_store):
    store = make_store()
    try:
        executor = ColumnarExecutor()
        store.add_many("r", [(i, i) for i in range(10)])
        columns_for(executor, store)
        store.replace("r", [(5, 5), (99, 99)])
        columns_for(executor, store)
        assert executor.columnar_incremental_encode_count == 0
        assert executor.store_encode_count == 2
    finally:
        store.close()


def test_drain_to_empty_and_regrow():
    """Advancing through empty keeps the entry alive and exact."""
    store = FactStore()
    executor = ColumnarExecutor()
    store.add("r", (1, 2))
    columns_for(executor, store)
    store.remove("r", (1, 2))
    cols, count = columns_for(executor, store)
    assert count == 0
    store.add("r", (3, 4))
    columns_for(executor, store)
    assert executor.columnar_incremental_encode_count == 2
    assert executor.store_encode_count == 1


SCHEMA = """
CREATE GRAPH {
  (sensorType : Sensor { id INT, value INT })
}
"""

HOT = """
.decl reading(s:number, v:number)
.decl hot(s:number, v:number)
hot(s, v) :- reading(s, v), v >= $threshold.
.output hot
"""


def test_cold_runs_over_mutated_store_reuse_columns_end_to_end():
    """The integration path: a prepared query re-run with *changing*
    bindings cannot use IVM (cold path each time) but the columnar
    executor still advances the cached ``reading`` encoding by |Δ|
    instead of re-encoding the whole relation every run."""
    raqlet = Raqlet(SCHEMA)
    with raqlet.session(executor="columnar") as session:
        session.insert("reading", [(i, i % 100) for i in range(300)])
        prepared = session.prepare(HOT)
        executor = prepared.engine.executor
        baseline = {
            (s, v) for s, v in session.store.scan("reading") if v >= 90
        }
        assert set(prepared.run(threshold=90).rows) == baseline
        encodes = executor.store_encode_count
        advances = executor.columnar_incremental_encode_count
        expected = set(baseline)
        for step in range(1, 11):
            row = (1000 + step, 90 + step % 10)
            session.insert("reading", [row])
            expected.add(row)
            got = set(prepared.run(threshold=90 + (step % 3)).rows)
            want = {
                (s, v)
                for s, v in session.store.scan("reading")
                if v >= 90 + (step % 3)
            }
            assert got == want
        assert executor.store_encode_count == encodes  # zero re-encodes
        assert executor.columnar_incremental_encode_count - advances >= 10
