"""Golden-source snapshot tests for the plan-lowering executors.

Each representative rule shape (multi-atom join, negation, comparison
guards, aggregate head, delta-position variants) is planned against a fixed
store and its lowering — the compiled executor's generated closure source
*and* the columnar executor's kernel schedule — is compared against a
checked-in golden file under ``tests/engines/goldens/``.  A lowering change
therefore shows up as a readable diff instead of a silent behaviour change —
review the diff, and if it is intended regenerate the goldens with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/engines/test_executor_codegen_golden.py

The columnar goldens include fallback cases: plans whose shape the columnar
lowering rejects snapshot the *reason* they run on the compiled executor
instead.  Lowering and description are pure plan analysis, so these tests
run without NumPy installed.

Generation must stay deterministic (no ids, no set iteration) for these
tests to be meaningful; the stability tests below guard that directly.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    NegatedAtom,
    Param,
    Rule,
    Var,
    Wildcard,
)
from repro.engines.datalog import (
    FactStore,
    describe_columnar_plan,
    generate_plan_source,
    plan_rule,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _store() -> FactStore:
    """A fixed store so the join-order heuristic is deterministic."""
    store = FactStore()
    store.add_many("edge", [(1, 2), (2, 3), (3, 4), (2, 4), (4, 1)])
    store.add_many("node", [(i,) for i in range(1, 6)])
    store.add_many("tc", [(1, 2), (2, 3)])
    return store


def _case_multi_atom_join():
    rule = Rule(
        Atom("path", (Var("x"), Var("z"))),
        (Atom("edge", (Var("x"), Var("y"))), Atom("edge", (Var("y"), Var("z")))),
    )
    return plan_rule(rule, _store())


def _case_negation():
    rule = Rule(
        Atom("sink", (Var("n"),)),
        (Atom("node", (Var("n"),)), NegatedAtom(Atom("edge", (Var("n"), Var("y"))))),
    )
    return plan_rule(rule, _store())


def _case_comparison_guards():
    rule = Rule(
        Atom("q", (Var("x"), Var("lab"), Var("nxt"))),
        (
            Atom("edge", (Var("x"), Var("y"))),
            Comparison("=", Var("lab"), Const(7)),
            Comparison("=", Var("nxt"), ArithExpr("+", Var("y"), Const(1))),
            Comparison("<", Var("x"), Const(3)),
        ),
    )
    return plan_rule(rule, _store())


def _case_aggregate_head():
    rule = Rule(
        Atom("outdeg", (Var("a"), Var("n"))),
        (Atom("edge", (Var("a"), Var("b"))),),
        aggregations=(Aggregation("count", Var("n"), argument=Var("b")),),
    )
    return plan_rule(rule, _store())


def _case_delta_linear():
    rule = Rule(
        Atom("tc", (Var("x"), Var("y"))),
        (Atom("tc", (Var("x"), Var("z"))), Atom("edge", (Var("z"), Var("y")))),
    )
    return plan_rule(rule, _store(), delta_index=0, delta_size=2)


def _case_delta_nonlinear_second_position():
    # The delta names body position 1; the planner still forces it to step 0,
    # so the generated source shows the other occurrence probed against the
    # full store.
    rule = Rule(
        Atom("tc", (Var("x"), Var("y"))),
        (Atom("tc", (Var("x"), Var("z"))), Atom("tc", (Var("z"), Var("y")))),
    )
    return plan_rule(rule, _store(), delta_index=1, delta_size=2)


def _case_negation_mid_step():
    # The negation's variables are bound after step 0, so the batched probe
    # (collect the level's keys, one lookup_many, filter) lands mid-plan,
    # feeding the next step's solutions.
    rule = Rule(
        Atom("r", (Var("x"), Var("z"))),
        (
            Atom("node", (Var("x"),)),
            Atom("edge", (Var("x"), Var("z"))),
            NegatedAtom(Atom("cut", (Var("x"),))),
        ),
    )
    store = _store()
    store.add_many("cut", [(2,), (4,)])
    return plan_rule(rule, store)


def _case_constants_and_wildcards():
    rule = Rule(
        Atom("q", (Var("x"),)),
        (
            Atom("triple", (Var("x"), Var("x"), Wildcard())),
            Atom("edge", (Const(1), Var("x"))),
        ),
    )
    store = _store()
    store.add_many("triple", [(1, 1, 5), (1, 2, 6), (2, 2, 7)])
    return plan_rule(rule, store)


CASES = {
    "multi_atom_join": _case_multi_atom_join,
    "negation": _case_negation,
    "negation_mid_step": _case_negation_mid_step,
    "comparison_guards": _case_comparison_guards,
    "aggregate_head": _case_aggregate_head,
    "delta_linear": _case_delta_linear,
    "delta_nonlinear_second_position": _case_delta_nonlinear_second_position,
    "constants_and_wildcards": _case_constants_and_wildcards,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_generated_source_matches_golden(name):
    source = generate_plan_source(CASES[name]())
    golden_path = GOLDEN_DIR / f"{name}.py.golden"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        golden_path.write_text(source, encoding="utf-8")
    assert golden_path.exists(), (
        f"golden {golden_path.name} is missing — regenerate with "
        f"REPRO_UPDATE_GOLDENS=1"
    )
    assert source == golden_path.read_text(encoding="utf-8"), (
        f"generated source for {name!r} diverges from its golden; if the "
        f"change is intended, regenerate with REPRO_UPDATE_GOLDENS=1"
    )


def test_generation_is_deterministic():
    """The same plan must generate byte-identical source every time."""
    for name, make_plan in CASES.items():
        assert generate_plan_source(make_plan()) == generate_plan_source(
            make_plan()
        ), f"codegen for {name!r} is not deterministic"


# -- columnar lowerings -------------------------------------------------------


def _case_columnar_fallback_param_arith():
    # A parameter inside arithmetic defeats the columnar lowering's static
    # column typing — the plan must be rejected with a reason, and the rule
    # runs on the compiled executor instead.
    rule = Rule(
        Atom("shifted", (Var("x"), Var("w"))),
        (
            Atom("edge", (Var("x"), Var("y"))),
            Comparison("=", Var("w"), ArithExpr("+", Var("y"), Param("offset"))),
        ),
    )
    return plan_rule(rule, _store())


#: every compiled case plus the columnar-only fallback shapes
COLUMNAR_CASES = dict(
    CASES, columnar_fallback_param_arith=_case_columnar_fallback_param_arith
)


@pytest.mark.parametrize("name", sorted(COLUMNAR_CASES))
def test_columnar_lowering_matches_golden(name):
    description = describe_columnar_plan(COLUMNAR_CASES[name]())
    golden_path = GOLDEN_DIR / f"columnar_{name}.txt.golden"
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        golden_path.write_text(description, encoding="utf-8")
    assert golden_path.exists(), (
        f"golden {golden_path.name} is missing — regenerate with "
        f"REPRO_UPDATE_GOLDENS=1"
    )
    assert description == golden_path.read_text(encoding="utf-8"), (
        f"columnar lowering for {name!r} diverges from its golden; if the "
        f"change is intended, regenerate with REPRO_UPDATE_GOLDENS=1"
    )


def test_columnar_fallback_golden_states_reason():
    """The fallback golden must *say why* the plan is not vectorised."""
    description = describe_columnar_plan(_case_columnar_fallback_param_arith())
    assert "fallback to compiled executor:" in description
    assert "parameter inside arithmetic" in description


def test_columnar_description_is_deterministic():
    for name, make_plan in COLUMNAR_CASES.items():
        assert describe_columnar_plan(make_plan()) == describe_columnar_plan(
            make_plan()
        ), f"columnar description for {name!r} is not deterministic"
