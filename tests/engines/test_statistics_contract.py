"""Property-based tests for the relation-statistics contract.

``StoreBackend.relation_stats`` feeds the planner's cost model, so its
cardinality and per-column distinct counts must stay **exactly** consistent
with ground truth under arbitrary interleavings of ``add`` / ``add_many`` /
``remove`` — on every backend, whichever way it maintains them (the
in-memory store incrementally on the write path, the SQLite store by a
cached aggregate query).  The same generated interleavings run against a
model set, with the stats checked both mid-sequence and at the end.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engines.datalog.statistics import (
    RelationStats,
    StatsAccumulator,
    compute_stats,
    drift_ratio,
    resolve_replan_threshold,
)
from repro.engines.datalog.storage import FactStore
from repro.engines.datalog.storage_sqlite import SQLiteFactStore

BACKENDS = [
    pytest.param(lambda: FactStore(), id="memory"),
    pytest.param(lambda: SQLiteFactStore(), id="sqlite"),
]

_values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["a", "b"]),
    st.none(),
)
_rows = st.tuples(_values, _values)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _rows),
        st.tuples(st.just("add_many"), st.lists(_rows, max_size=4)),
        st.tuples(st.just("remove"), _rows),
        st.tuples(st.just("check"), st.just(None)),
    ),
    max_size=40,
)


def _ground_truth(model) -> RelationStats:
    return RelationStats(
        cardinality=len(model),
        distinct=tuple(
            len({row[position] for row in model}) for position in range(2)
        )
        if model
        else (),
    )


def _assert_consistent(stats: RelationStats, model) -> None:
    truth = _ground_truth(model)
    assert stats.cardinality == truth.cardinality
    # Empty relations may report () or explicit zeros; non-empty must match
    # column for column.
    for position in range(2):
        expected = truth.distinct[position] if model else 0
        actual = (
            stats.distinct[position] if position < len(stats.distinct) else 0
        )
        assert actual == expected, (
            f"distinct({position}): stats say {actual}, ground truth "
            f"{expected} over {sorted(model, key=repr)}"
        )


@pytest.mark.parametrize("make_store", BACKENDS)
@given(operations=_operations)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_relation_stats_track_ground_truth(make_store, operations):
    store = make_store()
    try:
        model = set()
        for operation in operations:
            if operation[0] == "add":
                store.add("r", operation[1])
                model.add(operation[1])
            elif operation[0] == "add_many":
                store.add_many("r", operation[1])
                model.update(operation[1])
            elif operation[0] == "remove":
                store.remove("r", operation[1])
                model.discard(operation[1])
            else:
                _assert_consistent(store.relation_stats("r"), model)
        _assert_consistent(store.relation_stats("r"), model)
        # The snapshot helper returns the same numbers, keyed by name.
        snapshot = store.stats_snapshot(["r", "missing"])
        assert snapshot["r"].cardinality == len(model)
        assert snapshot["missing"].cardinality == 0
    finally:
        store.close()


@given(rows=st.lists(_rows, max_size=30))
@settings(max_examples=60, deadline=None)
def test_accumulator_remove_inverts_add(rows):
    """Adding then removing every row returns the accumulator to empty."""
    accumulator = StatsAccumulator()
    for row in rows:
        accumulator.add(row)
    assert accumulator.stats() == compute_stats(rows)
    for row in rows:
        accumulator.remove(row)
    stats = accumulator.stats()
    assert stats.cardinality == 0
    assert all(count == 0 for count in stats.distinct)


def test_fanout_estimates():
    """The cost model's fan-out: |R| / distinct(bound), capped sensibly."""
    stats = RelationStats(cardinality=100, distinct=(10, 100))
    assert stats.fanout(()) == 100.0
    assert stats.fanout((0,)) == 10.0  # 100 rows / 10 keys
    assert stats.fanout((1,)) == 1.0
    # Independence product capped at cardinality: 10 * 100 > 100 rows.
    assert stats.fanout((0, 1)) == 1.0
    # Unknown columns assume nothing repeats.
    assert stats.fanout((7,)) == 1.0
    assert RelationStats(0, ()).fanout((0,)) == 0.0


def test_drift_ratio_and_threshold_resolution(monkeypatch):
    assert drift_ratio(9, 0) == 10.0
    assert drift_ratio(0, 9) == 10.0
    assert drift_ratio(5, 5) == 1.0
    monkeypatch.delenv("REPRO_REPLAN_THRESHOLD", raising=False)
    assert resolve_replan_threshold() == 10.0
    monkeypatch.setenv("REPRO_REPLAN_THRESHOLD", "1")
    assert resolve_replan_threshold() == 1.0
    monkeypatch.setenv("REPRO_REPLAN_THRESHOLD", "inf")
    assert resolve_replan_threshold() == float("inf")
    assert resolve_replan_threshold(3.5) == 3.5  # explicit beats env
    with pytest.raises(ValueError):
        resolve_replan_threshold(0.5)


def test_sqlite_stats_cache_invalidates_on_writes():
    """Reads are served from cache until a write dirties the relation."""
    store = SQLiteFactStore()
    try:
        store.add_many("r", [(1, "a"), (2, "a")])
        first = store.relation_stats("r")
        assert first == RelationStats(cardinality=2, distinct=(2, 1))
        queries = store.stats_query_count
        assert store.relation_stats("r") is first  # cached, no new query
        assert store.stats_query_count == queries
        store.add("r", (3, "b"))
        assert store.relation_stats("r") == RelationStats(3, (3, 2))
        assert store.stats_query_count == queries + 1
        store.remove("r", (1, "a"))
        assert store.relation_stats("r") == RelationStats(2, (2, 2))
    finally:
        store.close()
