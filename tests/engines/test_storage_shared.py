"""Tests for the epoch-versioned shared EDB (:mod:`storage_shared`).

Three layers: direct :class:`SharedEDB` semantics (effective deltas, epoch
pinning, folding and retention), the :class:`SnapshotView` adapter's patch
semantics, and a hypothesis property drive proving snapshot isolation — a
reader pinned at epoch ``E`` sees exactly the oracle state as of ``E`` no
matter what later writes, folds, or other pins do — on both the in-memory
and SQLite base backends.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.engines.datalog.storage import FactStore
from repro.engines.datalog.storage_shared import SharedEDB, SnapshotView
from repro.engines.datalog.storage_sqlite import SQLiteFactStore

BASES = [
    pytest.param(lambda: FactStore(), id="memory"),
    pytest.param(lambda: SQLiteFactStore(), id="sqlite"),
]


# -- SharedEDB: write effectiveness and epochs --------------------------------


def test_effective_deltas_only():
    shared = SharedEDB()
    inserted, retracted, epoch = shared.apply({"r": [(1,), (1,), (2,)]}, None)
    assert (inserted, retracted, epoch) == (2, 0, 1)
    # duplicate insert and absent retract are no-ops: epoch does not move
    inserted, retracted, epoch = shared.apply({"r": [(1,)]}, {"r": [(9,)]})
    assert (inserted, retracted, epoch) == (0, 0, 1)
    # a batch can insert and retract; effectiveness is judged in batch order
    inserted, retracted, epoch = shared.apply({"r": [(3,)]}, {"r": [(3,), (1,)]})
    assert (inserted, retracted) == (1, 2)
    assert epoch == 2
    shared.close()


def test_insert_retract_shortcuts_and_ingest():
    shared = SharedEDB()
    assert shared.ingest({"a": [(1,), (2,)], "b": [("x",)]}) == 3
    assert shared.insert("a", [(2,), (3,)]) == 1
    assert shared.retract("a", [(1,), (99,)]) == 1
    assert shared.is_known("a") and shared.is_known("b")
    assert not shared.is_known("c")
    snap = shared.pin()
    assert sorted(snap.scan("a")) == [(2,), (3,)]
    snap.release()
    shared.close()


def test_pinned_snapshot_is_immutable():
    shared = SharedEDB()
    shared.insert("r", [(1,), (2,)])
    snap = shared.pin()
    assert snap.epoch == 1
    shared.insert("r", [(3,)])
    shared.retract("r", [(1,)])
    # the pinned snapshot still answers with epoch-1 state
    assert sorted(snap.scan("r")) == [(1,), (2,)]
    assert snap.contains("r", (1,))
    assert not snap.contains("r", (3,))
    assert snap.count("r") == 2
    # while an unpinned (fresh) snapshot sees the new epoch
    fresh = shared.pin()
    assert sorted(fresh.scan("r")) == [(2,), (3,)]
    snap.release()
    fresh.release()
    shared.close()


def test_lookup_through_snapshot_merges_net_delta():
    shared = SharedEDB()
    shared.insert("e", [(1, "a"), (2, "b")])
    snap0 = shared.pin()
    shared.insert("e", [(1, "c")])
    shared.retract("e", [(1, "a")])
    snap1 = shared.pin()
    assert sorted(snap0.lookup("e", (0,), (1,))) == [(1, "a")]
    assert sorted(snap1.lookup("e", (0,), (1,))) == [(1, "c")]
    many = snap1.lookup_many("e", (0,), [(1,), (2,)])
    assert sorted(many[(1,)]) == [(1, "c")]
    assert sorted(many[(2,)]) == [(2, "b")]
    snap0.release()
    snap1.release()
    shared.close()


def test_fold_blocked_by_pins_and_resumes_after_release():
    shared = SharedEDB()
    shared.insert("r", [(1,)])  # no pins, no consumers: folds immediately
    snap = shared.pin()
    shared.insert("r", [(2,)])
    assert shared.compact() is False  # pinned reader blocks folding
    stats = shared.stats()
    assert stats["floor"] == 1 and stats["chain_entries"] == 1
    snap.release()  # releasing the last pin folds the chain immediately
    stats = shared.stats()
    assert stats["floor"] == stats["epoch"] == 2
    assert stats["chain_entries"] == 0
    assert stats["fold_count"] >= 1
    # folded state is the net state
    snap = shared.pin()
    assert sorted(snap.scan("r")) == [(1,), (2,)]
    snap.release()
    shared.close()


def test_consumer_positions_bound_folding():
    shared = SharedEDB()
    token = shared.register_consumer()  # at epoch 0
    shared.insert("r", [(1,)])
    shared.insert("r", [(2,)])
    # the laggard consumer still needs epochs 1..2: nothing may fold
    assert shared.compact() is False
    assert shared.delta_entries(0) == [("r", (1,), 1), ("r", (2,), 1)]
    shared.set_consumed(token, 1)
    assert shared.compact() is True
    assert shared.stats()["floor"] == 1
    # entries above the floor survive; entries below it are gone
    assert shared.delta_entries(1) == [("r", (2,), 1)]
    assert shared.delta_entries(0) is None
    shared.drop_consumer(token)
    assert shared.compact() is True
    assert shared.stats()["floor"] == 2
    shared.close()


def test_chain_overflow_drops_laggard_retention():
    shared = SharedEDB(max_log_entries=4)
    token = shared.register_consumer()
    for value in range(8):
        shared.insert("r", [(value,)])
    # the chain blew past max_log_entries with no pins: folded past the
    # laggard consumer (the floor advanced despite its position at 0)
    stats = shared.stats()
    assert stats["floor"] > 0
    assert stats["chain_entries"] <= shared.max_log_entries
    assert shared.delta_entries(0) is None  # laggard must fully re-derive
    snap = shared.pin()
    assert snap.count("r") == 8
    snap.release()
    shared.drop_consumer(token)
    shared.close()


def test_version_at_is_monotone_and_fold_invariant():
    shared = SharedEDB()
    token = shared.register_consumer()  # parks the floor at epoch 0
    shared.insert("a", [(1,)])          # epoch 1 touches a
    shared.insert("b", [(1,)])          # epoch 2 touches b
    shared.insert("a", [(2,)])          # epoch 3 touches a
    assert shared.version_at("a", 0) == 0
    assert shared.version_at("a", 1) == 1
    assert shared.version_at("a", 2) == 1
    assert shared.version_at("a", 3) == 2
    assert shared.version_at("b", 3) == 1
    before = shared.version_at("a", 3)
    shared.drop_consumer(token)
    assert shared.compact()
    # folding preserves the count at epochs >= the new floor
    assert shared.version_at("a", 3) == before
    shared.close()


def test_preloaded_base_store_is_epoch_zero():
    base = FactStore()
    base.add_many("r", [(1,), (2,)])
    shared = SharedEDB(base)
    assert shared.epoch == 0
    assert shared.is_known("r")
    snap = shared.pin()
    assert sorted(snap.scan("r")) == [(1,), (2,)]
    assert snap.data_version("r") == 0
    snap.release()
    shared.close()


# -- SnapshotView: the per-worker StoreBackend --------------------------------


def _make_view(rows=((1,), (2,))):
    shared = SharedEDB()
    shared.insert("shared_rel", list(rows))
    view = SnapshotView(shared)
    view.begin_read()
    return shared, view


def test_view_reads_require_a_pinned_window():
    shared, view = _make_view()
    view.end_read()
    with pytest.raises(ExecutionError, match="pinned window"):
        view.scan("shared_rel")
    # private relations remain readable without a pin
    view.add("private", (9,))
    assert view.scan("private") == [(9,)]
    view.close()
    shared.close()


def test_view_local_relations_are_private():
    shared, view = _make_view()
    other = SnapshotView(shared)
    other.begin_read()
    view.add("derived", (1, 2))
    assert other.count("derived") == 0
    assert view.contains("derived", (1, 2))
    view.close()
    other.close()
    shared.close()


def test_view_patch_semantics_and_tidy():
    shared, view = _make_view()
    # removing a snapshot row masks it locally
    assert view.remove("shared_rel", (1,)) is True
    assert not view.contains("shared_rel", (1,))
    assert view.count("shared_rel") == 1
    assert view.data_version("shared_rel") is None  # patched: no caching
    key, pin = view.cache_identity("shared_rel")
    assert pin is view  # patched relation gets a private cache identity
    # re-adding dissolves the patch and restores the fast path
    assert view.add("shared_rel", (1,)) is True
    assert sorted(view.scan("shared_rel")) == [(1,), (2,)]
    assert view.data_version("shared_rel") is not None
    key, pin = view.cache_identity("shared_rel")
    assert pin is shared  # clean again: shared cache identity
    view.close()
    shared.close()


def test_view_transient_add_then_remove_roundtrip():
    shared, view = _make_view()
    # the IVM union-state shape: add a new row, then take it back out
    assert view.add("shared_rel", (5,)) is True
    assert view.contains("shared_rel", (5,))
    assert view.remove("shared_rel", (5,)) is True
    assert sorted(view.scan("shared_rel")) == [(1,), (2,)]
    assert view.data_version("shared_rel") is not None  # patch dissolved
    # adding a row the snapshot already shows is a no-op
    assert view.add("shared_rel", (1,)) is False
    view.close()
    shared.close()


def test_view_lookup_merges_patches():
    shared = SharedEDB()
    shared.insert("e", [(1, "a"), (1, "b"), (2, "c")])
    view = SnapshotView(shared)
    view.begin_read()
    view.remove("e", (1, "a"))
    view.add("e", (1, "z"))
    assert sorted(view.lookup("e", (0,), (1,))) == [(1, "b"), (1, "z")]
    many = view.lookup_many("e", (0,), [(1,), (2,)])
    assert sorted(many[(1,)]) == [(1, "b"), (1, "z")]
    assert sorted(many[(2,)]) == [(2, "c")]
    assert view.relation_stats("e").cardinality == 3
    view.close()
    shared.close()


def test_view_rejects_replace_and_clear_of_shared_relations():
    shared, view = _make_view()
    with pytest.raises(ExecutionError, match="replace shared"):
        view.replace("shared_rel", [(9,)])
    with pytest.raises(ExecutionError, match="clear shared"):
        view.clear_relation("shared_rel")
    # private relations support both
    view.add("local", (1,))
    view.replace("local", [(2,)])
    assert view.scan("local") == [(2,)]
    view.clear_relation("local")
    assert view.count("local") == 0
    view.close()
    shared.close()


def test_view_repin_advances_to_latest_epoch():
    shared, view = _make_view()
    first = view.pinned_epoch
    shared.insert("shared_rel", [(3,)])
    assert view.count("shared_rel") == 2  # still pinned at the old epoch
    second = view.begin_read()
    assert second == first + 1
    assert view.count("shared_rel") == 3
    assert view.delta_since(first) == [("shared_rel", (3,), 1)]
    view.mark_consumed(second)
    view.close()
    shared.close()


# -- snapshot isolation property ----------------------------------------------

_rows = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=2)
)
_relation = st.sampled_from(["r", "s"])

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _relation, st.lists(_rows, max_size=3)),
        st.tuples(st.just("retract"), _relation, st.lists(_rows, max_size=3)),
        st.tuples(st.just("pin")),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("compact")),
    ),
    max_size=25,
)


@pytest.mark.parametrize("make_base", BASES)
@given(operations=_ops)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_snapshot_isolation_matches_per_epoch_oracle(make_base, operations):
    """A pin taken at epoch E answers with the oracle state at E, always."""
    shared = SharedEDB(make_base())
    try:
        oracle = {"r": set(), "s": set()}
        history = {0: {"r": set(), "s": set()}}
        pins = []  # (snapshot, epoch) pairs still held

        def check_all_pins():
            for snap, epoch in pins:
                expected = history[epoch]
                for relation in ("r", "s"):
                    assert set(snap.scan(relation)) == expected[relation]
                    assert snap.count(relation) == len(expected[relation])

        for operation in operations:
            kind = operation[0]
            if kind == "insert":
                _, relation, rows = operation
                shared.insert(relation, rows)
                oracle[relation].update(rows)
            elif kind == "retract":
                _, relation, rows = operation
                shared.retract(relation, rows)
                oracle[relation].difference_update(rows)
            elif kind == "pin":
                snap = shared.pin()
                pins.append((snap, snap.epoch))
            elif kind == "release" and pins:
                snap, _ = pins.pop(operation[1] % len(pins))
                snap.release()
            elif kind == "compact":
                shared.compact()
            history[shared.epoch] = {name: set(vals) for name, vals in oracle.items()}
            check_all_pins()

        # final sweep: every held pin still answers with its epoch's state
        check_all_pins()
        for snap, _ in pins:
            snap.release()
        latest = shared.pin()
        for relation in ("r", "s"):
            assert set(latest.scan(relation)) == oracle[relation]
        latest.release()
    finally:
        shared.close()
