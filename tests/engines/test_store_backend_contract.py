"""Property-based tests for the :class:`StoreBackend` contract.

Any backend must behave exactly like a Python ``set`` of tuples under
arbitrary interleavings of ``add`` / ``add_many`` / ``remove`` / ``lookup``
— including lookups through indexes built *before* later inserts and
removals (the incremental-maintenance path), lookups over the empty
position set, and truthful new-row accounting.  The same generated
interleavings run against every shipped backend.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engines.datalog.storage import FactStore
from repro.engines.datalog.storage_sqlite import SQLiteFactStore

BACKENDS = [
    pytest.param(lambda: FactStore(), id="memory"),
    pytest.param(lambda: FactStore(maintain_indexes=False), id="memory-legacy"),
    pytest.param(lambda: SQLiteFactStore(), id="sqlite"),
]

_values = st.one_of(st.integers(min_value=-3, max_value=3), st.sampled_from(["a", "b"]))
_rows = st.tuples(_values, _values)
_positions = st.sampled_from([(), (0,), (1,), (0, 1), (1, 0)])

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _rows),
        st.tuples(st.just("add_many"), st.lists(_rows, max_size=4)),
        st.tuples(st.just("remove"), _rows),
        st.tuples(st.just("lookup"), _positions, _rows),
    ),
    max_size=40,
)


@pytest.mark.parametrize("make_store", BACKENDS)
@given(operations=_operations)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_random_interleavings_match_model_set(make_store, operations):
    store = make_store()
    try:
        model = set()
        for operation in operations:
            if operation[0] == "add":
                row = operation[1]
                assert store.add("r", row) == (row not in model)
                model.add(row)
            elif operation[0] == "add_many":
                batch = operation[1]
                expected_new = len(set(batch) - model)
                assert store.add_many("r", batch) == expected_new
                model.update(batch)
            elif operation[0] == "remove":
                store.remove("r", operation[1])
                model.discard(operation[1])
            else:
                positions, probe = operation[1], operation[2]
                key = tuple(probe[p] for p in positions)
                expected = {
                    row for row in model if tuple(row[p] for p in positions) == key
                }
                assert set(store.lookup("r", list(positions), key)) == expected
        assert set(store.scan("r")) == model
        assert store.count("r") == len(model)
        assert len(store) == len(model)
        for row in model:
            assert store.contains("r", row)
    finally:
        store.close()


# -- lookup_many: batched probes must equal a loop of lookups ---------------

_key_values = st.one_of(_values, st.none())
_probe_rows = st.tuples(_key_values, _key_values)
_stored_rows = st.tuples(
    st.one_of(_values, st.none()), st.one_of(_values, st.none())
)


@pytest.mark.parametrize("make_store", BACKENDS)
@given(
    rows=st.lists(_stored_rows, max_size=12),
    positions=_positions,
    probes=st.lists(_probe_rows, max_size=8),
    later_rows=st.lists(_stored_rows, max_size=6),
)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_lookup_many_matches_a_loop_of_lookups(
    make_store, rows, positions, probes, later_rows
):
    """``lookup_many`` ≡ {key: lookup(key)} over its distinct keys.

    Probe keys include absent keys, duplicate keys and ``None`` components;
    the batch is probed twice with inserts in between, so the batched path
    also exercises index maintenance (and, on SQLite, probe-keys-table
    reuse).
    """
    store = make_store()
    try:
        keys = [tuple(probe[p] for p in positions) for probe in probes]
        for batch in (rows, later_rows):
            store.add_many("r", batch)
            result = store.lookup_many("r", list(positions), keys)
            assert set(result) == set(keys)
            for key in set(keys):
                expected = store.lookup("r", list(positions), key)
                got = result[key]
                assert len(got) == len(expected)
                assert set(map(tuple, got)) == set(map(tuple, expected))
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_lookup_many_corner_cases(make_store):
    store = make_store()
    try:
        # No keys: nothing is probed, nothing is returned.
        assert store.lookup_many("r", [0], []) == {}
        # A relation that does not exist yet answers every key with no rows.
        missing = store.lookup_many("nope", [0], [(1,), (2,)])
        assert set(missing) == {(1,), (2,)}
        assert all(len(rows) == 0 for rows in missing.values())
        store.add_many("r", [(1, 2), (1, 3), (2, 4)])
        # Duplicate keys collapse to one entry.
        result = store.lookup_many("r", [0], [(1,), (1,), (9,)])
        assert set(result) == {(1,), (9,)}
        assert sorted(result[(1,)]) == [(1, 2), (1, 3)]
        assert len(result[(9,)]) == 0
        # The empty position set behaves like a scan for every key.
        full = store.lookup_many("r", [], [()])
        assert sorted(full[()]) == [(1, 2), (1, 3), (2, 4)]
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_lookup_many_handles_nan_keys_like_lookup(make_store):
    """A NaN key component must behave exactly as it does in ``lookup``.

    On SQLite, NaN binds as NULL (so a NaN key matches ``None`` rows — a
    quirk, but the single-``lookup`` quirk); the batched path must not
    silently drop those rows on the way back from the key join.
    """
    store = make_store()
    try:
        store.add_many("r", [(None, 3), (1, 2)])
        nan = float("nan")
        keys = [(nan,), (1,), (None,)]
        result = store.lookup_many("r", [0], keys)
        for key in keys:
            expected = store.lookup("r", [0], key)
            assert sorted(result[key], key=repr) == sorted(expected, key=repr)
    finally:
        store.close()


def test_sqlite_lookup_many_issues_one_query_per_batch():
    """However many keys a batch carries, SQLite answers it with one SELECT."""
    store = SQLiteFactStore()
    store.add_many("r", [(i, i + 1) for i in range(100)])
    store.lookup_many("r", [0], [(i,) for i in range(80)])
    store.lookup_many("r", [0], [(i,) for i in range(40, 120)])
    store.lookup_many("r", [1], [(5,), (6,)])
    assert store.batch_probe_count == 3
    assert store.batch_probe_query_count == 3
    store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_index_survives_remove_of_last_bucket_row(make_store):
    """Index-after-remove: emptying a bucket must not corrupt the index."""
    store = make_store()
    store.add_many("r", [(1, 2), (1, 3), (2, 2)])
    assert sorted(store.lookup("r", [0], (1,))) == [(1, 2), (1, 3)]
    store.remove("r", (1, 2))
    store.remove("r", (1, 3))
    assert store.lookup("r", [0], (1,)) == []
    store.add("r", (1, 9))
    assert store.lookup("r", [0], (1,)) == [(1, 9)]
    assert store.lookup("r", [0], (2,)) == [(2, 2)]
    store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_empty_positions_lookup_is_a_scan(make_store):
    store = make_store()
    assert store.lookup("r", [], ()) == []
    store.add_many("r", [(1, 2), (2, 3)])
    assert sorted(store.lookup("r", [], ())) == [(1, 2), (2, 3)]
    store.close()


@pytest.mark.parametrize(
    "make_store", [pytest.param(FactStore, id="memory"), pytest.param(SQLiteFactStore, id="sqlite")]
)
def test_index_statistics_are_part_of_the_contract(make_store):
    """``index_build_count`` must be truthful on every backend.

    Benchmarks assert "each index is built exactly once"; a backend that
    never incremented the counter would let them pass vacuously.  Both
    shipped backends must report the build on first probe and *not* report
    rebuilds when later inserts merely maintain the index.
    """
    store = make_store()
    assert store.index_build_count == 0 and store.index_count == 0
    store.add_many("r", [(1, 2), (2, 3)])
    store.lookup("r", [0], (1,))
    assert store.index_build_count == 1 and store.index_count == 1
    store.add("r", (4, 5))
    assert store.lookup("r", [0], (4,)) == [(4, 5)]
    store.lookup("r", [1], (3,))
    assert store.index_build_count == 2 and store.index_count == 2
    store.close()


def test_replace_resets_sqlite_indexes_like_memory():
    """``replace`` drops indexes on both backends; they rebuild lazily."""
    for store in (FactStore(), SQLiteFactStore()):
        store.add_many("r", [(1,), (2,)])
        assert store.lookup("r", [0], (1,)) == [(1,)]
        store.replace("r", [(9,)])
        assert store.lookup("r", [0], (1,)) == []
        assert store.lookup("r", [0], (9,)) == [(9,)]
        assert store.index_build_count == 2  # initial build + post-replace build
        store.close()


def test_sqlite_replace_among_multiple_relations():
    """Replacing a non-latest relation must not collide table names."""
    store = SQLiteFactStore()
    store.add("a", (1, 2))
    store.add("b", (3, 4))
    store.replace("a", [(5, 6)])
    assert store.scan("a") == [(5, 6)]
    assert store.scan("b") == [(3, 4)]
    store.replace("b", [(7, 8), (9, 10)])
    assert sorted(store.scan("b")) == [(7, 8), (9, 10)]
    store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_replace_with_no_rows_keeps_the_relation(make_store):
    store = make_store()
    store.add("r", (1, 2))
    store.replace("r", [])
    assert "r" in store.relation_names()
    assert store.count("r") == 0
    assert store.scan("r") == []
    store.add("r", (3, 4))  # arity is remembered
    assert store.scan("r") == [(3, 4)]
    store.close()


def test_sqlite_rejects_unstorable_values_loudly():
    """Unsupported values raise ExecutionError, never a raw driver error."""
    from repro.common.errors import ExecutionError

    store = SQLiteFactStore()
    with pytest.raises(ExecutionError):
        store.add("r", (2**70, 1))  # outside SQLite's 64-bit integer range
    with pytest.raises(ExecutionError):
        store.add("r", ([1, 2], 1))  # non-scalar
    with pytest.raises(ExecutionError):
        store.add("r", (float("nan"), 1))  # SQLite would corrupt NaN to NULL
    with pytest.raises(ExecutionError):
        store.add_many("r", [(1, 2), (1, 2, 3)])  # mixed arity in one batch
    store.close()


def test_sqlite_batches_nest_without_committing_the_outer_transaction():
    """An engine-run batch inside a caller's batch must not commit it."""
    store = SQLiteFactStore()
    store.begin_batch()
    with store.batch():
        store.add("r", (1, 2))
    assert store._batch_depth == 1  # the outer batch is still open
    store.add("r", (3, 4))
    store.end_batch()
    assert store._batch_depth == 0
    assert sorted(store.scan("r")) == [(1, 2), (3, 4)]
    store.close()


# -- data_version / changes_since: the delta-history contract ----------------
#
# The columnar executor (and anything else caching per-version artefacts)
# relies on two promises: ``data_version`` bumps exactly when a mutation had
# an effect, and ``changes_since(v)`` either nets to the *exact* set
# difference between then and now or declines with ``None`` — it never
# guesses.  The property test replays the same generated interleavings as
# the set-model test and audits every historical checkpoint after every op.


def _assert_history_consistent(store, checkpoints):
    current = set(store.scan("r"))
    for version, snapshot in checkpoints:
        delta = store.changes_since("r", version)
        if delta is None:
            continue  # declining is always allowed ...
        added, removed = set(delta[0]), set(delta[1])
        assert added == current - snapshot  # ... answering wrong is not
        assert removed == snapshot - current


@pytest.mark.parametrize("make_store", BACKENDS)
@given(operations=_operations)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_changes_since_nets_to_exact_set_difference(make_store, operations):
    store = make_store()
    try:
        checkpoints = [(store.data_version("r"), set())]
        for operation in operations:
            if operation[0] == "add":
                store.add("r", operation[1])
            elif operation[0] == "add_many":
                store.add_many("r", operation[1])
            elif operation[0] == "remove":
                store.remove("r", operation[1])
            else:
                continue
            checkpoints.append((store.data_version("r"), set(store.scan("r"))))
            _assert_history_consistent(store, checkpoints)
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_data_version_bumps_only_on_effective_mutations(make_store):
    store = make_store()
    try:
        v0 = store.data_version("r")
        store.add("r", (1, 2))
        v1 = store.data_version("r")
        assert v1 != v0
        store.add("r", (1, 2))  # duplicate: ineffective
        assert store.data_version("r") == v1
        store.remove("r", (9, 9))  # absent: ineffective
        assert store.data_version("r") == v1
        assert store.add_many("r", [(1, 2)]) == 0  # all-duplicate batch
        assert store.data_version("r") == v1
        assert store.changes_since("r", v1) == ([], [])
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_add_remove_pairs_net_out(make_store):
    store = make_store()
    try:
        store.add("r", (1, 1))
        version = store.data_version("r")
        store.add("r", (2, 2))
        store.remove("r", (2, 2))
        store.add("r", (3, 3))
        store.remove("r", (1, 1))
        delta = store.changes_since("r", version)
        assert delta is not None
        added, removed = delta
        assert set(added) == {(3, 3)}
        assert set(removed) == {(1, 1)}
    finally:
        store.close()


@pytest.mark.parametrize("make_store", BACKENDS)
def test_replace_and_clear_invalidate_older_versions(make_store):
    """Wholesale resets forget history: a pre-reset version gets ``None``
    (forcing the caller's full re-read), while post-reset versions answer
    exactly again."""
    store = make_store()
    try:
        store.add("r", (1, 2))
        before_replace = store.data_version("r")
        store.replace("r", [(3, 4)])
        assert store.changes_since("r", before_replace) is None
        after_replace = store.data_version("r")
        store.add("r", (5, 6))
        assert store.changes_since("r", after_replace) == ([(5, 6)], [])
        store.clear_relation("r")
        assert store.changes_since("r", after_replace) is None
    finally:
        store.close()


def test_sqlite_unattributable_batches_decline_instead_of_guessing():
    """``INSERT OR IGNORE`` cannot say which rows of a partially-fresh (or
    internally duplicated) batch were new, so SQLite must invalidate the
    history rather than report a guessed delta."""
    store = SQLiteFactStore()
    try:
        store.add("r", (1, 2))
        version = store.data_version("r")
        store.add_many("r", [(1, 2), (3, 4)])  # (1, 2) already present
        assert store.changes_since("r", version) is None
    finally:
        store.close()
    store = SQLiteFactStore()
    try:
        store.add("r", (0, 0))
        version = store.data_version("r")
        store.add_many("r", [(5, 6), (5, 6)])  # duplicate within the batch
        assert store.changes_since("r", version) is None
        # a fully-fresh, duplicate-free batch stays attributable
        version = store.data_version("r")
        store.add_many("r", [(7, 8), (9, 10)])
        delta = store.changes_since("r", version)
        assert delta is not None
        assert set(delta[0]) == {(7, 8), (9, 10)} and delta[1] == []
    finally:
        store.close()


def test_changelog_truncation_declines_beyond_floor():
    """The log is bounded: versions older than the retention floor get
    ``None``, recent versions keep answering exactly."""
    from repro.engines.datalog.storage import RelationChangeLog

    store = FactStore()
    v0 = store.data_version("r")
    for i in range(RelationChangeLog.LIMIT + 10):
        store.add("r", (i, i))
    assert store.changes_since("r", v0) is None
    recent = store.data_version("r")
    store.add("r", (-1, -1))
    assert store.changes_since("r", recent) == ([(-1, -1)], [])


def test_oversized_batch_invalidates_history_wholesale():
    """A single batch larger than the log could ever retain skips the
    appends and resets the history in one step."""
    from repro.engines.datalog.storage import RelationChangeLog

    store = FactStore()
    store.add("r", (0, -1))
    version = store.data_version("r")
    store.add_many("r", [(i, 1) for i in range(RelationChangeLog.LIMIT + 2)])
    assert store.changes_since("r", version) is None
