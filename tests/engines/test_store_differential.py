"""Cross-backend and cross-executor differential testing for the engine.

Fifty seeded random Datalog programs — recursion (linear and nonlinear),
stratified negation, comparisons, arithmetic assignments, constants,
wildcards, and aggregates — are each evaluated on **every executor × store
combination** ({interpreted, compiled, columnar} × {memory, sqlite}) and
against a brute-force **naive oracle** written independently of the
planner, the plan executors and the stores (cartesian-product matching,
end-of-body guards, naive fixpoint per stratum).

All combinations must agree fact-for-fact on every IDB relation.  This is
the equivalence bar any future backend (sharded, subsumption-aware, ...)
*or* executor (bytecode, vectorised, parallel, ...) must clear before the
engine may run on it.  For the columnar executor the corpus additionally
asserts *coverage*: the seeds must actually exercise the vectorised kernels
(zero fallbacks), not silently delegate back to the compiled executor.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.analysis.stratification import stratify
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Const,
    DLIRProgram,
    Rule,
    Var,
    Wildcard,
)
from repro.engines.datalog import DatalogEngine

Facts = Dict[str, Set[Tuple]]
Bindings = Dict[str, object]


# -- the naive oracle ------------------------------------------------------
#
# Deliberately primitive: no join ordering, no indexes, no deltas, no plans.
# Positive atoms are matched by scanning every fact; comparisons and
# negations run at the end of the body; strata iterate to fixpoint by full
# re-evaluation.  Shares no evaluation code with the engine.


def _eval_term(term, bindings: Bindings) -> Tuple[bool, object]:
    """Return ``(known, value)`` for ``term`` under ``bindings``."""
    if isinstance(term, Const):
        return True, term.value
    if isinstance(term, Var):
        if term.name in bindings:
            return True, bindings[term.name]
        return False, None
    if isinstance(term, ArithExpr):
        known_left, left = _eval_term(term.left, bindings)
        known_right, right = _eval_term(term.right, bindings)
        if not (known_left and known_right):
            return False, None
        if term.op == "+":
            return True, left + right
        if term.op == "-":
            return True, left - right
        if term.op == "*":
            return True, left * right
        if term.op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return True, left // right
            return True, left / right
        if term.op == "%":
            return True, left % right
    raise AssertionError(f"oracle cannot evaluate term {term!r}")


def _holds(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise AssertionError(f"oracle cannot check operator {op!r}")


def _match_atom(atom: Atom, fact: Tuple, bindings: Bindings) -> Optional[Bindings]:
    """Unify ``atom`` with ``fact``; return extended bindings or ``None``."""
    extended = dict(bindings)
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Wildcard):
            continue
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif isinstance(term, Var):
            if term.name in extended:
                if extended[term.name] != value:
                    return None
            else:
                extended[term.name] = value
        else:
            raise AssertionError(f"oracle cannot match body term {term!r}")
    return extended


def _apply_comparisons(rule: Rule, bindings: Bindings) -> Optional[Bindings]:
    """Check/assign every comparison; return final bindings or ``None``."""
    pending = list(rule.comparisons())
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for comparison in pending:
            known_left, left = _eval_term(comparison.left, bindings)
            known_right, right = _eval_term(comparison.right, bindings)
            if known_left and known_right:
                if not _holds(comparison.op, left, right):
                    return None
                progress = True
            elif comparison.op == "=" and known_left and isinstance(comparison.right, Var):
                bindings[comparison.right.name] = left
                progress = True
            elif comparison.op == "=" and known_right and isinstance(comparison.left, Var):
                bindings[comparison.left.name] = right
                progress = True
            else:
                remaining.append(comparison)
        pending = remaining
    assert not pending, f"oracle hit an unsafe rule: {rule}"
    return bindings


def _negations_hold(rule: Rule, bindings: Bindings, facts: Facts) -> bool:
    """A negation fails when any fact matches its bound components."""
    for negated in rule.negated_atoms():
        for fact in facts.get(negated.atom.relation, ()):
            matches = True
            for term, value in zip(negated.atom.terms, fact):
                if isinstance(term, Wildcard):
                    continue
                if isinstance(term, Var) and term.name not in bindings:
                    continue  # existential: matches anything
                known, expected = _eval_term(term, bindings)
                assert known
                if expected != value:
                    matches = False
                    break
            if matches:
                return False
    return True


def _naive_solutions(rule: Rule, facts: Facts) -> List[Bindings]:
    solutions: List[Bindings] = [{}]
    for literal in rule.body:
        if not isinstance(literal, Atom):
            continue
        next_solutions: List[Bindings] = []
        for bindings in solutions:
            for fact in facts.get(literal.relation, ()):
                extended = _match_atom(literal, fact, bindings)
                if extended is not None:
                    next_solutions.append(extended)
        solutions = next_solutions
    finished: List[Bindings] = []
    for bindings in solutions:
        final = _apply_comparisons(rule, dict(bindings))
        if final is None:
            continue
        if not _negations_hold(rule, final, facts):
            continue
        finished.append(final)
    return finished


def _head_value(term, bindings: Bindings):
    known, value = _eval_term(term, bindings)
    assert known, f"oracle derived an unbound head term {term!r}"
    return value


def _naive_rule(rule: Rule, facts: Facts) -> Set[Tuple]:
    solutions = _naive_solutions(rule, facts)
    if not rule.aggregations:
        return {
            tuple(_head_value(term, bindings) for term in rule.head.terms)
            for bindings in solutions
        }
    # Aggregates: group by the non-aggregated head variables.
    group_keys = rule.group_by_variables()
    by_result = {agg.result.name: agg for agg in rule.aggregations}
    groups: Dict[Tuple, Dict[str, List]] = {}
    seen_distinct: Dict[Tuple, Dict[str, Set]] = {}
    exemplars: Dict[Tuple, Bindings] = {}
    for bindings in solutions:
        key = tuple(bindings[name] for name in group_keys)
        groups.setdefault(key, {name: [] for name in by_result})
        seen_distinct.setdefault(key, {name: set() for name in by_result})
        exemplars.setdefault(key, bindings)
        for name, aggregation in by_result.items():
            if aggregation.argument is None:
                value = tuple(sorted(bindings.items(), key=lambda item: item[0]))
            else:
                value = _head_value(aggregation.argument, bindings)
            if aggregation.distinct or aggregation.argument is None:
                if value in seen_distinct[key][name]:
                    continue
                seen_distinct[key][name].add(value)
            groups[key][name].append(value)
    derived: Set[Tuple] = set()
    for key, collected in groups.items():
        bindings = dict(exemplars[key])
        for name, aggregation in by_result.items():
            values = collected[name]
            if aggregation.func == "count":
                bindings[name] = len(values)
            elif aggregation.func == "sum":
                bindings[name] = sum(values) if values else 0
            elif aggregation.func == "min":
                bindings[name] = min(values)
            elif aggregation.func == "max":
                bindings[name] = max(values)
            elif aggregation.func == "avg":
                bindings[name] = sum(values) / len(values)
            else:
                raise AssertionError(f"oracle cannot aggregate {aggregation.func!r}")
        derived.add(tuple(_head_value(term, bindings) for term in rule.head.terms))
    return derived


def naive_evaluate(program: DLIRProgram, input_facts: Dict[str, List[Tuple]]) -> Facts:
    """Naive bottom-up fixpoint, stratum by stratum."""
    facts: Facts = {name: set(map(tuple, rows)) for name, rows in program.facts.items()}
    for name, rows in input_facts.items():
        facts.setdefault(name, set()).update(map(tuple, rows))
    for stratum in stratify(program):
        stratum_set = set(stratum)
        rules = [rule for rule in program.rules if rule.head.relation in stratum_set]
        changed = True
        while changed:
            changed = False
            for rule in rules:
                derived = _naive_rule(rule, facts)
                target = facts.setdefault(rule.head.relation, set())
                before = len(target)
                target |= derived
                if len(target) != before:
                    changed = True
    return facts


# -- the random program generator ------------------------------------------


def _random_case(seed: int):
    """Return ``(program, facts, idb_relations)`` for one differential case."""
    rng = random.Random(seed)
    nodes = rng.randrange(4, 8)
    edge_count = rng.randrange(0, 2 * nodes)  # occasionally an empty EDB
    edges = set()
    while len(edges) < edge_count:
        edges.add((rng.randrange(nodes), rng.randrange(nodes)))

    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    idbs = ["p"]

    builder.idb("p", [("a", "number"), ("b", "number")])
    base_guard = rng.choice(
        [None, ("<", "x", "y"), ("<>", "x", "y"), (">=", "x", "y")]
    )
    builder.rule(
        "p",
        ["x", "y"],
        [("edge", ["x", "y"])],
        comparisons=[base_guard] if base_guard else [],
    )
    recursion = rng.choice(["none", "linear", "nonlinear", "guarded"])
    if recursion == "linear":
        builder.rule("p", ["x", "y"], [("p", ["x", "z"]), ("edge", ["z", "y"])])
    elif recursion == "nonlinear":
        builder.rule("p", ["x", "y"], [("p", ["x", "z"]), ("p", ["z", "y"])])
    elif recursion == "guarded":
        builder.rule(
            "p",
            ["x", "y"],
            [("edge", ["x", "z"]), ("p", ["z", "y"])],
            comparisons=[("<>", "x", "y")],
        )

    feature = rng.choice(["negation", "aggregate", "arithmetic", "constant", "wildcard"])
    if feature == "negation":
        builder.idb("q", [("a", "number"), ("b", "number")])
        if rng.random() < 0.5:
            builder.rule(
                "q", ["x", "y"], [("edge", ["x", "y"])], negated=[("p", ["y", "x"])]
            )
        else:
            builder.rule(
                "q", ["x", "y"], [("p", ["x", "y"])], negated=[("edge", ["y", "x"])]
            )
        idbs.append("q")
    elif feature == "aggregate":
        builder.idb("agg", [("a", "number"), ("n", "number")])
        func = rng.choice(["count", "sum", "min", "max", "avg"])
        if func == "count" and rng.random() < 0.5:
            aggregation = Aggregation("count", Var("n"))  # count(*)
        else:
            aggregation = Aggregation(
                func, Var("n"), argument=Var("y"), distinct=rng.random() < 0.3
            )
        builder.rule("agg", ["x", "n"], [("p", ["x", "y"])], aggregations=[aggregation])
        idbs.append("agg")
    elif feature == "arithmetic":
        builder.idb("s", [("a", "number"), ("w", "number")])
        op, operand = rng.choice([("+", 1), ("-", 1), ("*", 2), ("%", 3)])
        builder.rule(
            "s",
            ["x", "w"],
            [("p", ["x", "y"])],
            comparisons=[("=", "w", ArithExpr(op, Var("y"), Const(operand)))],
        )
        idbs.append("s")
    elif feature == "constant":
        builder.idb("c", [("b", "number")])
        builder.rule("c", ["y"], [("p", [rng.randrange(nodes), "y"])])
        idbs.append("c")
    else:
        builder.idb("t", [("a", "number")])
        builder.rule("t", ["x"], [("edge", ["x", "_"])])
        idbs.append("t")

    for relation in idbs:
        builder.output(relation)
    return builder.build(), {"edge": sorted(edges)}, idbs


# -- the differential test -------------------------------------------------

try:
    import numpy  # noqa: F401 - presence check only

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI installs numpy on columnar legs
    HAVE_NUMPY = False

EXECUTORS = ("interpreted", "compiled") + (("columnar",) if HAVE_NUMPY else ())

# Every executor × store combination the engine ships.  Each seed's program
# must agree fact-for-fact with the oracle on all of them.  The columnar
# executor joins the matrix only when NumPy is importable; without it the
# corpus still runs on the two tuple executors (the columnar-only coverage
# test below then skips with the reason).
COMBINATIONS = [
    (executor, store) for executor in EXECUTORS for store in ("memory", "sqlite")
]


@pytest.mark.parametrize("seed", range(50))
def test_executors_stores_and_oracle_agree(seed):
    program, facts, idbs = _random_case(seed)
    oracle = naive_evaluate(program, facts)
    for executor, store in COMBINATIONS:
        engine = DatalogEngine(program, facts, store=store, executor=executor)
        engine.run()
        for relation in idbs:
            expected = oracle.get(relation, set())
            rows = set(engine.store.scan(relation))
            assert rows == expected, (
                f"seed {seed}: {executor} executor on {store} store "
                f"disagrees with the oracle on {relation!r}"
            )
        engine.store.close()


# Seeds pinned as fully vectorisable: on these the columnar executor must
# take the vectorised path for every rule application — no static lowering
# rejections and no runtime kernel fallbacks.  (In fact all 50 seeds
# currently vectorise fully; pinning ten keeps the assert stable if the
# generator gains shapes the kernels reject.)
VECTORISED_SEEDS = tuple(range(10))


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar executor requires NumPy")
@pytest.mark.parametrize("seed", VECTORISED_SEEDS)
def test_columnar_corpus_coverage(seed):
    """The designated seeds must exercise the vectorised kernels end to end:
    correct results with zero fallbacks of either tier, on both stores."""
    from repro.engines.datalog import ColumnarExecutor

    program, facts, idbs = _random_case(seed)
    oracle = naive_evaluate(program, facts)
    for store in ("memory", "sqlite"):
        executor = ColumnarExecutor()
        engine = DatalogEngine(program, facts, store=store, executor=executor)
        engine.run()
        for relation in idbs:
            assert set(engine.store.scan(relation)) == oracle.get(relation, set())
        assert executor.fallback_count == 0, (
            f"seed {seed} on {store}: a plan was statically rejected"
        )
        assert executor.runtime_fallback_count == 0, (
            f"seed {seed} on {store}: a kernel fell back at run time"
        )
        assert executor.vectorised_count > 0
        assert engine.executor_fallback_count == 0
        engine.store.close()


@pytest.mark.parametrize("seed", range(50))
def test_always_replanning_never_changes_results(seed):
    """The adaptive-planning stress leg: ``replan_threshold=1`` forces every
    drift check to fire, so each fixpoint iteration rebuilds every rule's
    plan against the iteration's statistics snapshot.  Join orders may move
    mid-fixpoint and compiled closures regenerate — the results must still
    match the oracle fact-for-fact on every executor × store combination.
    """
    program, facts, idbs = _random_case(seed)
    oracle = naive_evaluate(program, facts)
    for executor, store in COMBINATIONS:
        engine = DatalogEngine(
            program, facts, store=store, executor=executor, replan_threshold=1
        )
        engine.run()
        for relation in idbs:
            expected = oracle.get(relation, set())
            rows = set(engine.store.scan(relation))
            assert rows == expected, (
                f"seed {seed}: always-replanning {executor} executor on "
                f"{store} store disagrees with the oracle on {relation!r}"
            )
        if engine.iteration_count(idbs[0]) > 2:
            # A delta plan requested on two or more semi-naive iterations
            # must actually have been re-planned at the floor threshold.
            assert engine.replan_count > 0
        engine.store.close()


def test_generator_covers_every_feature():
    """The 50 seeds must exercise recursion, negation, and aggregates."""
    features = set()
    for seed in range(50):
        program, _facts, _idbs = _random_case(seed)
        for rule in program.rules:
            if rule.negated_atoms():
                features.add("negation")
            if rule.aggregations:
                features.add("aggregate")
            if rule.comparisons():
                features.add("comparison")
            if rule.head.relation in rule.body_relations():
                features.add("recursion")
    assert {"negation", "aggregate", "comparison", "recursion"} <= features
