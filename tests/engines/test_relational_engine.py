"""Tests for the relational engine (tables, SQIR execution, recursive CTEs)."""

import pytest

from repro.common.errors import ExecutionError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.engines.relational import Database, RelationalEngine, Table, execute_sqir
from repro.sqir import translate_dlir_to_sqir
from repro.sqir.nodes import (
    ColumnRef,
    SelectItem,
    SelectQuery,
    SQLBinary,
    SQLLiteral,
    SQIRQuery,
    TableRef,
)

from tests.conftest import PAPER_QUERY


# -- Table / Database ---------------------------------------------------------


def test_table_insert_and_arity_check():
    table = Table(columns=["a", "b"])
    table.insert((1, 2))
    with pytest.raises(ExecutionError):
        table.insert((1, 2, 3))
    assert len(table) == 1
    assert table.column_index("b") == 1
    with pytest.raises(ExecutionError):
        table.column_index("c")


def test_table_duplicate_columns_rejected():
    with pytest.raises(ExecutionError):
        Table(columns=["a", "a"])


def test_table_distinct():
    table = Table(columns=["a"], rows=[(1,), (1,), (2,)])
    assert table.distinct().rows == [(1,), (2,)]


def test_database_create_and_lookup():
    database = Database()
    database.create_table("t", ["a"])
    database.insert_many("t", [(1,), (2,)])
    assert database.has_table("t")
    assert database.table_names() == ["t"]
    assert len(database.table("t")) == 2
    with pytest.raises(ExecutionError):
        database.create_table("t", ["a"])
    with pytest.raises(ExecutionError):
        database.table("missing")
    database.drop_table("t")
    assert not database.has_table("t")


# -- SELECT evaluation ---------------------------------------------------------


def _edge_database():
    database = Database()
    database.create_table("edge", ["a", "b"])
    database.insert_many("edge", [(1, 2), (2, 3), (3, 4), (4, 5)])
    return database


def test_single_table_scan_with_filter():
    database = _edge_database()
    select = SelectQuery(
        items=[SelectItem(ColumnRef("E", "b"), "b")],
        from_tables=[TableRef("edge", "E")],
        where=[SQLBinary("=", ColumnRef("E", "a"), SQLLiteral(2))],
    )
    query = SQIRQuery(ctes=[], final=select)
    result = execute_sqir(query, database)
    assert result.rows == [(3,)]


def test_hash_join_on_shared_column():
    database = _edge_database()
    select = SelectQuery(
        items=[
            SelectItem(ColumnRef("E1", "a"), "a"),
            SelectItem(ColumnRef("E2", "b"), "c"),
        ],
        from_tables=[TableRef("edge", "E1"), TableRef("edge", "E2")],
        where=[SQLBinary("=", ColumnRef("E1", "b"), ColumnRef("E2", "a"))],
    )
    result = execute_sqir(SQIRQuery(ctes=[], final=select), database)
    assert (1, 3) in result.row_set()
    assert len(result) == 3


def test_cross_product_when_no_join_keys():
    database = Database()
    database.create_table("l", ["a"])
    database.create_table("r", ["b"])
    database.insert_many("l", [(1,), (2,)])
    database.insert_many("r", [(10,), (20,)])
    select = SelectQuery(
        items=[SelectItem(ColumnRef("L", "a"), "a"), SelectItem(ColumnRef("R", "b"), "b")],
        from_tables=[TableRef("l", "L"), TableRef("r", "R")],
    )
    result = execute_sqir(SQIRQuery(ctes=[], final=select), database)
    assert len(result) == 4


def test_distinct_enforced():
    database = Database()
    database.create_table("t", ["a", "b"])
    database.insert_many("t", [(1, 1), (1, 2)])
    select = SelectQuery(
        items=[SelectItem(ColumnRef("T", "a"), "a")],
        from_tables=[TableRef("t", "T")],
    )
    result = execute_sqir(SQIRQuery(ctes=[], final=select), database)
    assert result.rows == [(1,)]


# -- DLIR-driven execution -----------------------------------------------------


def _run_program(program, database):
    return execute_sqir(translate_dlir_to_sqir(program), database)


def test_paper_query_on_relational_engine(paper_raqlet, paper_facts):
    database = Database()
    for relation in paper_raqlet.dl_schema.edb_relations():
        database.create_table(relation.name, relation.column_names())
        database.insert_many(relation.name, paper_facts.get(relation.name, []))
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    result = RelationalEngine(database).execute(compiled.sqir(optimized=False))
    assert result.rows == [("Ada", 1)]
    assert result.columns == ["firstName", "cityId"]


def test_recursive_cte_transitive_closure():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    result = _run_program(builder.build(), _edge_database())
    assert len(result) == 10
    assert (1, 5) in result.row_set()


def test_recursive_cte_terminates_on_cycles():
    database = Database()
    database.create_table("edge", ["a", "b"])
    database.insert_many("edge", [(1, 2), (2, 3), (3, 1)])
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    result = _run_program(builder.build(), database)
    assert len(result) == 9


def test_not_exists_subquery():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("sink", [("id", "number")])
    builder.rule("sink", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])])
    builder.output("sink")
    database = Database()
    database.create_table("node", ["id"])
    database.create_table("edge", ["a", "b"])
    database.insert_many("node", [(1,), (2,), (3,)])
    database.insert_many("edge", [(1, 2), (2, 3)])
    result = _run_program(builder.build(), database)
    assert result.row_set() == {(3,)}


def test_correlated_not_exists_with_bound_column():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("no_return", [("a", "number"), ("b", "number")])
    builder.rule(
        "no_return", ["x", "y"], [("edge", ["x", "y"])], negated=[("edge", ["y", "x"])]
    )
    builder.output("no_return")
    database = Database()
    database.create_table("edge", ["a", "b"])
    database.insert_many("edge", [(1, 2), (2, 1), (2, 3)])
    result = _run_program(builder.build(), database)
    assert result.row_set() == {(2, 3)}


def test_group_by_aggregation():
    builder = ProgramBuilder()
    builder.edb("sale", [("shop", "number"), ("amount", "number")])
    builder.idb("totals", [("shop", "number"), ("n", "number"), ("total", "number")])
    builder.rule(
        "totals", ["s", "n", "t"],
        [("sale", ["s", "a"])],
        aggregations=[
            Aggregation("count", Var("n"), Var("a")),
            Aggregation("sum", Var("t"), Var("a")),
        ],
    )
    builder.output("totals")
    database = Database()
    database.create_table("sale", ["shop", "amount"])
    database.insert_many("sale", [(1, 10), (1, 20), (2, 5)])
    result = _run_program(builder.build(), database)
    assert result.row_set() == {(1, 2, 30), (2, 1, 5)}


def test_relational_engine_matches_datalog_engine_on_snb(snb_raqlet, snb_data):
    from repro.ldbc import complex_query_2

    spec = complex_query_2(
        snb_data.dataset.default_person_id(), snb_data.dataset.median_message_date()
    )
    compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    relational_result = snb_raqlet.run_on_relational_engine(
        compiled, snb_data.relational_database()
    )
    assert datalog_result.same_rows(relational_result)
