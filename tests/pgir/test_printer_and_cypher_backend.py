"""Tests for the PGIR pretty printer and the Cypher unparser (round trips)."""

from repro.backends import pgir_to_cypher
from repro.frontend.cypher import parse_cypher
from repro.pgir import lower_cypher_to_pgir, pgir_to_text

from tests.conftest import PAPER_QUERY


def _lower(text, parameters=None):
    return lower_cypher_to_pgir(parse_cypher(text), parameters)


def test_pgir_text_shows_clause_blocks():
    text = pgir_to_text(_lower(PAPER_QUERY).query)
    assert "MATCH" in text
    assert "WHERE" in text
    assert "RETURN DISTINCT" in text
    assert "IS_LOCATED_IN" in text


def test_pgir_text_includes_warnings():
    lowering = _lower("MATCH (n:Person) RETURN n.id AS id LIMIT 3")
    text = pgir_to_text(lowering.query)
    assert "warnings" in text


def test_cypher_unparser_produces_parseable_cypher():
    regenerated = pgir_to_cypher(_lower(PAPER_QUERY).query)
    reparsed = parse_cypher(regenerated)
    assert reparsed.return_clause().distinct


def test_cypher_round_trip_is_stable():
    """Lower -> unparse -> lower -> unparse must reach a fixpoint."""
    first = pgir_to_cypher(_lower(PAPER_QUERY).query)
    second = pgir_to_cypher(_lower(first).query)
    assert first == second


def test_round_trip_preserves_var_length_bounds():
    query = "MATCH (a:Person)-[:KNOWS*1..3]->(b:Person) RETURN b.id AS id"
    regenerated = pgir_to_cypher(_lower(query).query)
    assert "*1..3" in regenerated


def test_round_trip_preserves_shortest_path():
    query = (
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops"
    )
    regenerated = pgir_to_cypher(_lower(query).query)
    assert "shortestPath" in regenerated
    reparsed = parse_cypher(regenerated)
    assert reparsed.clauses[0].patterns[0].shortest


def test_round_trip_preserves_aggregates():
    query = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.id AS id, count(DISTINCT b) AS friends"
    regenerated = pgir_to_cypher(_lower(query).query)
    assert "count(DISTINCT b)" in regenerated


def test_round_trip_results_match_on_engine(paper_raqlet, paper_facts, snb_raqlet):
    """Executing the round-tripped query gives the same result as the original."""
    original = paper_raqlet.compile_cypher(PAPER_QUERY)
    regenerated_text = original.cypher_text()
    regenerated = paper_raqlet.compile_cypher(regenerated_text)
    result_original = paper_raqlet.run_on_datalog_engine(original, paper_facts)
    result_regenerated = paper_raqlet.run_on_datalog_engine(regenerated, paper_facts)
    assert result_original.same_rows(result_regenerated)
