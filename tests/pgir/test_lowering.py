"""Tests for the Cypher-to-PGIR lowering."""

import pytest

from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.frontend.cypher import parse_cypher
from repro.pgir import lower_cypher_to_pgir, pgir_to_text
from repro.pgir.expr import PGBinary, PGConst, PGProperty
from repro.pgir.nodes import PGDirection, PGMatch, PGReturn, PGWhere, PGWith

from tests.conftest import PAPER_QUERY


def _lower(text, parameters=None):
    return lower_cypher_to_pgir(parse_cypher(text), parameters)


def test_running_example_clause_sequence():
    lowering = _lower(PAPER_QUERY)
    kinds = [type(clause) for clause in lowering.query.clauses]
    assert kinds == [PGMatch, PGWhere, PGReturn]


def test_anonymous_edge_gets_identifier_x1():
    lowering = _lower(PAPER_QUERY)
    match = lowering.query.clauses[0]
    assert match.edge_patterns[0].identifier == "x1"
    assert match.edge_patterns[0].label == "IS_LOCATED_IN"


def test_inline_property_becomes_where_condition():
    lowering = _lower(PAPER_QUERY)
    where = lowering.query.clauses[1]
    assert isinstance(where.condition, PGBinary)
    assert where.condition.op == "="
    assert where.condition.left == PGProperty("n", "id")
    assert where.condition.right == PGConst(42)


def test_return_items_lowered_with_aliases():
    lowering = _lower(PAPER_QUERY)
    returns = lowering.query.return_clause()
    assert returns.distinct
    assert [item.alias for item in returns.items] == ["firstName", "cityId"]


def test_node_labels_recorded():
    lowering = _lower(PAPER_QUERY)
    assert lowering.node_labels["n"] == "Person"
    assert lowering.node_labels["p"] == "City"


def test_anonymous_nodes_get_fresh_identifiers():
    lowering = _lower("MATCH (:Person)-[:KNOWS]->(:Person) RETURN 1 AS one")
    match = lowering.query.clauses[0]
    edge = match.edge_patterns[0]
    assert edge.source.identifier != edge.target.identifier
    assert edge.source.identifier.startswith("n")


def test_generated_names_do_not_capture_user_variables():
    lowering = _lower("MATCH (n1:Person)-[:KNOWS]->(:Person) RETURN n1.id AS id")
    match = lowering.query.clauses[0]
    identifiers = {edge.target.identifier for edge in match.edge_patterns}
    assert "n1" not in identifiers


def test_incoming_pattern_normalised_to_directed():
    lowering = _lower("MATCH (a:City)<-[:IS_LOCATED_IN]-(b:Person) RETURN a.id AS id")
    edge = lowering.query.clauses[0].edge_patterns[0]
    assert edge.direction is PGDirection.DIRECTED
    assert edge.source.identifier == "b"
    assert edge.target.identifier == "a"


def test_undirected_pattern_preserved():
    lowering = _lower("MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a.id AS id")
    edge = lowering.query.clauses[0].edge_patterns[0]
    assert edge.direction is PGDirection.UNDIRECTED


def test_isolated_node_pattern():
    lowering = _lower("MATCH (a:Person) RETURN a.id AS id")
    match = lowering.query.clauses[0]
    assert match.edge_patterns == ()
    assert match.node_patterns[0].identifier == "a"


def test_variable_length_bounds_carried():
    lowering = _lower("MATCH (a:Person)-[:KNOWS*1..3]->(b:Person) RETURN b.id AS id")
    edge = lowering.query.clauses[0].edge_patterns[0]
    assert edge.var_length and (edge.min_hops, edge.max_hops) == (1, 3)


def test_shortest_path_flag_and_path_variable():
    lowering = _lower(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops"
    )
    edge = lowering.query.clauses[0].edge_patterns[0]
    assert edge.shortest
    assert edge.path_variable == "p"


def test_parameters_substituted():
    lowering = _lower(
        "MATCH (n:Person {id: $personId}) RETURN n.id AS id", {"personId": 7}
    )
    where = lowering.query.clauses[1]
    assert where.condition.right == PGConst(7)


def test_missing_parameter_stays_late_bound():
    # A parameter without a compile-time value is no longer an error: it
    # lowers to a PGParam placeholder, bound at execution time through the
    # prepared-query API.
    lowering = _lower("MATCH (n:Person {id: $personId}) RETURN n.id AS id")
    text = pgir_to_text(lowering.query)
    assert "$personId" in text


def test_order_by_and_limit_dropped_with_warning():
    lowering = _lower(
        "MATCH (n:Person) RETURN n.id AS id ORDER BY id LIMIT 5"
    )
    assert lowering.query.warnings
    assert "ORDER BY" in lowering.query.warnings[0]


def test_with_clause_lowered():
    lowering = _lower(
        "MATCH (n:Person)-[:KNOWS]->(m:Person) WITH n, count(m) AS friends RETURN n.id AS id, friends"
    )
    kinds = [type(clause) for clause in lowering.query.clauses]
    assert PGWith in kinds


def test_relationship_property_becomes_condition():
    lowering = _lower(
        "MATCH (a:Person)-[k:KNOWS {creationDate: 5}]->(b:Person) RETURN a.id AS id"
    )
    where = lowering.query.clauses[1]
    assert where.condition.left == PGProperty("k", "creationDate")


def test_multiple_labels_rejected():
    with pytest.raises(UnsupportedFeatureError):
        _lower("MATCH (a:Person:Admin) RETURN a.id AS id")


def test_alternative_relationship_types_rejected():
    with pytest.raises(UnsupportedFeatureError):
        _lower("MATCH (a)-[:KNOWS|LIKES]->(b) RETURN a.id AS id")


def test_not_condition_lowered():
    lowering = _lower("MATCH (a:Person) WHERE NOT a.id = 3 RETURN a.id AS id")
    where = lowering.query.clauses[1]
    assert type(where.condition).__name__ == "PGNot"


def test_in_list_lowered_to_function():
    lowering = _lower("MATCH (a:Person) WHERE a.id IN [1, 2] RETURN a.id AS id")
    where = lowering.query.clauses[1]
    assert where.condition.op == "IN"
    assert where.condition.right.name == "list"
