"""Tests for the PGIR expression language."""

from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGFunction,
    PGNot,
    PGProperty,
    PGVariable,
    conjoin,
    contains_aggregate,
    expression_variables,
    split_conjunction,
)


def test_walk_visits_every_node():
    expression = PGBinary("AND", PGBinary("=", PGProperty("n", "id"), PGConst(1)), PGNot(PGVariable("x")))
    kinds = [type(node).__name__ for node in expression.walk()]
    assert kinds.count("PGBinary") == 2
    assert "PGNot" in kinds and "PGVariable" in kinds


def test_expression_variables_deduplicates_in_order():
    expression = PGBinary(
        "AND",
        PGBinary("=", PGProperty("n", "id"), PGVariable("m")),
        PGBinary("<", PGVariable("n"), PGVariable("m")),
    )
    assert expression_variables(expression) == ("n", "m")


def test_contains_aggregate():
    plain = PGBinary("=", PGVariable("a"), PGConst(1))
    aggregated = PGAggregate("count", PGVariable("m"))
    assert not contains_aggregate(plain)
    assert contains_aggregate(PGBinary("=", PGVariable("x"), aggregated))


def test_split_conjunction_flattens_nested_ands():
    a = PGBinary("=", PGVariable("x"), PGConst(1))
    b = PGBinary("=", PGVariable("y"), PGConst(2))
    c = PGBinary("=", PGVariable("z"), PGConst(3))
    expression = PGBinary("AND", PGBinary("AND", a, b), c)
    assert split_conjunction(expression) == (a, b, c)


def test_split_conjunction_keeps_or_whole():
    expression = PGBinary("OR", PGConst(True), PGConst(False))
    assert split_conjunction(expression) == (expression,)


def test_conjoin_inverse_of_split():
    a = PGBinary("=", PGVariable("x"), PGConst(1))
    b = PGBinary("<", PGVariable("y"), PGConst(2))
    combined = conjoin((a, b))
    assert split_conjunction(combined) == (a, b)
    assert conjoin(()) is None
    assert conjoin((a,)) is a


def test_str_representations():
    assert str(PGConst("x")) == "'x'"
    assert str(PGConst(None)) == "null"
    assert str(PGConst(True)) == "true"
    assert str(PGProperty("n", "id")) == "n.id"
    assert str(PGFunction("id", (PGVariable("n"),))) == "id(n)"
    assert str(PGAggregate("count", None)) == "count(*)"
    assert str(PGAggregate("count", PGVariable("m"), distinct=True)) == "count(DISTINCT m)"
