"""Tests for the DLIR-to-SQIR translation."""

import pytest

from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.sqir import translate_dlir_to_sqir
from repro.sqir.nodes import NotExists

from tests.conftest import PAPER_QUERY


def _tc_builder(nonlinear=False):
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    if nonlinear:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    else:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    return builder


def test_paper_query_produces_three_ctes(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sqir = compiled.sqir(optimized=False)
    assert [cte.name for cte in sqir.ctes] == ["Match1", "Where1", "Return"]
    assert not sqir.is_recursive


def test_cte_columns_follow_declarations(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sqir = compiled.sqir(optimized=False)
    assert sqir.cte("Return").columns == ["firstName", "cityId"]
    assert sqir.cte("Match1").columns == ["n", "p", "x1"]


def test_shared_variables_become_join_conditions(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sqir = compiled.sqir(optimized=False)
    match_member = sqir.cte("Match1").base_members[0]
    condition_text = " AND ".join(str(cond) for cond in match_member.where)
    assert "=" in condition_text
    assert len(match_member.from_tables) == 3


def test_constants_become_equality_filters(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sqir = compiled.sqir(optimized=False)
    where_member = sqir.cte("Where1").base_members[0]
    assert any("42" in str(cond) for cond in where_member.where)


def test_recursive_relation_splits_base_and_recursive_members():
    sqir = translate_dlir_to_sqir(_tc_builder().build())
    cte = sqir.cte("tc")
    assert cte.is_recursive
    assert len(cte.base_members) == 1
    assert len(cte.recursive_members) == 1
    assert sqir.is_recursive


def test_final_select_reads_output_relation():
    sqir = translate_dlir_to_sqir(_tc_builder().build())
    assert sqir.final.from_tables[0].name == "tc"
    assert [item.alias for item in sqir.final.items] == ["a", "b"]


def test_multiple_rules_become_union_members():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("sym", [("a", "number"), ("b", "number")])
    builder.rule("sym", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("sym", ["x", "y"], [("edge", ["y", "x"])])
    builder.output("sym")
    sqir = translate_dlir_to_sqir(builder.build())
    assert len(sqir.cte("sym").base_members) == 2


def test_fact_rules_become_constant_selects():
    builder = ProgramBuilder()
    builder.idb("seed", [("x", "number")])
    builder.rule("seed", [7], [])
    builder.output("seed")
    sqir = translate_dlir_to_sqir(builder.build())
    member = sqir.cte("seed").base_members[0]
    assert member.from_tables == []
    assert str(member.items[0].expression) == "7"


def test_negated_atom_becomes_not_exists():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("sink", [("id", "number")])
    builder.rule("sink", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])])
    builder.output("sink")
    sqir = translate_dlir_to_sqir(builder.build())
    member = sqir.cte("sink").base_members[0]
    assert any(isinstance(cond, NotExists) for cond in member.where)


def test_aggregation_becomes_group_by():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("deg", [("a", "number"), ("c", "number")])
    builder.rule(
        "deg", ["x", "c"], [("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.output("deg")
    sqir = translate_dlir_to_sqir(builder.build())
    member = sqir.cte("deg").base_members[0]
    assert member.group_by
    assert "COUNT" in str(member.items[1].expression)


def test_mutual_recursion_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("even")
    with pytest.raises(UnsupportedFeatureError):
        translate_dlir_to_sqir(builder.build())


def test_nonlinear_recursion_rejected():
    with pytest.raises(UnsupportedFeatureError):
        translate_dlir_to_sqir(_tc_builder(nonlinear=True).build())


def test_subsumption_rejected(snb_raqlet):
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        optimize=False,
    )
    with pytest.raises(UnsupportedFeatureError):
        translate_dlir_to_sqir(compiled.program(optimized=False))


def test_recursion_without_base_case_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("loop", [("a", "number"), ("b", "number")])
    builder.rule("loop", ["x", "y"], [("loop", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("loop")
    with pytest.raises(TranslationError):
        translate_dlir_to_sqir(builder.build())


def test_missing_output_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    program = builder.build()
    with pytest.raises(TranslationError):
        translate_dlir_to_sqir(program)


def test_explicit_output_selection():
    builder = _tc_builder()
    builder.idb("pairs", [("a", "number"), ("b", "number")])
    builder.rule("pairs", ["x", "y"], [("tc", ["x", "y"])])
    builder.output("pairs")
    sqir = translate_dlir_to_sqir(builder.build(), output="tc")
    assert sqir.final.from_tables[0].name == "tc"
