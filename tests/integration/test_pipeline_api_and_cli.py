"""Tests for the Raqlet facade (public API) and the command-line interface."""

import pytest

from repro import Raqlet
from repro.cli import main
from repro.common.errors import RaqletError, UnsupportedFeatureError

from tests.conftest import PAPER_FACTS, PAPER_QUERY, PAPER_SCHEMA_TEXT


# -- facade ---------------------------------------------------------------------


def test_raqlet_accepts_schema_text():
    raqlet = Raqlet(PAPER_SCHEMA_TEXT)
    assert "Person" in raqlet.dl_schema


def test_raqlet_accepts_pg_schema_object(paper_schema):
    raqlet = Raqlet(paper_schema)
    assert "Person_IS_LOCATED_IN_City" in raqlet.dl_schema


def test_raqlet_rejects_unknown_schema_type():
    with pytest.raises(RaqletError):
        Raqlet(12345)


def test_compile_cypher_produces_all_artifacts(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    assert compiled.source_language == "cypher"
    assert compiled.pgir_text()
    assert compiled.cypher_text()
    assert compiled.datalog_text()
    assert compiled.sql_text()
    assert compiled.sqir().ctes
    assert compiled.analysis is not None
    assert compiled.warnings() == []


def test_compile_without_optimization_keeps_program_identical(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    assert compiled.program(optimized=True) is compiled.program(optimized=False)


def test_compile_datalog_merges_schema_relations(paper_raqlet):
    program_text = """
    .decl Located(person:number, city:number)
    Located(p, c) :- Person_IS_LOCATED_IN_City(p, c, _).
    .output Located
    """
    compiled = paper_raqlet.compile_datalog(program_text)
    result = paper_raqlet.run_on_datalog_engine(compiled, PAPER_FACTS)
    assert result.row_set() == {(42, 1), (43, 2), (44, 1)}


def test_compile_dlir_wraps_existing_program(paper_raqlet):
    from repro.dlir.builder import ProgramBuilder

    builder = ProgramBuilder()
    builder.edb("Person", [("id", "number"), ("firstName", "symbol"), ("locationIP", "symbol")])
    builder.idb("Named", [("name", "symbol")])
    builder.rule("Named", ["n"], [("Person", ["_", "n", "_"])])
    builder.output("Named")
    compiled = paper_raqlet.compile_dlir(builder.build())
    result = paper_raqlet.run_on_datalog_engine(compiled, PAPER_FACTS)
    assert result.row_set() == {("Ada",), ("Alan",), ("Edgar",)}


def test_backend_problems_for_unknown_backend(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    with pytest.raises(RaqletError):
        compiled.backend_problems("oracle")


def test_graph_execution_requires_cypher_input(paper_raqlet):
    compiled = paper_raqlet.compile_datalog(
        ".decl Q(x:number)\nQ(x) :- Person(x, _, _).\n.output Q"
    )
    with pytest.raises(RaqletError):
        paper_raqlet.run_on_graph_engine(compiled, None)


def test_unsupported_query_raises_on_relational_backend(snb_raqlet, snb_data):
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops"
    )
    with pytest.raises(UnsupportedFeatureError):
        snb_raqlet.run_on_relational_engine(compiled, snb_data.relational_database())


def test_warnings_surface_dropped_order_by(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person) RETURN n.id AS id ORDER BY id LIMIT 1"
    )
    assert any("ORDER BY" in warning for warning in compiled.warnings())


# -- CLI --------------------------------------------------------------------------


@pytest.fixture()
def schema_and_query_files(tmp_path):
    schema_path = tmp_path / "schema.pgs"
    schema_path.write_text(PAPER_SCHEMA_TEXT, encoding="utf-8")
    query_path = tmp_path / "query.cyp"
    query_path.write_text(PAPER_QUERY, encoding="utf-8")
    return str(schema_path), str(query_path)


def test_cli_compile_emits_all_artifacts(schema_and_query_files, capsys):
    schema_path, query_path = schema_and_query_files
    exit_code = main(["compile", "--schema", schema_path, "--cypher", query_path])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Soufflé Datalog" in captured.out
    assert ".output Return" in captured.out
    assert "SELECT DISTINCT" in captured.out


def test_cli_compile_datalog_input(tmp_path, capsys):
    schema_path = tmp_path / "schema.pgs"
    schema_path.write_text(PAPER_SCHEMA_TEXT, encoding="utf-8")
    datalog_path = tmp_path / "prog.dl"
    datalog_path.write_text(
        ".decl Q(x:number)\nQ(x) :- Person(x, _, _).\n.output Q\n", encoding="utf-8"
    )
    exit_code = main(
        ["compile", "--schema", str(schema_path), "--datalog", str(datalog_path), "--emit", "sql"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "SELECT" in captured.out


def test_cli_analyze_reports_backend_support(schema_and_query_files, capsys):
    schema_path, query_path = schema_and_query_files
    exit_code = main(["analyze", "--schema", schema_path, "--cypher", query_path])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "static analysis report" in captured.out
    assert "backend souffle" in captured.out


def test_cli_parameters_parsed_as_json(tmp_path, capsys):
    schema_path = tmp_path / "schema.pgs"
    schema_path.write_text(PAPER_SCHEMA_TEXT, encoding="utf-8")
    query_path = tmp_path / "query.cyp"
    query_path.write_text(
        "MATCH (n:Person {id: $personId}) RETURN n.firstName AS name", encoding="utf-8"
    )
    exit_code = main(
        [
            "compile",
            "--schema",
            str(schema_path),
            "--cypher",
            str(query_path),
            "--param",
            "personId=42",
            "--emit",
            "dlir",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "42" in captured.out


def test_cli_ldbc_runs_all_engines(capsys):
    exit_code = main(["ldbc", "--query", "sq1", "--scale", "40", "--show-rows", "1"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "engines agree: True" in captured.out


def test_cli_ldbc_repeat_warm_path(capsys, monkeypatch):
    # Pin the default re-plan threshold: the always-replan stress leg
    # rebuilds plans on purpose, which would falsify plan_builds=1.
    monkeypatch.delenv("REPRO_REPLAN_THRESHOLD", raising=False)
    exit_code = main(
        ["ldbc", "--query", "sq1", "--scale", "40", "--repeat", "3", "--explain"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "warm session path (3 runs)" in captured.out
    assert "run 1 (cold)" in captured.out
    assert "run 3 (warm)" in captured.out
    # The whole point of the session: one ingest, one plan build, no re-plans.
    assert "ingests=1 plan_builds=1 replans=0" in captured.out
    assert "datalog plan report" in captured.out


def test_cli_rejects_bad_parameter_syntax(schema_and_query_files):
    schema_path, query_path = schema_and_query_files
    with pytest.raises(SystemExit):
        main(
            [
                "compile",
                "--schema",
                schema_path,
                "--cypher",
                query_path,
                "--param",
                "nonsense",
            ]
        )
