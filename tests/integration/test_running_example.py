"""Integration test reproducing the paper's running example (Figures 2-4).

These assertions check the *artifacts* of every pipeline stage against the
structure shown in the paper's figures: the DL-Schema of Figure 2b, the PGIR
of Figure 3b, the DLIR/Datalog of Figures 3c/3d, the SQL of Figure 3e and the
optimized single-rule program of Figure 4b.
"""

from tests.conftest import PAPER_QUERY


def test_figure2_schema_translation(paper_mapping):
    schema = paper_mapping.dl_schema
    assert str(schema.get("Person")) == "Person(id:number, firstName:symbol, locationIP:symbol)"
    assert str(schema.get("City")) == "City(id:number, name:symbol)"
    assert (
        str(schema.get("Person_IS_LOCATED_IN_City"))
        == "Person_IS_LOCATED_IN_City(id1:number, id2:number, id:number)"
    )


def test_figure3b_pgir(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    pgir_text = compiled.pgir_text()
    assert "MATCH" in pgir_text
    assert "(n:Person)-[x1:IS_LOCATED_IN]->(p:City)" in pgir_text
    assert "(n.id = 42)" in pgir_text
    assert "RETURN DISTINCT" in pgir_text
    assert "p.id AS cityId" in pgir_text


def test_figure3c_dlir_rules(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    program = compiled.program(optimized=False)
    rules = {rule.head.relation: str(rule) for rule in program.rules}
    assert set(rules) == {"Match1", "Where1", "Return"}
    assert "Person_IS_LOCATED_IN_City(n, p, x1)" in rules["Match1"]
    assert "n = 42" in rules["Where1"]
    assert "p = cityId" in rules["Return"]


def test_figure3d_datalog_text(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    text = compiled.datalog_text(optimized=False)
    assert ".decl Match1(n:number, p:number, x1:number)" in text
    assert ".decl Return(firstName:symbol, cityId:number)" in text
    assert ".output Return" in text


def test_figure3e_sql_text(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    sql = compiled.sql_text(optimized=False)
    # Three CTEs corresponding to the paper's V1, V2, V3.
    assert sql.count(" AS (") == 3
    assert "SELECT DISTINCT" in sql
    assert "WHERE" in sql


def test_figure4a_inlining(paper_raqlet, paper_mapping):
    from repro.optimize import InlineRules

    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    inlined = InlineRules().run(compiled.program(optimized=False))
    return_rule = inlined.rules_for("Return")[0]
    # After inlining, Return no longer references the intermediate views.
    assert "Where1" not in return_rule.body_relations()
    assert "Match1" not in return_rule.body_relations()
    assert "Person_IS_LOCATED_IN_City" in return_rule.body_relations()


def test_figure4b_dead_rule_elimination(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    optimized = compiled.program(optimized=True)
    # The fully optimized program is the single Return rule of Figure 4b.
    assert [rule.head.relation for rule in optimized.rules] == ["Return"]
    assert compiled.optimization_trace is not None
    assert compiled.optimization_trace.total_rule_reduction() >= 2


def test_static_analysis_of_running_example(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    summary = compiled.analysis.summary()
    assert summary == {
        "stratifiable": True,
        "strata": 1,
        "has_recursion": False,
        "linear_recursion": True,
        "mutual_recursion": False,
        "monotonic": True,
        "may_not_terminate": False,
        "safe": True,
        "warnings": [],
    }


def test_execution_result_matches_expected(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    result = paper_raqlet.run_on_datalog_engine(compiled, paper_facts)
    assert result.columns == ["firstName", "cityId"]
    assert result.rows == [("Ada", 1)]
