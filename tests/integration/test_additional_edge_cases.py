"""Additional edge-case coverage across the pipeline and the engines."""

import pytest

from repro import Raqlet
from repro.cli import main
from repro.common.errors import ExecutionError, TranslationError

from tests.conftest import GRAPH_SCHEMA_TEXT, PAPER_FACTS, PAPER_SCHEMA_TEXT


# -- compilation edge cases -------------------------------------------------------


def test_query_on_unknown_label_fails_cleanly(paper_raqlet):
    with pytest.raises(Exception) as excinfo:
        paper_raqlet.compile_cypher("MATCH (f:Forum) RETURN f.id AS id")
    assert "Forum" in str(excinfo.value)


def test_query_on_unknown_edge_label_fails_cleanly(paper_raqlet):
    with pytest.raises(Exception) as excinfo:
        paper_raqlet.compile_cypher(
            "MATCH (a:Person)-[:WORKS_AT]->(b:City) RETURN a.id AS id"
        )
    assert "WORKS_AT" in str(excinfo.value)


def test_unknown_property_fails_at_translation(paper_raqlet):
    with pytest.raises(Exception):
        paper_raqlet.compile_cypher("MATCH (a:Person) RETURN a.salary AS salary")


def test_query_without_labels_uses_edge_type_inference(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (a)-[:IS_LOCATED_IN]->(b) RETURN a.id AS personId, b.id AS cityId"
    )
    result = paper_raqlet.run_on_datalog_engine(compiled, paper_facts)
    assert result.row_set() == {(42, 1), (43, 2), (44, 1)}


def test_self_join_query_two_people_in_same_city(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(
        """
        MATCH (a:Person)-[:IS_LOCATED_IN]->(c:City)<-[:IS_LOCATED_IN]-(b:Person)
        WHERE a.id < b.id
        RETURN a.id AS first, b.id AS second
        """
    )
    result = paper_raqlet.run_on_datalog_engine(compiled, paper_facts)
    assert result.row_set() == {(42, 44)}


def test_empty_result_is_consistent_across_engines(paper_raqlet, paper_facts):
    from repro.engines.graph import facts_to_property_graph
    from repro.engines.relational import Database

    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person {id: 999})-[:IS_LOCATED_IN]->(p:City) RETURN p.id AS cityId"
    )
    database = Database()
    for relation in paper_raqlet.dl_schema.edb_relations():
        database.create_table(relation.name, relation.column_names())
        database.insert_many(relation.name, paper_facts.get(relation.name, []))
    graph = facts_to_property_graph(paper_facts, paper_raqlet.mapping)
    datalog_result = paper_raqlet.run_on_datalog_engine(compiled, paper_facts)
    relational_result = paper_raqlet.run_on_relational_engine(compiled, database)
    graph_result = paper_raqlet.run_on_graph_engine(compiled, graph)
    assert len(datalog_result) == 0
    assert datalog_result.same_rows(relational_result)
    assert datalog_result.same_rows(graph_result)


def test_running_on_empty_dataset(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(p:City) RETURN p.id AS cityId"
    )
    result = paper_raqlet.run_on_datalog_engine(compiled, {})
    assert len(result) == 0


def test_string_comparison_filters(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person) WHERE n.firstName = 'Alan' RETURN n.id AS id"
    )
    result = paper_raqlet.run_on_datalog_engine(compiled, paper_facts)
    assert result.row_set() == {(43,)}


def test_with_chaining_filters_aggregates(snb_raqlet, snb_data):
    compiled = snb_raqlet.compile_cypher(
        """
        MATCH (p:Person)-[:IS_LOCATED_IN]->(c:City)
        WITH c, count(p) AS population
        WHERE population > 1
        RETURN c.id AS cityId, population
        """
    )
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    sqlite_result = snb_raqlet.run_on_sqlite(compiled, snb_data.sqlite_executor())
    assert datalog_result.same_rows(sqlite_result)
    assert all(row[1] > 1 for row in datalog_result)
    assert len(datalog_result) > 0


def test_distinct_count_aggregate_across_engines(snb_raqlet, snb_data):
    compiled = snb_raqlet.compile_cypher(
        """
        MATCH (p:Person {id: $personId})-[:KNOWS]-(f:Person)<-[:HAS_CREATOR]-(m:Message)
        RETURN count(DISTINCT f) AS friendCount
        """,
        {"personId": snb_data.dataset.default_person_id()},
    )
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    graph_result = snb_raqlet.run_on_graph_engine(compiled, snb_data.property_graph())
    assert datalog_result.same_rows(graph_result)


# -- engine robustness --------------------------------------------------------------


def test_relational_engine_missing_table_raises(paper_raqlet):
    from repro.engines.relational import Database, RelationalEngine

    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person) RETURN n.id AS id"
    )
    with pytest.raises(ExecutionError):
        RelationalEngine(Database()).execute(compiled.sqir())


def test_datalog_engine_rejects_unsafe_rule_at_runtime():
    from repro.dlir.builder import ProgramBuilder
    from repro.dlir.core import Comparison, Var
    from repro.engines.datalog import DatalogEngine

    builder = ProgramBuilder()
    builder.edb("r", [("a", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("q", ["x"], [("r", ["x"])], comparisons=[("<", "y", 3)])
    builder.output("q")
    engine = DatalogEngine(builder.build(), {"r": [(1,)]})
    with pytest.raises(ExecutionError):
        engine.run()


# -- dataset / multiple schema instances --------------------------------------------


def test_two_raqlet_instances_do_not_share_state():
    first = Raqlet(PAPER_SCHEMA_TEXT)
    second = Raqlet(GRAPH_SCHEMA_TEXT)
    assert "Person" in first.dl_schema
    assert "Person" not in second.dl_schema
    assert "Node" in second.dl_schema


def test_cli_compile_sql_input(tmp_path, capsys):
    schema_path = tmp_path / "schema.pgs"
    schema_path.write_text(PAPER_SCHEMA_TEXT, encoding="utf-8")
    sql_path = tmp_path / "query.sql"
    sql_path.write_text(
        "SELECT p.firstName AS firstName FROM Person AS p WHERE p.id = 42",
        encoding="utf-8",
    )
    exit_code = main(
        ["compile", "--schema", str(schema_path), "--sql", str(sql_path), "--emit", "datalog"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert ".decl Result" in captured.out


def test_cli_ldbc_reach_query(capsys):
    exit_code = main(["ldbc", "--query", "reach", "--scale", "30"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "engines agree: True" in captured.out
