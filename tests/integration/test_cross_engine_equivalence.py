"""Cross-paradigm equivalence: every engine must return the same rows.

This is the core "semantic preservation" claim of the paper: a query written
in Cypher, translated to Datalog and SQL, must compute the same answer on a
deductive engine, a relational engine, a real SQL system (SQLite) and the
graph-native interpreter -- with and without optimization.
"""

import pytest

from repro.ldbc import complex_query_2, short_query_1
from repro.ldbc.queries import (
    friend_reachability,
    friends_of_friends,
    shortest_path_query,
)


def _compile_and_run_everywhere(raqlet, data, spec, optimized):
    compiled = raqlet.compile_cypher(spec["query"], spec["parameters"])
    results = raqlet.run_everywhere(
        compiled,
        data.facts,
        data.relational_database(),
        data.property_graph(),
        data.sqlite_executor(),
        optimized=optimized,
    )
    return compiled, results


@pytest.mark.parametrize("optimized", [False, True], ids=["unoptimized", "optimized"])
def test_short_query_1_equivalence(snb_raqlet, snb_data, optimized):
    spec = short_query_1(snb_data.dataset.default_person_id())
    compiled, results = _compile_and_run_everywhere(snb_raqlet, snb_data, spec, optimized)
    assert set(results) == {"datalog", "relational", "sqlite", "graph"}
    reference = results["datalog"]
    assert len(reference) == 1
    assert all(result.same_rows(reference) for result in results.values())
    assert compiled.backend_problems("sqlite") == []


@pytest.mark.parametrize("optimized", [False, True], ids=["unoptimized", "optimized"])
def test_complex_query_2_equivalence(snb_raqlet, snb_data, optimized):
    spec = complex_query_2(
        snb_data.dataset.default_person_id(), snb_data.dataset.median_message_date()
    )
    _, results = _compile_and_run_everywhere(snb_raqlet, snb_data, spec, optimized)
    reference = results["datalog"]
    assert len(reference) > 0
    assert all(result.same_rows(reference) for result in results.values())


@pytest.mark.parametrize("optimized", [False, True], ids=["unoptimized", "optimized"])
def test_friends_of_friends_equivalence(snb_raqlet, snb_data, optimized):
    spec = friends_of_friends(snb_data.dataset.default_person_id())
    _, results = _compile_and_run_everywhere(snb_raqlet, snb_data, spec, optimized)
    reference = results["datalog"]
    assert len(reference) > 0
    assert all(result.same_rows(reference) for result in results.values())


@pytest.mark.parametrize("optimized", [False, True], ids=["unoptimized", "optimized"])
def test_friend_reachability_equivalence(snb_raqlet, snb_data, optimized):
    spec = friend_reachability(snb_data.dataset.default_person_id())
    compiled, results = _compile_and_run_everywhere(snb_raqlet, snb_data, spec, optimized)
    reference = results["datalog"]
    assert len(reference) > 0
    assert all(result.same_rows(reference) for result in results.values())
    # Reachability is recursive, so the generated SQL must use WITH RECURSIVE.
    assert "WITH RECURSIVE" in compiled.sql_text(optimized=optimized)


def test_shortest_path_runs_on_datalog_and_graph_only(snb_raqlet, snb_data):
    person_ids = snb_data.dataset.person_ids
    spec = shortest_path_query(person_ids[0], person_ids[-1])
    compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
    problems = compiled.backend_problems("sqlite")
    assert problems  # min-subsumption is not expressible in SQL
    datalog_result = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts)
    graph_result = snb_raqlet.run_on_graph_engine(compiled, snb_data.property_graph())
    assert datalog_result.same_rows(graph_result)
    assert len(datalog_result) == 1


def test_run_everywhere_skips_unsupported_backends(snb_raqlet, snb_data):
    person_ids = snb_data.dataset.person_ids
    spec = shortest_path_query(person_ids[0], person_ids[1])
    compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
    results = snb_raqlet.run_everywhere(
        compiled,
        snb_data.facts,
        snb_data.relational_database(),
        snb_data.property_graph(),
        snb_data.sqlite_executor(),
    )
    assert "relational" not in results
    assert "sqlite" not in results
    assert {"datalog", "graph"} <= set(results)


def test_optimized_and_unoptimized_agree_on_all_ldbc_queries(snb_raqlet, snb_data):
    person_id = snb_data.dataset.default_person_id()
    specs = [
        short_query_1(person_id),
        complex_query_2(person_id, snb_data.dataset.median_message_date()),
        friends_of_friends(person_id),
        friend_reachability(person_id),
    ]
    for spec in specs:
        compiled = snb_raqlet.compile_cypher(spec["query"], spec["parameters"])
        unopt = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts, optimized=False)
        opt = snb_raqlet.run_on_datalog_engine(compiled, snb_data.facts, optimized=True)
        assert unopt.same_rows(opt)
