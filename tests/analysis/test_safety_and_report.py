"""Tests for safety analysis, the combined report and backend capability checks."""

from repro.analysis.report import BACKEND_CAPABILITIES, analyze_program, check_backend_support
from repro.analysis.safety import analyze_rule_safety, analyze_safety
from repro.dlir.builder import ProgramBuilder, atom
from repro.dlir.core import Comparison, Const, Rule, Var


def test_safe_rule_has_no_missing_variables():
    rule = Rule(
        head=atom("q", ["x"]),
        body=(atom("r", ["x", "y"]), Comparison("<", Var("y"), Const(5))),
    )
    assert analyze_rule_safety(rule) == []


def test_unbound_head_variable_is_unsafe():
    rule = Rule(head=atom("q", ["x", "z"]), body=(atom("r", ["x", "y"]),))
    assert analyze_rule_safety(rule) == ["z"]


def test_variable_bound_through_equality_is_safe():
    rule = Rule(
        head=atom("q", ["alias"]),
        body=(atom("r", ["x", "y"]), Comparison("=", Var("x"), Var("alias"))),
    )
    assert analyze_rule_safety(rule) == []


def test_variable_bound_to_constant_is_safe():
    rule = Rule(
        head=atom("q", ["c"]),
        body=(atom("r", ["x", "_"]), Comparison("=", Var("c"), Const(7))),
    )
    assert analyze_rule_safety(rule) == []


def test_negated_atom_variables_must_be_bound():
    from repro.dlir.core import NegatedAtom

    rule = Rule(
        head=atom("q", ["x"]),
        body=(atom("r", ["x", "_"]), NegatedAtom(atom("s", ["x", "w"]))),
    )
    assert analyze_rule_safety(rule) == ["w"]


def test_inequality_operands_must_be_bound():
    rule = Rule(head=atom("q", ["x"]), body=(atom("r", ["x", "_"]), Comparison("<", Var("u"), Const(3))))
    assert analyze_rule_safety(rule) == ["u"]


def test_program_safety_report():
    builder = ProgramBuilder()
    builder.edb("r", [("a", "number"), ("b", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("q", ["x"], [("r", ["x", "_"])])
    builder.output("q")
    result = analyze_safety(builder.build())
    assert result.is_safe
    assert result.unsafe_rules == []


def test_report_summary_for_paper_query(paper_raqlet):
    from tests.conftest import PAPER_QUERY

    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    summary = compiled.analysis.summary()
    assert summary["stratifiable"] is True
    assert summary["has_recursion"] is False
    assert summary["safe"] is True
    assert "static analysis report" in compiled.analysis.to_text()


def test_backend_capabilities_table_is_complete():
    for name in ("souffle", "sql", "sqlite", "relational-engine", "graph-engine", "datalog-engine"):
        assert name in BACKEND_CAPABILITIES


def test_sql_backend_rejects_nonlinear_recursion():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    report = analyze_program(builder.build())
    problems = check_backend_support(report, BACKEND_CAPABILITIES["sql"])
    assert any("linear" in problem for problem in problems)
    assert check_backend_support(report, BACKEND_CAPABILITIES["souffle"]) == []


def test_sql_backend_rejects_mutual_recursion():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("even")
    report = analyze_program(builder.build())
    problems = check_backend_support(report, BACKEND_CAPABILITIES["sql"])
    assert any("mutual" in problem for problem in problems)


def test_graph_backend_rejects_negation():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("sink", [("id", "number")])
    builder.rule("sink", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])])
    builder.output("sink")
    report = analyze_program(builder.build())
    problems = check_backend_support(report, BACKEND_CAPABILITIES["graph-engine"])
    assert any("negation" in problem for problem in problems)


def test_linear_tc_supported_by_sql():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    report = analyze_program(builder.build())
    assert check_backend_support(report, BACKEND_CAPABILITIES["sql"]) == []
