"""Tests for linearity, mutual recursion, monotonicity and termination analyses."""

from repro.analysis.monotonicity import analyze_monotonicity
from repro.analysis.recursion import (
    analyze_linearity,
    analyze_mutual_recursion,
    recursion_summary,
    recursive_relations,
)
from repro.analysis.termination import analyze_termination
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, ArithExpr, Atom, Const, Rule, Var


def _linear_tc():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    return builder.build()


def _nonlinear_tc():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    return builder.build()


def _mutual():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("even")
    return builder.build()


def test_recursive_relations():
    assert recursive_relations(_linear_tc()) == {"tc"}
    assert recursive_relations(_mutual()) == {"even", "odd"}


def test_linear_recursion_detected():
    result = analyze_linearity(_linear_tc())
    assert result.has_recursion
    assert result.is_linear
    assert result.recursive_rule_count == 1
    assert result.non_linear_rules == []


def test_nonlinear_recursion_detected():
    result = analyze_linearity(_nonlinear_tc())
    assert result.has_recursion
    assert not result.is_linear
    assert len(result.non_linear_rules) == 1


def test_non_recursive_program_is_trivially_linear(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(p:City) RETURN n.id AS id", optimize=False
    )
    result = analyze_linearity(compiled.program(optimized=False))
    assert not result.has_recursion
    assert result.is_linear


def test_mutual_recursion_detected():
    result = analyze_mutual_recursion(_mutual())
    assert result.has_mutual_recursion
    assert frozenset({"even", "odd"}) in result.groups
    assert result.self_recursive == []


def test_self_recursion_is_not_mutual():
    result = analyze_mutual_recursion(_linear_tc())
    assert not result.has_mutual_recursion
    assert result.self_recursive == ["tc"]


def test_recursion_summary_keys():
    summary = recursion_summary(_mutual())
    assert summary["has_recursion"]
    assert summary["has_mutual_recursion"]
    assert set(summary["recursive_relations"]) == {"even", "odd"}


def test_monotonic_positive_program():
    result = analyze_monotonicity(_linear_tc())
    assert result.is_monotonic
    assert not result.uses_negation
    assert not result.uses_aggregation


def test_negation_inside_recursion_is_non_monotonic():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("win", [("a", "number")])
    builder.rule("win", ["x"], [("edge", ["x", "y"])], negated=[("win", ["y"])])
    builder.output("win")
    result = analyze_monotonicity(builder.build())
    assert not result.is_monotonic
    assert result.uses_negation
    assert result.non_monotonic_reasons


def test_negation_outside_recursion_is_monotonic_overall():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("unlinked", [("id", "number")])
    builder.rule("unlinked", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])])
    builder.output("unlinked")
    result = analyze_monotonicity(builder.build())
    assert result.is_monotonic  # negation is not inside a recursive component
    assert result.uses_negation


def test_subsumption_counted_as_lattice_monotone(snb_raqlet):
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        optimize=False,
    )
    result = analyze_monotonicity(compiled.program(optimized=False))
    assert result.lattice_monotone_rules >= 2


def test_termination_flags_unbounded_arithmetic():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("dist", [("a", "number"), ("d", "number")])
    program = builder.build(validate=False)
    program.add_rule(
        Rule(head=Atom("dist", (Var("x"), Const(0))), body=(Atom("edge", (Var("x"), Var("_y"))),))
    )
    program.add_rule(
        Rule(
            head=Atom("dist", (Var("y"), ArithExpr("+", Var("d"), Const(1)))),
            body=(Atom("dist", (Var("x"), Var("d"))), Atom("edge", (Var("x"), Var("y")))),
        )
    )
    program.add_output("dist")
    result = analyze_termination(program)
    assert result.may_not_terminate
    assert result.warnings


def test_termination_not_flagged_with_subsumption(snb_raqlet):
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        optimize=False,
    )
    result = analyze_termination(compiled.program(optimized=False))
    assert not result.may_not_terminate


def test_termination_plain_tc_is_fine():
    result = analyze_termination(_linear_tc())
    assert not result.may_not_terminate
