"""Tests for the predicate dependency graph."""

from repro.analysis.dependencies import build_dependency_graph
from repro.dlir.builder import ProgramBuilder


def _tc_program():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    return builder.build()


def _mutual_program():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("even")
    return builder.build()


def test_edges_point_from_body_to_head():
    graph = build_dependency_graph(_tc_program())
    assert graph.graph.has_edge("edge", "tc")
    assert graph.graph.has_edge("tc", "tc")
    assert not graph.graph.has_edge("tc", "edge")


def test_depends_on_and_dependents():
    graph = build_dependency_graph(_tc_program())
    assert graph.depends_on("tc") == {"edge", "tc"}
    assert graph.dependents_of("edge") == {"tc"}
    assert graph.depends_on("edge") == set()
    assert graph.depends_on("missing") == set()


def test_self_recursion_detected():
    graph = build_dependency_graph(_tc_program())
    assert graph.is_recursive("tc")
    assert not graph.is_recursive("edge")
    components = graph.recursive_components()
    assert components == [frozenset({"tc"})]


def test_mutual_recursion_single_component():
    graph = build_dependency_graph(_mutual_program())
    assert graph.same_component("even", "odd")
    assert graph.is_recursive("even") and graph.is_recursive("odd")
    assert frozenset({"even", "odd"}) in graph.recursive_components()


def test_condensation_order_is_topological():
    graph = build_dependency_graph(_tc_program())
    order = graph.condensation_order()
    positions = {relation: index for index, component in enumerate(order) for relation in component}
    assert positions["edge"] < positions["tc"]


def test_negation_flag_on_edges():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("sink", [("id", "number")])
    builder.rule("sink", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])])
    builder.output("sink")
    graph = build_dependency_graph(builder.build())
    negated_edges = [edge for edge in graph.edges if edge.negated]
    assert len(negated_edges) == 1
    assert negated_edges[0].source == "edge"
    assert negated_edges[0].target == "sink"


def test_aggregation_flag_on_edges():
    from repro.dlir.core import Aggregation, Var

    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("deg", [("a", "number"), ("c", "number")])
    builder.rule(
        "deg",
        ["x", "c"],
        [("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.output("deg")
    graph = build_dependency_graph(builder.build())
    assert any(edge.through_aggregation for edge in graph.edges)
