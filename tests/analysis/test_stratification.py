"""Tests for stratification analysis."""

import pytest

from repro.analysis.stratification import analyze_stratification, stratify
from repro.common.errors import AnalysisError
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var


def test_positive_program_is_single_stratum():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    result = analyze_stratification(builder.build())
    assert result.is_stratifiable
    assert result.stratum_count() == 1


def test_negation_outside_recursion_adds_stratum():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("reach", [("a", "number"), ("b", "number")])
    builder.idb("unreach", [("a", "number"), ("b", "number")])
    builder.rule("reach", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("reach", ["x", "y"], [("reach", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule(
        "unreach", ["x", "y"], [("node", ["x"]), ("node", ["y"])], negated=[("reach", ["x", "y"])]
    )
    builder.output("unreach")
    result = analyze_stratification(builder.build())
    assert result.is_stratifiable
    assert result.stratum_of["unreach"] == result.stratum_of["reach"] + 1


def test_negation_in_cycle_is_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("p", [("a", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("p", ["x"], [("edge", ["x", "_"])], negated=[("q", ["x"])])
    builder.rule("q", ["x"], [("p", ["x"])])
    builder.output("p")
    result = analyze_stratification(builder.build())
    assert not result.is_stratifiable
    assert result.violations
    with pytest.raises(AnalysisError):
        stratify(builder.build())


def test_aggregation_in_cycle_is_rejected():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("p", [("a", "number"), ("c", "number")])
    builder.rule(
        "p",
        ["x", "c"],
        [("p", ["x", "y"]), ("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.rule("p", ["x", 0], [("edge", ["x", "_"])])
    builder.output("p")
    result = analyze_stratification(builder.build())
    assert not result.is_stratifiable


def test_aggregation_outside_recursion_is_fine():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("cnt", [("a", "number"), ("c", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule(
        "cnt",
        ["x", "c"],
        [("tc", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.output("cnt")
    result = analyze_stratification(builder.build())
    assert result.is_stratifiable
    assert result.stratum_of["cnt"] > result.stratum_of["tc"]


def test_strata_lists_cover_all_relations():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.output("tc")
    result = analyze_stratification(builder.build())
    flattened = [relation for stratum in result.strata for relation in stratum]
    assert set(flattened) == set(result.stratum_of)


def test_subsumption_consumers_live_in_higher_stratum(snb_raqlet):
    """Relations reading a min-subsumption relation must come later."""
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        optimize=False,
    )
    program = compiled.program(optimized=False)
    result = analyze_stratification(program)
    assert result.is_stratifiable
    assert result.stratum_of["Match1"] > result.stratum_of["ShortestPath1"]
