"""Property-based tests for parsers, schema translation and name generation."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.names import NameGenerator
from repro.frontend.cypher import parse_cypher
from repro.frontend.cypher.ast import Literal
from repro.schema.pg_schema import PGSchema, normalize_edge_label
from repro.schema.translate import pg_to_dl_schema

_SETTINGS = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

_identifier = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
_label = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=1).flatmap(
    lambda first: st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=7).map(
        lambda rest: first + rest
    )
)


@given(st.lists(_identifier, min_size=1, max_size=10, unique=True))
@_SETTINGS
def test_name_generator_never_collides_with_reserved(reserved):
    names = NameGenerator(reserved=reserved)
    generated = [names.fresh(prefix) for prefix in reserved for _ in range(2)]
    assert len(set(generated)) == len(generated)
    assert not set(generated) & set(reserved)


@given(st.integers(min_value=-10**9, max_value=10**9))
@_SETTINGS
def test_cypher_integer_literals_round_trip(value):
    query = parse_cypher(f"RETURN {value} AS v")
    expression = query.return_clause().items[0].expression
    assert isinstance(expression, Literal)
    assert expression.value == value


@given(st.text(alphabet=string.ascii_letters + string.digits + " _-", max_size=20))
@_SETTINGS
def test_cypher_string_literals_round_trip(value):
    query = parse_cypher(f"RETURN '{value}' AS v")
    expression = query.return_clause().items[0].expression
    assert expression.value == value


@given(st.lists(_label, min_size=1, max_size=6, unique=True))
@_SETTINGS
def test_schema_translation_creates_one_relation_per_node_type(labels):
    schema = PGSchema.build(
        nodes=[(label, [("id", "INT"), ("name", "STRING")]) for label in labels],
        edges=[],
    )
    mapping = pg_to_dl_schema(schema)
    assert len(mapping.dl_schema) == len(labels)
    for label in labels:
        relation = mapping.node_relation(label)
        assert relation.column_names()[0] == "id"


@given(_label, _label)
@_SETTINGS
def test_edge_relation_names_are_deterministic(source, target):
    schema = PGSchema.build(
        nodes=[(source, [("id", "INT")])] + ([(target, [("id", "INT")])] if target != source else []),
        edges=[("rel", source, target, [])],
    )
    first = pg_to_dl_schema(schema)
    second = pg_to_dl_schema(schema)
    assert list(first.dl_schema.relations) == list(second.dl_schema.relations)
    assert f"{source}_REL_{target}" in first.dl_schema


@given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=15))
@_SETTINGS
def test_normalize_edge_label_is_idempotent(label):
    once = normalize_edge_label(label)
    twice = normalize_edge_label(once)
    assert once == twice
    assert once.upper() == once


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
@_SETTINGS
def test_compiled_queries_are_deterministic(edges):
    """Compiling the same query twice yields byte-identical artifacts."""
    from repro import Raqlet

    raqlet = Raqlet(
        """
        CREATE GRAPH {
          (nodeType : Node { id INT, name STRING }),
          (:nodeType)-[linkType : linksTo { id INT }]->(:nodeType)
        }
        """
    )
    query = "MATCH (a:Node {id: 0})-[:LINKS_TO*]->(b:Node) RETURN b.id AS target"
    first = raqlet.compile_cypher(query)
    second = raqlet.compile_cypher(query)
    assert first.datalog_text() == second.datalog_text()
    assert first.sql_text() == second.sql_text()
    facts = {
        "Node": [(i, f"n{i}") for i in range(6)],
        "Node_LINKS_TO_Node": [(a, b, index) for index, (a, b) in enumerate(edges) if a != b],
    }
    result_first = raqlet.run_on_datalog_engine(first, facts)
    result_second = raqlet.run_on_datalog_engine(second, facts)
    assert result_first.same_rows(result_second)
