"""Property-based tests (hypothesis) for the core evaluation invariants.

The key invariants checked on randomly generated graphs:

* the Datalog engine's transitive closure equals networkx's transitive
  closure (ground truth),
* every execution path (Datalog engine, relational engine, SQLite) computes
  the same relation for the same DLIR program,
* the optimizer never changes query results,
* linearization and magic sets preserve the transitive closure,
* min-subsumption shortest distances equal BFS shortest path lengths.
"""

from typing import List, Tuple

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dlir.builder import ProgramBuilder
from repro.engines.datalog import evaluate_program
from repro.engines.relational import Database, execute_sqir
from repro.engines.sqlite_exec import run_sql_on_sqlite
from repro.backends import sqir_to_sql
from repro.optimize import optimize_program
from repro.optimize.linearize import LinearizeRecursion
from repro.optimize.magic_sets import MagicSets
from repro.sqir import translate_dlir_to_sqir

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def edge_lists(draw, max_nodes=8, max_edges=16) -> List[Tuple[int, int]]:
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),
                st.integers(min_value=0, max_value=node_count - 1),
            ),
            max_size=max_edges,
        )
    )
    return [(a, b) for a, b in edges if a != b]


def _tc_program(nonlinear=False):
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    if nonlinear:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    else:
        builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    return builder.build()


def _expected_tc(edges):
    """Pairs (u, v) connected by a path of length >= 1 (walk semantics)."""
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    closure = set()
    for source in graph.nodes:
        for successor in graph.successors(source):
            closure.add((source, successor))
            for target in nx.descendants(graph, successor):
                closure.add((source, target))
            closure.add((source, successor))
    return closure


@given(edge_lists())
@_SETTINGS
def test_datalog_tc_matches_networkx(edges):
    result = evaluate_program(_tc_program(), {"edge": edges}, relation="tc")
    assert result.row_set() == _expected_tc(edges)


@given(edge_lists())
@_SETTINGS
def test_nonlinear_and_linear_tc_agree(edges):
    linear = evaluate_program(_tc_program(False), {"edge": edges}, relation="tc")
    nonlinear = evaluate_program(_tc_program(True), {"edge": edges}, relation="tc")
    assert linear.same_rows(nonlinear)


@given(edge_lists())
@_SETTINGS
def test_relational_engine_matches_datalog_engine(edges):
    program = _tc_program()
    datalog_result = evaluate_program(program, {"edge": edges}, relation="tc")
    database = Database()
    database.create_table("edge", ["a", "b"])
    database.insert_many("edge", edges)
    relational_result = execute_sqir(translate_dlir_to_sqir(program), database)
    assert datalog_result.same_rows(relational_result)


@given(edge_lists(max_nodes=6, max_edges=10))
@_SETTINGS
def test_sqlite_matches_datalog_engine(edges):
    program = _tc_program()
    datalog_result = evaluate_program(program, {"edge": edges}, relation="tc")
    sql = sqir_to_sql(translate_dlir_to_sqir(program), dialect="sqlite")
    sqlite_result = run_sql_on_sqlite(program.schema, {"edge": edges}, sql)
    assert datalog_result.same_rows(sqlite_result)


@given(edge_lists(), st.integers(min_value=0, max_value=7))
@_SETTINGS
def test_magic_sets_preserves_bound_queries(edges, source):
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("query", [("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("query", ["y"], [("tc", [source, "y"])])
    builder.output("query")
    program = builder.build()
    transformed = MagicSets().run(program)
    original = evaluate_program(program, {"edge": edges}, relation="query")
    magic = evaluate_program(transformed, {"edge": edges}, relation="query")
    assert original.same_rows(magic)


@given(edge_lists())
@_SETTINGS
def test_linearization_preserves_tc(edges):
    program = _tc_program(nonlinear=True)
    linearized = LinearizeRecursion().run(program)
    original = evaluate_program(program, {"edge": edges}, relation="tc")
    rewritten = evaluate_program(linearized, {"edge": edges}, relation="tc")
    assert original.same_rows(rewritten)


@given(edge_lists())
@_SETTINGS
def test_default_pipeline_preserves_tc(edges):
    program = _tc_program(nonlinear=False)
    optimized, _trace = optimize_program(program)
    original = evaluate_program(program, {"edge": edges}, relation="tc")
    rewritten = evaluate_program(optimized, {"edge": edges}, relation="tc")
    assert original.same_rows(rewritten)


@given(edge_lists())
@_SETTINGS
def test_min_subsumption_matches_bfs_shortest_paths(edges):
    from repro.dlir.core import ArithExpr, Atom, Const, Rule, Var

    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("dist", [("a", "number"), ("b", "number"), ("d", "number")])
    program = builder.build(validate=False)
    program.add_rule(
        Rule(
            head=Atom("dist", (Var("a"), Var("b"), Const(1))),
            body=(Atom("edge", (Var("a"), Var("b"))),),
            subsume_min=2,
        )
    )
    program.add_rule(
        Rule(
            head=Atom("dist", (Var("a"), Var("b"), ArithExpr("+", Var("d"), Const(1)))),
            body=(
                Atom("dist", (Var("a"), Var("z"), Var("d"))),
                Atom("edge", (Var("z"), Var("b"))),
            ),
            subsume_min=2,
        )
    )
    program.add_output("dist")
    result = evaluate_program(program, {"edge": edges}, relation="dist")
    derived = {(row[0], row[1]): row[2] for row in result}

    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    expected = {}
    for source in graph.nodes:
        lengths = nx.single_source_shortest_path_length(graph, source)
        for target, length in lengths.items():
            if length > 0:
                expected[(source, target)] = length
        # Self-distances via cycles: networkx reports 0 for the source itself,
        # but Datalog derives the length of the shortest non-empty cycle.
        cycle_lengths = [
            lengths[predecessor] + 1
            for predecessor in graph.predecessors(source)
            if predecessor in lengths
        ]
        if cycle_lengths:
            expected[(source, source)] = min(cycle_lengths)
    assert derived == expected
