"""Tests for the Cypher parser."""

import pytest

from repro.common.errors import ParseError
from repro.frontend.cypher import (
    Aggregate,
    BinaryOp,
    Literal,
    MatchClause,
    Parameter,
    PropertyAccess,
    RelDirection,
    ReturnClause,
    UnwindClause,
    Variable,
    WhereClause,
    WithClause,
    parse_cypher,
)

from tests.conftest import PAPER_QUERY


def test_parses_paper_running_example():
    query = parse_cypher(PAPER_QUERY)
    match = query.clauses[0]
    assert isinstance(match, MatchClause)
    assert len(match.patterns) == 1
    pattern = match.patterns[0]
    assert [node.labels for node in pattern.nodes] == [("Person",), ("City",)]
    assert pattern.relationships[0].types == ("IS_LOCATED_IN",)
    assert pattern.relationships[0].direction is RelDirection.OUTGOING
    returns = query.return_clause()
    assert returns.distinct
    assert [item.alias for item in returns.items] == ["firstName", "cityId"]


def test_inline_property_map_parsed_as_expressions():
    query = parse_cypher("MATCH (n:Person {id: 42, name: 'Ada'}) RETURN n")
    node = query.clauses[0].patterns[0].nodes[0]
    assert node.properties[0][0] == "id"
    assert node.properties[0][1] == Literal(42)
    assert node.properties[1][1] == Literal("Ada")


def test_anonymous_nodes_and_relationships():
    query = parse_cypher("MATCH (:Person)-[]->() RETURN 1 AS one")
    pattern = query.clauses[0].patterns[0]
    assert pattern.nodes[0].variable is None
    assert pattern.nodes[1].variable is None
    assert pattern.nodes[1].labels == ()
    assert pattern.relationships[0].types == ()


def test_relationship_directions():
    incoming = parse_cypher("MATCH (a)<-[:R]-(b) RETURN a").clauses[0]
    undirected = parse_cypher("MATCH (a)-[:R]-(b) RETURN a").clauses[0]
    assert incoming.patterns[0].relationships[0].direction is RelDirection.INCOMING
    assert undirected.patterns[0].relationships[0].direction is RelDirection.UNDIRECTED


def test_variable_length_bounds():
    star = parse_cypher("MATCH (a)-[:R*]->(b) RETURN a").clauses[0].patterns[0].relationships[0]
    exact = parse_cypher("MATCH (a)-[:R*3]->(b) RETURN a").clauses[0].patterns[0].relationships[0]
    ranged = parse_cypher("MATCH (a)-[:R*1..4]->(b) RETURN a").clauses[0].patterns[0].relationships[0]
    open_end = parse_cypher("MATCH (a)-[:R*2..]->(b) RETURN a").clauses[0].patterns[0].relationships[0]
    assert star.var_length and star.min_hops is None and star.max_hops is None
    assert exact.min_hops == exact.max_hops == 3
    assert (ranged.min_hops, ranged.max_hops) == (1, 4)
    assert (open_end.min_hops, open_end.max_hops) == (2, None)


def test_shortest_path_pattern():
    query = parse_cypher(
        "MATCH p = shortestPath((a:Person)-[:KNOWS*]-(b:Person)) RETURN length(p) AS l"
    )
    pattern = query.clauses[0].patterns[0]
    assert pattern.shortest
    assert pattern.path_variable == "p"


def test_multiple_patterns_in_one_match():
    query = parse_cypher("MATCH (a)-[:R]->(b), (b)-[:S]->(c) RETURN a")
    assert len(query.clauses[0].patterns) == 2


def test_match_with_inline_where():
    query = parse_cypher("MATCH (a:Person) WHERE a.id = 3 RETURN a")
    match = query.clauses[0]
    assert isinstance(match.where, BinaryOp)
    assert match.where.op == "="


def test_where_attaches_to_preceding_with():
    query = parse_cypher("MATCH (a:Person)\nWITH a.id AS x\nWHERE x > 2\nRETURN x")
    kinds = [type(clause) for clause in query.clauses]
    assert kinds == [MatchClause, WithClause, ReturnClause]
    with_clause = query.clauses[1]
    assert with_clause.where is not None and with_clause.where.op == ">"


def test_boolean_precedence_and_parentheses():
    query = parse_cypher("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND a.z = 3 RETURN a")
    condition = query.clauses[0].where
    assert condition.op == "OR"
    assert condition.right.op == "AND"


def test_not_and_comparison_operators():
    query = parse_cypher("MATCH (a) WHERE NOT a.x <> 5 RETURN a")
    condition = query.clauses[0].where
    assert condition.op == "NOT"
    assert condition.operand.op == "<>"


def test_in_list_expression():
    query = parse_cypher("MATCH (a) WHERE a.x IN [1, 2, 3] RETURN a")
    condition = query.clauses[0].where
    assert condition.op == "IN"
    assert len(condition.right.items) == 3


def test_parameters():
    query = parse_cypher("MATCH (n:Person {id: $personId}) RETURN n.id AS id")
    node = query.clauses[0].patterns[0].nodes[0]
    assert node.properties[0][1] == Parameter("personId")


def test_arithmetic_precedence():
    query = parse_cypher("RETURN 1 + 2 * 3 AS x")
    expression = query.return_clause().items[0].expression
    assert expression.op == "+"
    assert expression.right.op == "*"


def test_aggregates_count_star_and_distinct():
    query = parse_cypher("MATCH (a)-[:R]->(b) RETURN a, count(*) AS c, count(DISTINCT b) AS d")
    items = query.return_clause().items
    assert isinstance(items[1].expression, Aggregate)
    assert items[1].expression.argument is None
    assert items[2].expression.distinct


def test_return_item_aliases_and_defaults():
    query = parse_cypher("MATCH (a:Person) RETURN a.name, a.age AS years")
    items = query.return_clause().items
    assert items[0].alias is None
    assert items[0].output_name() == "name"
    assert items[1].output_name() == "years"


def test_order_by_skip_limit_parsed():
    query = parse_cypher(
        "MATCH (a:Person) RETURN a.name AS n ORDER BY n DESC, a.age SKIP 5 LIMIT 10"
    )
    returns = query.return_clause()
    assert returns.limit == 10
    assert returns.skip == 5
    assert returns.order_by[0].ascending is False
    assert returns.order_by[1].ascending is True


def test_with_clause_distinct_and_where():
    query = parse_cypher(
        "MATCH (a:Person) WITH DISTINCT a.city AS city WHERE city <> 'X' RETURN city"
    )
    with_clause = query.clauses[1]
    assert isinstance(with_clause, WithClause)
    assert with_clause.distinct
    assert with_clause.where is not None


def test_unwind_clause():
    query = parse_cypher("UNWIND [1,2,3] AS x RETURN x")
    assert isinstance(query.clauses[0], UnwindClause)
    assert query.clauses[0].variable == "x"


def test_optional_match_flag():
    query = parse_cypher("OPTIONAL MATCH (a:Person) RETURN a")
    assert query.clauses[0].optional


def test_query_without_return_raises():
    with pytest.raises(ValueError):
        parse_cypher("MATCH (a:Person)")


def test_empty_query_raises():
    with pytest.raises(ParseError):
        parse_cypher("   ")


def test_syntax_error_reports_position():
    with pytest.raises(ParseError) as excinfo:
        parse_cypher("MATCH (a:Person RETURN a")
    assert excinfo.value.location is not None


def test_string_predicates_parse():
    query = parse_cypher("MATCH (a) WHERE a.name STARTS WITH 'A' RETURN a")
    assert query.clauses[0].where.op == "STARTS WITH"


def test_is_null_and_is_not_null():
    query = parse_cypher("MATCH (a) WHERE a.x IS NULL AND a.y IS NOT NULL RETURN a")
    condition = query.clauses[0].where
    assert condition.left.op == "IS NULL"
    assert condition.right.op == "IS NOT NULL"


def test_ast_str_round_trips_key_fragments():
    query = parse_cypher(PAPER_QUERY)
    text = str(query)
    assert "MATCH" in text and "RETURN DISTINCT" in text
    assert "IS_LOCATED_IN" in text
