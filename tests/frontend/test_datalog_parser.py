"""Tests for the Soufflé-dialect Datalog frontend."""

import pytest

from repro.common.errors import ParseError
from repro.dlir.core import Comparison, NegatedAtom, Wildcard
from repro.frontend.datalog import parse_datalog
from repro.schema.dl_schema import DLType

TC_PROGRAM = """
.decl edge(src:number, dst:number)
.decl tc(src:number, dst:number)
.input edge
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
.output tc
"""


def test_parse_transitive_closure():
    program = parse_datalog(TC_PROGRAM)
    assert set(program.schema.relations) == {"edge", "tc"}
    assert len(program.rules) == 2
    assert program.outputs == ["tc"]
    assert program.inputs == ["edge"]


def test_declarations_capture_types():
    program = parse_datalog(".decl r(a:number, b:symbol, c:float)\n.output r\nr(1, \"x\", 2.5).")
    relation = program.schema.get("r")
    assert relation.column_types() == [DLType.NUMBER, DLType.SYMBOL, DLType.FLOAT]


def test_unsigned_is_treated_as_number():
    program = parse_datalog(".decl r(a:unsigned)\nr(1).")
    assert program.schema.get("r").column_types() == [DLType.NUMBER]


def test_idb_flag_set_for_rule_heads():
    program = parse_datalog(TC_PROGRAM)
    assert program.schema.get("edge").is_edb
    assert not program.schema.get("tc").is_edb


def test_ground_facts_are_collected():
    program = parse_datalog(
        '.decl edge(a:number, b:number)\nedge(1, 2).\nedge(2, 3).\n'
    )
    assert program.facts["edge"] == [(1, 2), (2, 3)]


def test_string_facts():
    program = parse_datalog('.decl name(id:number, n:symbol)\nname(1, "Ada").')
    assert program.facts["name"] == [(1, "Ada")]


def test_wildcards_and_comparisons():
    program = parse_datalog(
        """
        .decl person(id:number, age:number)
        .decl adult(id:number)
        adult(x) :- person(x, _), person(x, a), a >= 18.
        .output adult
        """
    )
    rule = program.rules[0]
    assert any(isinstance(term, Wildcard) for term in rule.body_atoms()[0].terms)
    comparisons = rule.comparisons()
    assert comparisons[0].op == ">="


def test_negation():
    program = parse_datalog(
        """
        .decl node(id:number)
        .decl edge(a:number, b:number)
        .decl isolated(id:number)
        isolated(x) :- node(x), !edge(x, _), !edge(_, x).
        .output isolated
        """
    )
    rule = program.rules[0]
    assert len(rule.negated_atoms()) == 2
    assert isinstance(rule.body[1], NegatedAtom)


def test_not_equal_normalised():
    program = parse_datalog(
        ".decl r(a:number)\n.decl q(a:number)\nq(x) :- r(x), x != 3.\n.output q"
    )
    comparison = program.rules[0].comparisons()[0]
    assert isinstance(comparison, Comparison)
    assert comparison.op == "<>"


def test_arithmetic_in_head_and_body():
    program = parse_datalog(
        """
        .decl d(a:number, n:number)
        .decl e(a:number, b:number)
        d(y, n + 1) :- d(x, n), e(x, y).
        d(x, 0) :- e(x, _).
        .output d
        """
    )
    heads = [str(rule.head) for rule in program.rules]
    assert any("(n + 1)" in head for head in heads)


def test_comments_are_ignored():
    program = parse_datalog(
        "// reachability\n.decl e(a:number, b:number)\n# another comment\ne(1,2)."
    )
    assert program.facts["e"] == [(1, 2)]


def test_undeclared_relation_fails_validation():
    with pytest.raises(ParseError):
        parse_datalog(".decl r(a:number)\nq(x) :- r(x).\n.output q")


def test_arity_mismatch_fails_validation():
    with pytest.raises(ParseError):
        parse_datalog(".decl r(a:number, b:number)\n.decl q(a:number)\nq(x) :- r(x).\n.output q")


def test_unknown_directive_raises():
    with pytest.raises(ParseError):
        parse_datalog(".pragma something")


def test_unknown_type_raises():
    with pytest.raises(ParseError):
        parse_datalog(".decl r(a:widget)")


def test_parsed_program_runs_on_engine():
    from repro.engines.datalog import evaluate_program

    program = parse_datalog(
        TC_PROGRAM + "\nedge(1, 2).\nedge(2, 3).\nedge(3, 4).\n"
    )
    result = evaluate_program(program, relation="tc")
    assert (1, 4) in result.row_set()
    assert len(result) == 6


def test_parameter_terms_parse_and_run_late_bound():
    from repro.dlir.core import Param
    from repro.engines.datalog import evaluate_program

    program = parse_datalog(
        """
.decl edge(a:number, b:number)
.decl hop(a:number, b:number)
hop(a, b) :- edge(a, b), a = $src.
.output hop
edge(1, 2).
edge(2, 3).
"""
    )
    comparison = program.rules[0].comparisons()[0]
    assert comparison.right == Param("src")
    result = evaluate_program(program, relation="hop", parameters={"src": 2})
    assert result.row_set() == {(2, 3)}


def test_parameter_fact_clause_becomes_a_rule():
    # A "fact" with a parameter is not ground: it must stay a rule whose
    # head is evaluated per binding.
    program = parse_datalog(".decl seed(a:number)\nseed($start).\n.output seed")
    assert program.facts == {}
    assert len(program.rules) == 1 and program.rules[0].is_fact()
