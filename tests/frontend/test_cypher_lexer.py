"""Tests for the Cypher tokenizer."""

import pytest

from repro.common.errors import ParseError
from repro.frontend.cypher.lexer import TokenKind, tokenize_cypher


def _kinds(text):
    return [token.kind for token in tokenize_cypher(text)]


def _texts(text):
    return [token.text for token in tokenize_cypher(text)[:-1]]


def test_keywords_are_recognised_case_insensitively():
    tokens = tokenize_cypher("match RETURN Where")
    assert all(token.kind is TokenKind.KEYWORD for token in tokens[:-1])


def test_identifiers_versus_keywords():
    tokens = tokenize_cypher("person MATCH firstName")
    assert tokens[0].kind is TokenKind.IDENTIFIER
    assert tokens[1].kind is TokenKind.KEYWORD
    assert tokens[2].kind is TokenKind.IDENTIFIER


def test_integer_and_float_literals():
    tokens = tokenize_cypher("42 3.14 1.5e3")
    assert tokens[0].kind is TokenKind.INTEGER and tokens[0].value == 42
    assert tokens[1].kind is TokenKind.FLOAT and tokens[1].value == 3.14
    assert tokens[2].kind is TokenKind.FLOAT and tokens[2].value == 1500.0


def test_string_literals_single_and_double_quotes():
    tokens = tokenize_cypher("'abc' \"def\"")
    assert tokens[0].value == "abc"
    assert tokens[1].value == "def"


def test_string_escapes():
    tokens = tokenize_cypher(r"'it\'s'")
    assert tokens[0].value == "it's"


def test_backtick_identifiers():
    tokens = tokenize_cypher("`first name`")
    assert tokens[0].kind is TokenKind.IDENTIFIER
    assert tokens[0].value == "first name"


def test_arrows_and_comparison_operators():
    assert _texts("-> <- <= >= <> != ..") == ["->", "<-", "<=", ">=", "<>", "!=", ".."]


def test_comments_are_skipped():
    tokens = tokenize_cypher("MATCH // a comment\nRETURN")
    assert [token.text for token in tokens[:-1]] == ["MATCH", "RETURN"]


def test_locations_track_lines_and_columns():
    tokens = tokenize_cypher("MATCH\n  (n)")
    assert tokens[0].location.line == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_eof_token_is_last():
    tokens = tokenize_cypher("RETURN 1")
    assert tokens[-1].kind is TokenKind.EOF


def test_unexpected_character_raises_with_location():
    with pytest.raises(ParseError) as excinfo:
        tokenize_cypher("RETURN 1 ~")
    assert excinfo.value.location is not None


def test_is_keyword_and_is_punct_helpers():
    tokens = tokenize_cypher("MATCH (")
    assert tokens[0].is_keyword("match")
    assert not tokens[0].is_keyword("return")
    assert tokens[1].is_punct("(")
    assert not tokens[1].is_punct(")")
