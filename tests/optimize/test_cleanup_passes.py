"""Tests for duplicate-atom removal, constant propagation and semantic join elimination."""

from repro.dlir.builder import ProgramBuilder, atom
from repro.dlir.core import Comparison, Const, Rule, Var, Wildcard
from repro.optimize.constant_propagation import ConstantPropagation
from repro.optimize.duplicates import RemoveDuplicateAtoms
from repro.optimize.semantic import SemanticJoinElimination

from tests.conftest import PAPER_QUERY


def test_exact_duplicate_literals_removed():
    builder = ProgramBuilder()
    builder.edb("r", [("a", "number"), ("b", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("q", ["x"], [("r", ["x", "y"]), ("r", ["x", "y"])])
    builder.output("q")
    program = RemoveDuplicateAtoms().run(builder.build())
    assert len(program.rules_for("q")[0].body_atoms()) == 1


def test_key_self_join_merged():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("first", "symbol"), ("last", "symbol")])
    program = builder.build(validate=False)
    rule = Rule(
        head=atom("q", ["x", "f", "l"]),
        body=(
            atom("person", ["x", "f", "_"]),
            atom("person", ["x", "_", "l"]),
        ),
    )
    program.add_rule(rule)
    program.add_output("q")
    cleaned = RemoveDuplicateAtoms().run(program)
    atoms = cleaned.rules[0].body_atoms()
    assert len(atoms) == 1
    assert atoms[0].terms == (Var("x"), Var("f"), Var("l"))


def test_key_self_join_with_conflicting_vars_adds_equality():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("first", "symbol")])
    program = builder.build(validate=False)
    rule = Rule(
        head=atom("q", ["x", "f"]),
        body=(atom("person", ["x", "f"]), atom("person", ["x", "g"])),
    )
    program.add_rule(rule)
    program.add_output("q")
    cleaned = RemoveDuplicateAtoms().run(program)
    assert len(cleaned.rules[0].body_atoms()) == 1
    assert Comparison("=", Var("f"), Var("g")) in cleaned.rules[0].comparisons()


def test_idb_atoms_not_merged():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("q", ["x"], [("tc", ["x", "y"]), ("tc", ["x", "z"])])
    builder.output("q")
    program = RemoveDuplicateAtoms().run(builder.build())
    assert len(program.rules_for("q")[0].body_atoms()) == 2


def test_constant_propagation_pushes_constants_into_atoms():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("name", "symbol")])
    builder.idb("q", [("name", "symbol")])
    builder.rule(
        "q", ["n"], [("person", ["x", "n"])], comparisons=[("=", "x", 42)]
    )
    builder.output("q")
    program = ConstantPropagation().run(builder.build())
    rule = program.rules_for("q")[0]
    assert rule.body_atoms()[0].terms[0] == Const(42)
    assert rule.comparisons() == []


def test_constant_propagation_keeps_inequalities():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("age", "number")])
    builder.idb("q", [("id", "number")])
    builder.rule("q", ["x"], [("person", ["x", "a"])], comparisons=[(">", "a", 18)])
    builder.output("q")
    program = ConstantPropagation().run(builder.build())
    assert len(program.rules_for("q")[0].comparisons()) == 1


def test_constant_propagation_noop_returns_same_program():
    builder = ProgramBuilder()
    builder.edb("r", [("a", "number")])
    builder.idb("q", [("a", "number")])
    builder.rule("q", ["x"], [("r", ["x"])])
    builder.output("q")
    program = builder.build()
    assert ConstantPropagation().run(program) is program


def test_semantic_join_elimination_drops_redundant_node_atom(paper_raqlet, paper_mapping):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    match_rule_before = program.rules_for("Match1")[0]
    assert "City" in match_rule_before.body_relations()
    cleaned = SemanticJoinElimination(paper_mapping).run(program)
    match_rule_after = cleaned.rules_for("Match1")[0]
    # City(p, _, _) is implied by the id2 foreign key of the edge relation.
    assert "City" not in match_rule_after.body_relations()
    assert "Person_IS_LOCATED_IN_City" in match_rule_after.body_relations()


def test_semantic_join_elimination_keeps_atoms_that_read_properties(paper_raqlet, paper_mapping):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    cleaned = SemanticJoinElimination(paper_mapping).run(program)
    return_rule = cleaned.rules_for("Return")[0]
    # Person provides firstName in the Return rule, so it must stay.
    assert "Person" in return_rule.body_relations()


def test_semantic_join_elimination_without_mapping_is_noop(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    assert SemanticJoinElimination(None).run(program) is program
