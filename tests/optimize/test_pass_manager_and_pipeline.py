"""Tests for the pass manager, trace and default optimization pipeline."""

from repro.dlir.core import DLIRProgram
from repro.optimize import (
    DeadRuleElimination,
    InlineRules,
    PassManager,
    default_pipeline,
    optimize_program,
)
from repro.optimize.base import Pass

from tests.conftest import PAPER_QUERY


class _CountingPass(Pass):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def run(self, program: DLIRProgram) -> DLIRProgram:
        self.calls += 1
        return program


def test_pass_manager_runs_passes_in_order(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    manager = PassManager([InlineRules(), DeadRuleElimination()])
    optimized = manager.run(program)
    assert [rule.head.relation for rule in optimized.rules] == ["Return"]
    assert [application.pass_name for application in manager.trace.applications] == [
        "inline",
        "dead-rule-elimination",
    ]


def test_pass_manager_iterates_until_fixpoint(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    manager = PassManager([InlineRules(), DeadRuleElimination()], iterate=True)
    manager.run(program)
    # At least two rounds: one that changes things, one that confirms no change.
    assert len(manager.trace.applications) >= 4


def test_pass_manager_stops_early_when_nothing_changes():
    counting = _CountingPass()
    manager = PassManager([counting], iterate=True, max_rounds=10)
    manager.run(DLIRProgram())
    assert counting.calls == 1


def test_trace_reports_rule_reduction(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    manager = PassManager([InlineRules(), DeadRuleElimination()])
    manager.run(program)
    assert manager.trace.total_rule_reduction() == 2
    assert "dead-rule-elimination" in manager.trace.to_text()


def test_default_pipeline_contains_expected_passes(paper_mapping):
    names = [optimization.name for optimization in default_pipeline(paper_mapping)]
    assert names == [
        "constant-propagation",
        "inline",
        "duplicate-atom-removal",
        "semantic-join-elimination",
        "linearize-recursion",
        "magic-sets",
        "dead-rule-elimination",
    ]


def test_default_pipeline_flags(paper_mapping):
    names = [
        optimization.name
        for optimization in default_pipeline(paper_mapping, enable_magic_sets=False)
    ]
    assert "magic-sets" not in names
    names = [
        optimization.name
        for optimization in default_pipeline(None, enable_linearization=False)
    ]
    assert "semantic-join-elimination" not in names
    assert "linearize-recursion" not in names


def test_optimize_program_reaches_figure4_shape(paper_raqlet, paper_mapping):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    optimized, trace = optimize_program(program, paper_mapping)
    assert [rule.head.relation for rule in optimized.rules] == ["Return"]
    assert trace.total_rule_reduction() == 2


def test_optimization_preserves_results(paper_raqlet, paper_facts):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    unoptimized = paper_raqlet.run_on_datalog_engine(compiled, paper_facts, optimized=False)
    optimized = paper_raqlet.run_on_datalog_engine(compiled, paper_facts, optimized=True)
    assert unoptimized.same_rows(optimized)
    assert optimized.rows == [("Ada", 1)]
