"""Tests for the magic-set transformation and linearization."""

from repro.dlir.builder import ProgramBuilder
from repro.engines.datalog import DatalogEngine, evaluate_program
from repro.optimize.linearize import LinearizeRecursion
from repro.optimize.magic_sets import MagicSets


def _bound_tc_program():
    """TC queried from a single source constant."""
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("query", [("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("query", ["y"], [("tc", [0, "y"])])
    builder.output("query")
    return builder.build()


def _chain_facts(length=50):
    return {"edge": [(i, i + 1) for i in range(length)]}


def test_magic_sets_adds_magic_predicate_and_guards():
    program = MagicSets().run(_bound_tc_program())
    assert "Magic_tc" in program.schema
    seeds = [rule for rule in program.rules_for("Magic_tc") if rule.is_fact()]
    assert len(seeds) == 1
    for rule in program.rules_for("tc"):
        assert rule.body_relations()[0] == "Magic_tc"


def test_magic_sets_preserves_query_results():
    original = _bound_tc_program()
    transformed = MagicSets().run(original)
    facts = _chain_facts()
    result_original = evaluate_program(original, facts, relation="query")
    result_transformed = evaluate_program(transformed, facts, relation="query")
    assert result_original.same_rows(result_transformed)
    assert len(result_original) == 50


def test_magic_sets_reduces_derived_facts():
    facts = {"edge": [(i, i + 1) for i in range(30)] + [(100 + i, 101 + i) for i in range(30)]}
    original = _bound_tc_program()
    transformed = MagicSets().run(original)
    engine_full = DatalogEngine(original, facts)
    engine_magic = DatalogEngine(transformed, facts)
    engine_full.run()
    engine_magic.run()
    # Magic sets restricts tc to the reachable side of the query constant.
    assert engine_magic.fact_count("tc") < engine_full.fact_count("tc")
    assert engine_magic.query("query").same_rows(engine_full.query("query"))


def test_magic_sets_skips_unbound_call_sites():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("query", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("query", ["x", "y"], [("tc", ["x", "y"])])
    builder.output("query")
    program = builder.build()
    assert MagicSets().run(program) is program


def test_magic_sets_skips_mutual_recursion():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("even", [("a", "number"), ("b", "number")])
    builder.idb("odd", [("a", "number"), ("b", "number")])
    builder.idb("query", [("b", "number")])
    builder.rule("odd", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("even", ["x", "y"], [("odd", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("odd", ["x", "y"], [("even", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("query", ["y"], [("even", [0, "y"])])
    builder.output("query")
    program = builder.build()
    transformed = MagicSets().run(program)
    assert "Magic_even" not in transformed.schema


def test_magic_sets_second_argument_bound():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("query", [("a", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "z"]), ("tc", ["z", "y"])])
    builder.rule("query", ["x"], [("tc", ["x", 25])])
    builder.output("query")
    program = builder.build()
    transformed = MagicSets().run(program)
    facts = _chain_facts()
    assert "Magic_tc" in transformed.schema
    assert evaluate_program(program, facts, relation="query").same_rows(
        evaluate_program(transformed, facts, relation="query")
    )


def test_linearize_rewrites_chain_rule():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("out", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    builder.rule("out", ["x", "y"], [("tc", ["x", "y"])])
    builder.output("out")
    program = LinearizeRecursion().run(builder.build())
    recursive_rules = [
        rule for rule in program.rules_for("tc") if "tc" in rule.body_relations()
    ]
    assert len(recursive_rules) == 1
    assert recursive_rules[0].body_relations().count("tc") == 1


def test_linearize_preserves_semantics():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    original = builder.build()
    linearized = LinearizeRecursion().run(original)
    facts = {"edge": [(1, 2), (2, 3), (3, 4), (4, 2), (5, 6)]}
    assert evaluate_program(original, facts, relation="tc").same_rows(
        evaluate_program(linearized, facts, relation="tc")
    )


def test_linearize_leaves_linear_rules_alone():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    program = builder.build()
    assert LinearizeRecursion().run(program) is program


def test_linearize_makes_program_sql_translatable():
    from repro.sqir import translate_dlir_to_sqir

    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    program = builder.build()
    linearized = LinearizeRecursion().run(program)
    sqir = translate_dlir_to_sqir(linearized)
    assert sqir.cte("tc").is_recursive
