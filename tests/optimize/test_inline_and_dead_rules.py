"""Tests for inlining and dead-rule elimination (paper Figure 4)."""

from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.optimize.dead_rules import DeadRuleElimination, reachable_relations
from repro.optimize.inline import InlineRules

from tests.conftest import PAPER_QUERY


def _simple_chain():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("name", "symbol")])
    builder.idb("v1", [("id", "number")])
    builder.idb("v2", [("id", "number")])
    builder.rule("v1", ["x"], [("person", ["x", "_"])])
    builder.rule("v2", ["x"], [("v1", ["x"]), ("person", ["x", "_"])])
    builder.output("v2")
    return builder.build()


def test_inline_replaces_single_rule_views():
    program = InlineRules().run(_simple_chain())
    v2_rule = program.rules_for("v2")[0]
    assert "v1" not in v2_rule.body_relations()
    assert v2_rule.body_relations() == ["person"]


def test_inline_removes_duplicate_atoms_created_by_expansion():
    program = InlineRules().run(_simple_chain())
    v2_rule = program.rules_for("v2")[0]
    # person(x, _) appeared both in v1's body and v2's own body.
    assert len(v2_rule.body_atoms()) == 1


def test_inline_skips_multi_rule_definitions():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("either", [("a", "number"), ("b", "number")])
    builder.idb("out", [("a", "number"), ("b", "number")])
    builder.rule("either", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("either", ["x", "y"], [("edge", ["y", "x"])])
    builder.rule("out", ["x", "y"], [("either", ["x", "y"])])
    builder.output("out")
    program = InlineRules().run(builder.build())
    assert "either" in program.rules_for("out")[0].body_relations()


def test_inline_skips_recursive_definitions():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("out", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("out", ["x", "y"], [("tc", ["x", "y"])])
    builder.output("out")
    program = InlineRules().run(builder.build())
    assert "tc" in program.rules_for("out")[0].body_relations()
    assert len(program.rules_for("tc")) == 2


def test_inline_skips_aggregating_definitions():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("deg", [("a", "number"), ("c", "number")])
    builder.idb("out", [("a", "number"), ("c", "number")])
    builder.rule(
        "deg", ["x", "c"], [("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.rule("out", ["x", "c"], [("deg", ["x", "c"])])
    builder.output("out")
    program = InlineRules().run(builder.build())
    assert "deg" in program.rules_for("out")[0].body_relations()


def test_inline_unifies_constants_at_call_site():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("from_one", [("b", "number")])
    builder.idb("out", [("b", "number")])
    builder.rule("from_one", ["y"], [("edge", [1, "y"])])
    builder.rule("out", ["y"], [("from_one", ["y"])])
    builder.output("out")
    program = InlineRules().run(builder.build())
    out_rule = program.rules_for("out")[0]
    assert out_rule.body_relations() == ["edge"]
    assert str(out_rule.body_atoms()[0].terms[0]) == "1"


def test_reachable_relations_from_outputs(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    reachable = reachable_relations(program)
    assert {"Return", "Where1", "Match1", "Person", "City"} <= reachable


def test_dead_rule_elimination_after_inlining(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    program = compiled.program(optimized=False)
    inlined = InlineRules().run(program)
    cleaned = DeadRuleElimination().run(inlined)
    # Figure 4b: only the Return rule remains.
    assert [rule.head.relation for rule in cleaned.rules] == ["Return"]
    # Unused IDB declarations are dropped, EDBs are kept.
    assert "Match1" not in cleaned.schema
    assert "Person" in cleaned.schema


def test_dead_rule_elimination_keeps_recursive_dependencies():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("unused", [("a", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("unused", ["x"], [("edge", ["x", "_"])])
    builder.output("tc")
    program = DeadRuleElimination().run(builder.build())
    assert len(program.rules_for("tc")) == 2
    assert program.rules_for("unused") == []


def test_dead_rule_elimination_without_outputs_is_noop():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("v", [("a", "number")])
    builder.rule("v", ["x"], [("edge", ["x", "_"])])
    program = builder.build()
    assert DeadRuleElimination().run(program) is program
