"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AnalysisError,
    ExecutionError,
    ParseError,
    RaqletError,
    SchemaError,
    TranslationError,
    UnsupportedFeatureError,
)
from repro.common.location import SourceLocation


def test_all_errors_derive_from_raqlet_error():
    for exc_type in (
        ParseError,
        SchemaError,
        TranslationError,
        AnalysisError,
        ExecutionError,
        UnsupportedFeatureError,
    ):
        assert issubclass(exc_type, RaqletError)


def test_parse_error_formats_location_and_source():
    error = ParseError("bad token", SourceLocation(3, 7), "query.cyp")
    assert "query.cyp" in str(error)
    assert "3:7" in str(error)
    assert "bad token" in str(error)


def test_parse_error_without_location():
    error = ParseError("something broke")
    assert str(error) == "something broke"
    assert error.location is None


def test_parse_error_keeps_bare_message():
    error = ParseError("oops", SourceLocation(1, 1), "x")
    assert error.bare_message == "oops"


def test_unsupported_feature_error_mentions_backend():
    error = UnsupportedFeatureError("mutual recursion", backend="sql")
    assert "mutual recursion" in str(error)
    assert "sql" in str(error)
    assert error.feature == "mutual recursion"
    assert error.backend == "sql"


def test_unsupported_feature_error_without_backend():
    error = UnsupportedFeatureError("UNWIND")
    assert "UNWIND" in str(error)
    assert error.backend is None


def test_unsupported_feature_is_translation_error():
    assert issubclass(UnsupportedFeatureError, TranslationError)


def test_errors_can_be_caught_as_raqlet_error():
    with pytest.raises(RaqletError):
        raise SchemaError("bad schema")
