"""Tests for deterministic fresh-name generation."""

from repro.common.names import NameGenerator


def test_fresh_names_are_sequential_per_prefix():
    names = NameGenerator()
    assert names.fresh("x") == "x1"
    assert names.fresh("x") == "x2"
    assert names.fresh("n") == "n1"
    assert names.fresh("x") == "x3"


def test_reserved_names_are_skipped():
    names = NameGenerator(reserved=["x1", "x2"])
    assert names.fresh("x") == "x3"


def test_reserve_after_construction():
    names = NameGenerator()
    names.reserve("n1")
    assert names.fresh("n") == "n2"


def test_reserve_all():
    names = NameGenerator()
    names.reserve_all(["a1", "a2", "a3"])
    assert names.fresh("a") == "a4"


def test_generated_names_become_reserved():
    names = NameGenerator()
    first = names.fresh("v")
    assert names.is_reserved(first)
    assert names.fresh("v") != first


def test_is_reserved_for_unknown_name():
    names = NameGenerator()
    assert not names.is_reserved("whatever")


def test_determinism_across_instances():
    first = NameGenerator()
    second = NameGenerator()
    sequence_a = [first.fresh("x") for _ in range(5)]
    sequence_b = [second.fresh("x") for _ in range(5)]
    assert sequence_a == sequence_b
