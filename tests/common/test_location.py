"""Tests for source locations and spans."""

from repro.common.location import SourceLocation, Span


def test_location_str():
    assert str(SourceLocation(4, 12)) == "4:12"


def test_location_ordering():
    assert SourceLocation(1, 5) < SourceLocation(2, 1)
    assert SourceLocation(2, 1) < SourceLocation(2, 9)


def test_advanced_over_plain_text():
    location = SourceLocation(1, 1).advanced("abc")
    assert location == SourceLocation(1, 4)


def test_advanced_over_newlines():
    location = SourceLocation(1, 1).advanced("ab\ncd\ne")
    assert location == SourceLocation(3, 2)


def test_advanced_over_empty_string():
    assert SourceLocation(5, 3).advanced("") == SourceLocation(5, 3)


def test_advanced_newline_resets_column():
    assert SourceLocation(1, 10).advanced("\n") == SourceLocation(2, 1)


def test_span_str():
    span = Span(SourceLocation(1, 1), SourceLocation(1, 5))
    assert str(span) == "1:1-1:5"


def test_point_span():
    span = Span.point(SourceLocation(2, 3))
    assert span.start == span.end == SourceLocation(2, 3)


def test_locations_are_hashable():
    locations = {SourceLocation(1, 1), SourceLocation(1, 1), SourceLocation(1, 2)}
    assert len(locations) == 2
