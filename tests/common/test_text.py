"""Tests for text helpers used by the unparsers."""

from repro.common.text import (
    indent_block,
    join_nonempty,
    souffle_quote_string,
    sql_quote_string,
    strip_margin,
)


def test_indent_block_indents_every_line():
    assert indent_block("a\nb", 2) == "  a\n  b"


def test_indent_block_leaves_blank_lines_alone():
    assert indent_block("a\n\nb", 2) == "  a\n\n  b"


def test_strip_margin_removes_pipe_prefix():
    text = """
        |SELECT 1
        |FROM t
    """
    assert strip_margin(text) == "SELECT 1\nFROM t"


def test_strip_margin_keeps_unprefixed_nonempty_lines():
    assert strip_margin("abc\n|def") == "abc\ndef"


def test_sql_quote_string_escapes_quotes():
    assert sql_quote_string("it's") == "'it''s'"


def test_sql_quote_string_plain():
    assert sql_quote_string("abc") == "'abc'"


def test_souffle_quote_string_escapes_backslash_and_quote():
    assert souffle_quote_string('a"b\\c') == '"a\\"b\\\\c"'


def test_join_nonempty_drops_empty_parts():
    assert join_nonempty(", ", ["a", "", "b", ""]) == "a, b"
