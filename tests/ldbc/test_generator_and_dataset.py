"""Tests for the SNB schema, synthetic generator and per-engine loaders."""

from repro.ldbc import generate_snb_dataset, load_dataset, snb_pg_schema, snb_schema_mapping
from repro.ldbc.generator import SNBDataset


def test_snb_schema_node_and_edge_counts():
    schema = snb_pg_schema()
    assert set(schema.node_labels()) == {
        "Person", "City", "Country", "Tag", "Forum", "Message",
    }
    assert len(schema.edge_types) == 11


def test_generator_is_deterministic():
    first = generate_snb_dataset(scale_persons=50, seed=3)
    second = generate_snb_dataset(scale_persons=50, seed=3)
    assert first.facts == second.facts


def test_generator_seed_changes_output():
    first = generate_snb_dataset(scale_persons=50, seed=3)
    second = generate_snb_dataset(scale_persons=50, seed=4)
    assert first.facts != second.facts


def test_generator_scales_with_person_count():
    small = generate_snb_dataset(scale_persons=40, seed=1)
    large = generate_snb_dataset(scale_persons=160, seed=1)
    assert large.fact_count() > small.fact_count()
    assert len(large.relation("Person")) == 160


def test_fact_arities_match_schema():
    dataset = generate_snb_dataset(scale_persons=40, seed=1)
    mapping = snb_schema_mapping()
    for relation_name, rows in dataset.facts.items():
        declaration = mapping.dl_schema.get(relation_name)
        for row in rows[:5]:
            assert len(row) == declaration.arity, relation_name


def test_knows_edges_reference_existing_persons():
    dataset = generate_snb_dataset(scale_persons=60, seed=2)
    person_ids = set(dataset.person_ids)
    for src, dst, _edge_id, _date in dataset.relation("Person_KNOWS_Person"):
        assert src in person_ids and dst in person_ids
        assert src != dst


def test_every_person_has_a_city():
    dataset = generate_snb_dataset(scale_persons=60, seed=2)
    located = {row[0] for row in dataset.relation("Person_IS_LOCATED_IN_City")}
    assert located == set(dataset.person_ids)


def test_messages_have_creators_and_dates_in_range():
    dataset = generate_snb_dataset(scale_persons=60, seed=2)
    message_ids = {row[0] for row in dataset.relation("Message")}
    creators = {row[0] for row in dataset.relation("Message_HAS_CREATOR_Person")}
    assert creators == message_ids
    low, high = dataset.message_date_range
    assert low <= dataset.median_message_date() <= high


def test_default_person_id_is_valid():
    dataset = generate_snb_dataset(scale_persons=30, seed=5)
    assert dataset.default_person_id() in dataset.person_ids
    assert SNBDataset(scale_persons=0, seed=0).default_person_id() == 0


def test_load_dataset_materialises_every_engine(snb_data):
    assert len(snb_data.facts["Person"]) == 80
    database = snb_data.relational_database()
    assert database.table("Person").arity == 8
    graph = snb_data.property_graph()
    assert graph.node_count() > 80  # persons + cities + messages + ...
    sqlite_executor = snb_data.sqlite_executor()
    assert sqlite_executor.table_count("Person") == 80


def test_loaders_are_cached(snb_data):
    assert snb_data.relational_database() is snb_data.relational_database()
    assert snb_data.property_graph() is snb_data.property_graph()
    assert snb_data.sqlite_executor() is snb_data.sqlite_executor()


def test_queries_have_parameter_helpers():
    from repro.ldbc.queries import (
        complex_query_2,
        friend_reachability,
        friends_of_friends,
        short_query_1,
        shortest_path_query,
    )

    assert short_query_1(7)["parameters"] == {"personId": 7}
    assert complex_query_2(7, 99)["parameters"] == {"personId": 7, "maxDate": 99}
    assert friend_reachability(7)["parameters"] == {"personId": 7}
    assert friends_of_friends(7)["parameters"] == {"personId": 7}
    assert shortest_path_query(1, 2)["parameters"] == {"person1Id": 1, "person2Id": 2}
