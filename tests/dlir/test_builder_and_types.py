"""Tests for the DLIR program builder and type inference."""

import pytest

from repro.dlir.builder import ProgramBuilder, as_term, atom
from repro.dlir.core import Const, Var, Wildcard
from repro.dlir.types import declare_idbs, infer_rule_types, infer_variable_types
from repro.schema.dl_schema import DLType


def test_as_term_coercions():
    assert as_term("x") == Var("x")
    assert as_term("_") == Wildcard()
    assert as_term('"sym"') == Const("sym")
    assert as_term(3) == Const(3)
    assert as_term(2.5) == Const(2.5)
    assert as_term(True) == Const(True)
    assert as_term(Var("y")) == Var("y")


def test_atom_helper():
    built = atom("edge", ["x", 3, "_"])
    assert built.relation == "edge"
    assert built.terms == (Var("x"), Const(3), Wildcard())


def _tc_builder():
    builder = ProgramBuilder()
    builder.edb("edge", [("src", "number"), ("dst", "number")])
    builder.idb("tc", [("src", "number"), ("dst", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    return builder


def test_builder_constructs_valid_program():
    program = _tc_builder().build()
    assert len(program.rules) == 2
    assert program.outputs == ["tc"]
    assert program.schema.get("edge").is_edb
    assert not program.schema.get("tc").is_edb


def test_builder_validation_catches_arity_errors():
    builder = ProgramBuilder()
    builder.edb("edge", [("src", "number"), ("dst", "number")])
    builder.idb("q", [("x", "number")])
    builder.rule("q", ["x", "y"], [("edge", ["x", "y"])])
    with pytest.raises(ValueError):
        builder.build()


def test_builder_facts_and_inputs():
    builder = _tc_builder()
    builder.fact("edge", [1, 2]).fact("edge", [2, 3]).input("edge")
    program = builder.build()
    assert program.facts["edge"] == [(1, 2), (2, 3)]
    assert program.inputs == ["edge"]


def test_builder_negation_and_comparisons():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("src", "number"), ("dst", "number")])
    builder.idb("sink", [("id", "number")])
    builder.rule(
        "sink",
        ["x"],
        [("node", ["x"])],
        negated=[("edge", ["x", "_"])],
        comparisons=[(">", "x", 0)],
    )
    builder.output("sink")
    program = builder.build()
    rule = program.rules[0]
    assert rule.has_negation()
    assert rule.comparisons()[0].op == ">"


def test_infer_variable_types_from_edbs():
    program = _tc_builder().build()
    rule = program.rules[1]
    env = infer_variable_types(rule, program.schema)
    assert env["x"] is DLType.NUMBER
    assert env["z"] is DLType.NUMBER


def test_infer_types_through_equality():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("name", "symbol")])
    builder.idb("out", [("alias", "symbol")])
    builder.rule(
        "out", ["alias"], [("person", ["p", "n"])], comparisons=[("=", "n", "alias")]
    )
    builder.output("out")
    program = builder.build()
    env = infer_variable_types(program.rules[0], program.schema)
    assert env["alias"] is DLType.SYMBOL


def test_infer_rule_types_builds_declaration():
    program = _tc_builder().build()
    declaration = infer_rule_types(program.rules[0], program.schema)
    assert declaration.name == "tc"
    assert declaration.column_types() == [DLType.NUMBER, DLType.NUMBER]
    assert not declaration.is_edb


def test_declare_idbs_adds_missing_declarations():
    builder = ProgramBuilder()
    builder.edb("edge", [("src", "number"), ("dst", "number")])
    program = builder.build(validate=False)
    from repro.dlir.builder import atom as mk_atom
    from repro.dlir.core import Rule

    program.add_rule(Rule(head=mk_atom("tc", ["x", "y"]), body=(mk_atom("edge", ["x", "y"]),)))
    declare_idbs(program)
    assert "tc" in program.schema
    assert program.schema.get("tc").column_types() == [DLType.NUMBER, DLType.NUMBER]


def test_aggregation_types():
    from repro.dlir.core import Aggregation, Rule

    builder = ProgramBuilder()
    builder.edb("sale", [("shop", "number"), ("amount", "number")])
    program = builder.build(validate=False)
    rule = Rule(
        head=atom("total", ["s", "t"]),
        body=(atom("sale", ["s", "a"]),),
        aggregations=(Aggregation("sum", Var("t"), Var("a")),),
    )
    program.add_rule(rule)
    declare_idbs(program)
    assert program.schema.get("total").column_types() == [DLType.NUMBER, DLType.NUMBER]
