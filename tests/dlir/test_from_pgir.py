"""Tests for the PGIR-to-DLIR translation (paper Figure 3c)."""

import pytest

from repro.common.errors import UnsupportedFeatureError
from repro.dlir import translate_pgir_to_dlir
from repro.dlir.core import Comparison, Const, Var
from repro.frontend.cypher import parse_cypher
from repro.ldbc import snb_schema_mapping
from repro.pgir import lower_cypher_to_pgir

from tests.conftest import PAPER_QUERY


def _translate(query, mapping, parameters=None):
    lowering = lower_cypher_to_pgir(parse_cypher(query), parameters)
    return translate_pgir_to_dlir(lowering, mapping)


def test_running_example_rule_structure(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    assert [rule.head.relation for rule in program.rules] == ["Match1", "Where1", "Return"]
    assert program.outputs == ["Return"]


def test_match_rule_joins_node_and_edge_edbs(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    match_rule = program.rules_for("Match1")[0]
    relations = set(match_rule.body_relations())
    assert relations == {"Person", "City", "Person_IS_LOCATED_IN_City"}


def test_where_rule_has_constant_comparison(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    where_rule = program.rules_for("Where1")[0]
    assert Comparison("=", Var("n"), Const(42)) in where_rule.comparisons()
    # The paper's Where1 re-includes the Person atom for the n.id access.
    assert "Person" in where_rule.body_relations()


def test_return_rule_binds_alias_like_paper(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    return_rule = program.rules_for("Return")[0]
    assert return_rule.head_variables() == ["firstName", "cityId"]
    assert Comparison("=", Var("p"), Var("cityId")) in return_rule.comparisons()


def test_idb_declarations_inferred(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    return_decl = program.schema.get("Return")
    assert return_decl.column_names() == ["firstName", "cityId"]
    assert [t.value for t in return_decl.column_types()] == ["symbol", "number"]


def test_program_validates(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    assert program.validate() == []


def test_undirected_edge_generates_symmetric_helper():
    program = _translate(
        "MATCH (a:Person {id: 1})-[:KNOWS]-(b:Person) RETURN b.id AS friendId",
        snb_schema_mapping(),
    )
    assert "Undirected_Person_KNOWS_Person" in program.schema
    helper_rules = program.rules_for("Undirected_Person_KNOWS_Person")
    assert len(helper_rules) == 2


def test_unbounded_var_length_generates_recursion():
    program = _translate(
        "MATCH (a:Person {id: 1})-[:KNOWS*]->(b:Person) RETURN b.id AS friendId",
        snb_schema_mapping(),
    )
    var_length_rules = program.rules_for("VarLength1")
    assert len(var_length_rules) == 2
    recursive = [r for r in var_length_rules if "VarLength1" in r.body_relations()]
    assert len(recursive) == 1


def test_bounded_var_length_unrolled():
    program = _translate(
        "MATCH (a:Person {id: 1})-[:KNOWS*1..3]->(b:Person) RETURN b.id AS friendId",
        snb_schema_mapping(),
    )
    rules = program.rules_for("VarLength1")
    assert len(rules) == 3  # one per hop count 1, 2, 3
    assert all("VarLength1" not in rule.body_relations() for rule in rules)


def test_zero_minimum_adds_reflexive_rule():
    program = _translate(
        "MATCH (a:Person {id: 1})-[:KNOWS*0..2]->(b:Person) RETURN b.id AS friendId",
        snb_schema_mapping(),
    )
    rules = program.rules_for("VarLength1")
    reflexive = [rule for rule in rules if rule.head.terms[0] == rule.head.terms[1]]
    assert len(reflexive) == 1
    assert reflexive[0].body_relations() == ["Person"]


def test_shortest_path_uses_min_subsumption():
    program = _translate(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        snb_schema_mapping(),
    )
    shortest_rules = program.rules_for("ShortestPath1")
    assert len(shortest_rules) == 2
    assert all(rule.subsume_min == 2 for rule in shortest_rules)


def test_aggregation_in_with_clause():
    program = _translate(
        "MATCH (a:Person)-[:KNOWS]->(b:Person) "
        "WITH a, count(b) AS friends RETURN a.id AS personId, friends",
        snb_schema_mapping(),
    )
    with_rules = program.rules_for("With1")
    assert len(with_rules) == 1
    assert with_rules[0].has_aggregation()
    assert with_rules[0].group_by_variables() == ["a"]


def test_where_disjunction_produces_two_rules(paper_mapping):
    program = _translate(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(p:City) "
        "WHERE n.id = 1 OR n.id = 2 "
        "RETURN n.firstName AS firstName",
        paper_mapping,
    )
    assert len(program.rules_for("Where1")) == 2


def test_in_list_expanded_to_disjunction(paper_mapping):
    program = _translate(
        "MATCH (n:Person)-[:IS_LOCATED_IN]->(p:City) "
        "WHERE n.id IN [1, 2, 3] "
        "RETURN n.firstName AS firstName",
        paper_mapping,
    )
    assert len(program.rules_for("Where1")) == 3


def test_optional_match_rejected(paper_mapping):
    with pytest.raises(UnsupportedFeatureError):
        _translate(
            "OPTIONAL MATCH (n:Person)-[:IS_LOCATED_IN]->(p:City) RETURN n.id AS id",
            paper_mapping,
        )


def test_unwind_rejected(paper_mapping):
    with pytest.raises(UnsupportedFeatureError):
        _translate("UNWIND [1,2] AS x RETURN x", paper_mapping)


def test_edge_id_variable_in_scope(paper_mapping):
    program = _translate(PAPER_QUERY, paper_mapping)
    match_rule = program.rules_for("Match1")[0]
    assert "x1" in match_rule.head_variables()


def test_multi_hop_pattern_joins_two_edges():
    program = _translate(
        "MATCH (a:Person {id:1})-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
        "RETURN c.id AS fofId",
        snb_schema_mapping(),
    )
    match_rule = program.rules_for("Match1")[0]
    knows_atoms = [
        atom for atom in match_rule.body_atoms() if atom.relation == "Person_KNOWS_Person"
    ]
    assert len(knows_atoms) == 2


def test_chained_match_clauses_reference_previous_view():
    program = _translate(
        "MATCH (a:Person {id:1})-[:KNOWS]->(b:Person) "
        "MATCH (b)-[:IS_LOCATED_IN]->(c:City) "
        "RETURN c.id AS cityId",
        snb_schema_mapping(),
    )
    match2 = program.rules_for("Match2")[0]
    # The inline {id:1} condition produced a Where1 view between the two
    # MATCH clauses, so the second MATCH consumes that view.
    assert "Where1" in match2.body_relations()
    assert "Match1" in program.rules_for("Where1")[0].body_relations()
