"""Tests for the DLIR core data structures."""

import pytest

from repro.common.errors import TranslationError
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    NegatedAtom,
    Rule,
    Var,
    Wildcard,
    substitute_term,
    term_variables,
)
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType


def _edge_atom(a="x", b="y"):
    return Atom("edge", (Var(a), Var(b)))


def test_const_dl_type():
    assert Const(1).dl_type() is DLType.NUMBER
    assert Const(1.5).dl_type() is DLType.FLOAT
    assert Const("a").dl_type() is DLType.SYMBOL
    assert Const(True).dl_type() is DLType.NUMBER


def test_term_variables():
    expr = ArithExpr("+", Var("d"), Const(1))
    assert list(term_variables(expr)) == ["d"]
    assert list(term_variables(Wildcard())) == []


def test_substitute_term():
    expr = ArithExpr("+", Var("d"), Const(1))
    substituted = substitute_term(expr, {"d": Const(5)})
    assert substituted == ArithExpr("+", Const(5), Const(1))


def test_atom_helpers():
    atom = Atom("r", (Var("x"), Const(3), Wildcard()))
    assert atom.arity == 3
    assert atom.variables() == ["x"]
    assert str(atom) == "r(x, 3, _)"
    renamed = atom.substitute({"x": Var("z")})
    assert renamed.terms[0] == Var("z")


def test_negated_atom_and_comparison_str():
    negated = NegatedAtom(_edge_atom())
    comparison = Comparison("<=", Var("a"), Const(10))
    assert str(negated) == "!edge(x, y)"
    assert str(comparison) == "a <= 10"


def test_invalid_comparison_operator_rejected():
    with pytest.raises(TranslationError):
        Comparison("~", Var("a"), Var("b"))


def test_invalid_aggregate_function_rejected():
    with pytest.raises(TranslationError):
        Aggregation("median", Var("m"))


def test_rule_accessors():
    rule = Rule(
        head=Atom("tc", (Var("x"), Var("y"))),
        body=(
            _edge_atom("x", "z"),
            Atom("tc", (Var("z"), Var("y"))),
            Comparison("<>", Var("x"), Var("y")),
            NegatedAtom(Atom("blocked", (Var("x"),))),
        ),
    )
    assert rule.head_variables() == ["x", "y"]
    assert [a.relation for a in rule.body_atoms()] == ["edge", "tc"]
    assert rule.body_relations() == ["edge", "tc"]
    assert rule.referenced_relations() == ["edge", "tc", "blocked"]
    assert len(rule.comparisons()) == 1
    assert rule.has_negation()
    assert not rule.has_aggregation()
    assert not rule.is_fact()
    assert rule.variables() == ["x", "y", "z"]


def test_rule_aggregation_group_by():
    rule = Rule(
        head=Atom("cnt", (Var("p"), Var("c"))),
        body=(_edge_atom("p", "m"),),
        aggregations=(Aggregation("count", Var("c"), Var("m")),),
    )
    assert rule.aggregate_result_names() == ["c"]
    assert rule.group_by_variables() == ["p"]
    assert rule.has_aggregation()


def test_rule_substitute_renames_everywhere():
    rule = Rule(
        head=Atom("r", (Var("x"),)),
        body=(_edge_atom("x", "y"), Comparison("=", Var("y"), Const(1))),
        aggregations=(Aggregation("sum", Var("s"), Var("y")),),
    )
    renamed = rule.substitute({"y": Var("w")})
    assert "w" in renamed.variables()
    assert "y" not in renamed.variables()


def test_fact_rule_str():
    rule = Rule(head=Atom("magic", (Const(42),)), body=())
    assert str(rule) == "magic(42)."


def test_program_idb_edb_partition():
    schema = DLSchema()
    schema.add(DLRelation("edge", (DLColumn("a", DLType.NUMBER), DLColumn("b", DLType.NUMBER))))
    schema.add(
        DLRelation("tc", (DLColumn("a", DLType.NUMBER), DLColumn("b", DLType.NUMBER)), is_edb=False)
    )
    program = DLIRProgram(schema=schema)
    program.add_rule(Rule(head=Atom("tc", (Var("x"), Var("y"))), body=(_edge_atom(),)))
    assert program.idb_names() == ["tc"]
    assert program.edb_names() == ["edge"]
    assert len(program.rules_for("tc")) == 1
    assert program.rules_for("edge") == []


def test_program_validate_detects_problems():
    program = DLIRProgram()
    program.add_rule(Rule(head=Atom("q", (Var("x"),)), body=(Atom("r", (Var("x"),)),)))
    problems = program.validate()
    assert any("not declared" in problem for problem in problems)


def test_program_validate_arity_mismatch():
    schema = DLSchema.build([("r", [("a", "number"), ("b", "number")]), ("q", [("a", "number")])])
    program = DLIRProgram(schema=schema)
    program.add_rule(Rule(head=Atom("q", (Var("x"),)), body=(Atom("r", (Var("x"),)),)))
    problems = program.validate()
    assert any("arity" in problem for problem in problems)


def test_program_copy_is_independent():
    program = DLIRProgram(schema=DLSchema.build([("r", [("a", "number")])]))
    copy = program.copy()
    copy.add_rule(Rule(head=Atom("r", (Const(1),)), body=()))
    copy.add_output("r")
    copy.add_fact("r", (2,))
    assert not program.rules
    assert not program.outputs
    assert "r" not in program.facts


def test_declare_conflicting_raises():
    program = DLIRProgram()
    program.declare(DLRelation("r", (DLColumn("a", DLType.NUMBER),)))
    program.declare(DLRelation("r", (DLColumn("a", DLType.NUMBER),)))  # identical ok
    with pytest.raises(TranslationError):
        program.declare(DLRelation("r", (DLColumn("a", DLType.SYMBOL),)))
