"""Tests for the Soufflé Datalog unparser (paper Figure 3d)."""

from repro.backends import dlir_to_souffle
from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import Aggregation, Var
from repro.frontend.datalog import parse_datalog

from tests.conftest import PAPER_QUERY


def test_paper_query_souffle_text(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    text = compiled.datalog_text(optimized=False)
    assert ".decl Person(id:number, firstName:symbol, locationIP:symbol)" in text
    assert ".decl Match1(n:number, p:number, x1:number)" in text
    assert "Where1(n, p, x1) :- Match1(n, p, x1), Person(n, _, _), n = 42." in text
    assert ".output Return" in text


def test_edb_relations_get_input_directives(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    text = compiled.datalog_text(optimized=False)
    assert ".input Person" in text
    assert ".input Person_IS_LOCATED_IN_City" in text
    assert ".input Match1" not in text


def test_input_directives_can_be_disabled(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    text = dlir_to_souffle(compiled.program(optimized=False), include_inputs=False)
    assert ".input" not in text


def test_string_constants_quoted():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("name", "symbol")])
    builder.idb("named", [("id", "number")])
    builder.rule("named", ["x"], [("person", ["x", '"Ada"'])])
    builder.output("named")
    text = dlir_to_souffle(builder.build())
    assert 'person(x, "Ada")' in text


def test_facts_are_emitted():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.fact("edge", [1, 2])
    text = dlir_to_souffle(builder.build())
    assert "edge(1, 2)." in text


def test_negation_and_inequality_syntax():
    builder = ProgramBuilder()
    builder.edb("node", [("id", "number")])
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("q", [("id", "number")])
    builder.rule(
        "q", ["x"], [("node", ["x"])], negated=[("edge", ["x", "_"])],
        comparisons=[("<>", "x", 0)],
    )
    builder.output("q")
    text = dlir_to_souffle(builder.build())
    assert "!edge(x, _)" in text
    assert "x != 0" in text


def test_aggregation_uses_souffle_aggregate_syntax():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("deg", [("a", "number"), ("c", "number")])
    builder.rule(
        "deg", ["x", "c"], [("edge", ["x", "y"])],
        aggregations=[Aggregation("count", Var("c"), Var("y"))],
    )
    builder.output("deg")
    text = dlir_to_souffle(builder.build())
    assert "c = count : {" in text


def test_subsumption_emitted_for_shortest_path(snb_raqlet):
    compiled = snb_raqlet.compile_cypher(
        "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) "
        "RETURN length(p) AS hops",
        optimize=False,
    )
    text = compiled.datalog_text(optimized=False)
    assert "<=" in text  # Soufflé subsumption clause


def test_generated_text_round_trips_through_datalog_frontend():
    """Raqlet must be able to re-parse its own Soufflé output (golden loop)."""
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    text = dlir_to_souffle(builder.build())
    reparsed = parse_datalog(text)
    assert len(reparsed.rules) == 2
    assert reparsed.outputs == ["tc"]
    assert reparsed.schema.get("tc").column_names() == ["a", "b"]


def test_paper_query_round_trips_through_datalog_frontend(paper_raqlet, paper_facts):
    from repro.engines.datalog import evaluate_program

    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    text = compiled.datalog_text(optimized=False)
    reparsed = parse_datalog(text)
    result = evaluate_program(reparsed, paper_facts, relation="Return")
    assert result.rows == [("Ada", 1)]


def test_late_bound_parameters_keep_named_placeholders(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person {id: $personId}) RETURN n.firstName AS firstName"
    )
    assert "$personId" in compiled.datalog_text()
    assert "$personId" in compiled.datalog_text(optimized=False)
