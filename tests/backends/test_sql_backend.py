"""Tests for the SQL unparser (paper Figure 3e)."""

import sqlite3

import pytest

from repro.backends import sqir_to_sql
from repro.dlir.builder import ProgramBuilder
from repro.sqir import translate_dlir_to_sqir

from tests.conftest import PAPER_QUERY


def test_paper_query_sql_structure(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sql = compiled.sql_text(optimized=False)
    assert sql.startswith("WITH Match1(")
    assert "SELECT DISTINCT" in sql
    assert "FROM Person AS R1" in sql
    assert sql.rstrip().endswith(";")


def test_non_recursive_query_uses_plain_with(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sql = compiled.sql_text(optimized=False)
    assert "WITH RECURSIVE" not in sql


def test_recursive_query_uses_with_recursive():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    sql = sqir_to_sql(translate_dlir_to_sqir(builder.build()))
    assert sql.startswith("WITH RECURSIVE")
    assert "UNION" in sql


def test_unknown_dialect_rejected(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(PAPER_QUERY)
    with pytest.raises(ValueError):
        sqir_to_sql(compiled.sqir(), dialect="oracle")


def test_string_literals_escaped():
    builder = ProgramBuilder()
    builder.edb("person", [("id", "number"), ("name", "symbol")])
    builder.idb("q", [("id", "number")])
    builder.rule("q", ["x"], [("person", ["x", '"O\'Brien"'])])
    builder.output("q")
    sql = sqir_to_sql(translate_dlir_to_sqir(builder.build()))
    assert "'O''Brien'" in sql


def test_generated_sql_is_valid_sqlite(paper_raqlet, paper_facts):
    """The unoptimized Figure 3e SQL must actually run on SQLite."""
    from repro.engines.sqlite_exec import run_sql_on_sqlite

    compiled = paper_raqlet.compile_cypher(PAPER_QUERY, optimize=False)
    sql = compiled.sql_text(optimized=False, dialect="sqlite")
    result = run_sql_on_sqlite(paper_raqlet.dl_schema, paper_facts, sql)
    assert result.rows == [("Ada", 1)]


def test_recursive_sql_is_valid_sqlite():
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.output("tc")
    sql = sqir_to_sql(translate_dlir_to_sqir(builder.build()), dialect="sqlite")
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE edge (a BIGINT, b BIGINT)")
    connection.executemany("INSERT INTO edge VALUES (?, ?)", [(1, 2), (2, 3), (3, 4)])
    rows = connection.execute(sql).fetchall()
    assert (1, 4) in rows
    assert len(rows) == 6


def test_group_concat_used_for_collect():
    from repro.dlir.core import Aggregation, Var

    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("names", [("a", "number"), ("c", "symbol")])
    builder.rule(
        "names", ["x", "c"], [("edge", ["x", "y"])],
        aggregations=[Aggregation("collect", Var("c"), Var("y"))],
    )
    builder.output("names")
    sql = sqir_to_sql(translate_dlir_to_sqir(builder.build()), dialect="sqlite")
    assert "GROUP_CONCAT" in sql
    assert "GROUP BY" in sql


def test_late_bound_parameters_emit_named_sql_placeholders(paper_raqlet):
    compiled = paper_raqlet.compile_cypher(
        "MATCH (n:Person {id: $personId}) RETURN n.firstName AS firstName"
    )
    for dialect in ("ansi", "sqlite"):
        sql = compiled.sql_text(dialect=dialect)
        assert ":personId" in sql
        assert "$personId" not in sql
