"""Shared fixtures for the test suite.

Expensive artifacts (the SNB dataset, its per-engine materialisations) are
session-scoped so the suite stays fast; everything is deterministic.
"""

from __future__ import annotations

import pytest

from repro import Raqlet
from repro.ldbc import load_dataset, snb_schema_mapping
from repro.schema import parse_pg_schema, pg_to_dl_schema

#: The PG-Schema of the paper's running example (Figure 2a).
PAPER_SCHEMA_TEXT = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
}
"""

#: The Cypher query of the paper's running example (Figure 3a).
PAPER_QUERY = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""

#: A tiny dataset for the running example's schema.
PAPER_FACTS = {
    "Person": [
        (42, "Ada", "10.0.0.1"),
        (43, "Alan", "10.0.0.2"),
        (44, "Edgar", "10.0.0.3"),
    ],
    "City": [(1, "Edinburgh"), (2, "Lausanne")],
    "Person_IS_LOCATED_IN_City": [(42, 1, 900), (43, 2, 901), (44, 1, 902)],
}

#: A small directed edge relation with a cycle, used by recursion tests.
EDGE_FACTS = {
    "Node": [(index, f"n{index}") for index in range(8)],
    "Node_LINKS_TO_Node": [
        (0, 1, 100),
        (1, 2, 101),
        (2, 3, 102),
        (3, 1, 103),  # cycle 1 -> 2 -> 3 -> 1
        (4, 5, 104),
        (5, 6, 105),
        (0, 4, 106),
    ],
}

GRAPH_SCHEMA_TEXT = """
CREATE GRAPH {
  (nodeType : Node { id INT, name STRING }),
  (:nodeType)-[linkType : linksTo { id INT }]->(:nodeType)
}
"""


@pytest.fixture(scope="session")
def paper_schema():
    """The parsed PG-Schema of the running example."""
    return parse_pg_schema(PAPER_SCHEMA_TEXT)


@pytest.fixture(scope="session")
def paper_mapping(paper_schema):
    """The DL-Schema mapping of the running example."""
    return pg_to_dl_schema(paper_schema)


@pytest.fixture(scope="session")
def paper_raqlet(paper_mapping):
    """A Raqlet compiler over the running-example schema."""
    return Raqlet(paper_mapping)


@pytest.fixture(scope="session")
def paper_facts():
    """Facts for the running-example schema."""
    return {name: list(rows) for name, rows in PAPER_FACTS.items()}


@pytest.fixture(scope="session")
def graph_raqlet():
    """A Raqlet compiler over the generic Node/linksTo schema."""
    return Raqlet(GRAPH_SCHEMA_TEXT)


@pytest.fixture(scope="session")
def edge_facts():
    """A small cyclic edge relation for recursion tests."""
    return {name: list(rows) for name, rows in EDGE_FACTS.items()}


@pytest.fixture(scope="session")
def snb_raqlet():
    """A Raqlet compiler over the SNB schema."""
    return Raqlet(snb_schema_mapping())


@pytest.fixture(scope="session")
def snb_data():
    """A small deterministic SNB dataset with all engine materialisations."""
    data = load_dataset(scale_persons=80, seed=7)
    yield data
    data.close()
