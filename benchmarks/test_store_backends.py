"""Memory vs. SQLite fact-store backends on the recursion micro and LDBC
workloads.

The SQLite backend trades per-probe latency (SQL round-trips instead of a
Python dict probe) for an unbounded memory ceiling: relations live in SQLite
tables, optionally on disk.  These benchmarks keep the trade-off visible in
the performance trajectory — every case runs the *same compiled plans* on
both backends and asserts identical results, so the numbers are directly
comparable.  The in-memory store is expected to win on these small inputs;
what the suite guards is that the gap stays a constant factor (no
complexity-class regression) and that the SQLite backend preserves the
"each index is built exactly once" invariant.
"""

from __future__ import annotations

import pytest

from tc_workload import tc_cycle_program, tc_fixpoint_facts

from repro.engines.datalog import DatalogEngine, SQLiteFactStore
from repro.ldbc import complex_query_2

BACKENDS = ("memory", "sqlite")


@pytest.mark.parametrize("backend", BACKENDS)
def test_tc_fixpoint_store_backends(benchmark, backend):
    """The deep-chain TC + cycle-audit micro on each store backend."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    reference = DatalogEngine(program, facts, store="memory").query("tc")

    def run():
        # Pinned to the compiled executor: this benchmark compares store
        # backends, so REPRO_EXECUTOR must not redirect it.
        engine = DatalogEngine(program, facts, store=backend, executor="compiled")
        engine.run()
        return engine

    engine = benchmark(run)
    assert engine.query("tc").same_rows(reference)
    store = engine.store
    assert store.index_build_count == store.index_count  # never rebuilt
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["tc_facts"] = engine.fact_count("tc")


@pytest.mark.parametrize("backend", BACKENDS)
def test_ldbc_cq2_store_backends(benchmark, bench_raqlet, bench_data, backend):
    """LDBC CQ2 (the heavier Table 1 workload) on each store backend."""
    person_id = bench_data.dataset.default_person_id()
    spec = complex_query_2(person_id, bench_data.dataset.median_message_date())
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
    reference = bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store="memory"
    )

    run = lambda: bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store=backend, executor="compiled"
    )
    result = benchmark(run)
    assert result.same_rows(reference)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["rows"] = len(result)


def test_sqlite_store_on_disk_matches_in_memory(tmp_path):
    """A file-backed SQLite store (the memory-ceiling configuration) agrees
    with the private in-memory database and leaves its data on disk."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts(nodes=40)
    db_path = tmp_path / "facts.db"
    disk_engine = DatalogEngine(program, facts, store=f"sqlite:{db_path}")
    memory_engine = DatalogEngine(program, facts, store="memory")
    assert disk_engine.query("tc").same_rows(memory_engine.query("tc"))
    assert isinstance(disk_engine.store, SQLiteFactStore)
    disk_engine.store.close()
    assert db_path.stat().st_size > 0
