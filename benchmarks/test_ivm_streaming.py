"""Streaming mutations: incremental maintenance vs. mark-dirty re-derive.

LDBC ``knows`` inserts are interleaved with short reads of the unbounded
friend-reachability query (transitive closure — the workload where
re-derivation hurts most).  Two sessions replay the identical stream over
the same dataset:

* the **IVM session** (default) folds each insert into the engine's
  incremental maintainer, so a read after a mutation costs O(|Δ|);
* the **baseline session** (``ivm=False``) is the pre-IVM behaviour:
  every mutation marks the derivation dirty and the next read re-derives
  the whole closure from scratch, costing O(|IDB|).

Assertions:

* the IVM stream is **at least 5×** faster end-to-end than the baseline
  stream (conservative: the observed gap is larger and widens with scale,
  since the baseline re-derives the growing closure per read);
* per-mutation IVM cost stays **flat** while the derived closure grows —
  the second half of the stream's per-mutation medians may not blow up
  over the first half's (generous slack absorbs timer noise; a per-read
  re-derivation would scale with |IDB| and trip it);
* the engine counters prove the claim is about IVM, not caching luck:
  every mutation was maintained (``maintain_count``), none fell back
  (``full_rederive_count == 0``), and the IVM engine never reset after
  its initial derivation, while the baseline reset once per read.

The store follows ``REPRO_STORE`` so the CI matrix (including the
always-replan × sqlite leg) exercises the stream on every backend; the
executor is pinned to ``compiled`` so the IVM/baseline trajectory stays
comparable across CI legs (maintenance itself is executor-independent —
it runs on ``rule_solutions``, not the plan executors).
"""

from __future__ import annotations

import random
import statistics
import time

from repro.ldbc.queries import friend_reachability

#: interleaved insert→read steps per session
MUTATIONS = 24

#: conservative end-to-end speedup bar (observed: ~7× memory, ~11× sqlite)
MIN_SPEEDUP = 5.0

#: slack for the flat-per-mutation assertion (closure cascades and timer
#: noise move single medians by small factors, never by |IDB| factors)
FLATNESS_SLACK = 8.0


def _new_edges(facts, person_ids, count):
    """Deterministic stream of ``knows`` edges absent from the dataset."""
    rng = random.Random(7)
    existing = {(a, b) for (a, b, *_rest) in facts["Person_KNOWS_Person"]}
    edges = []
    edge_id = 900_000
    while len(edges) < count:
        a = person_ids[rng.randrange(len(person_ids))]
        b = person_ids[rng.randrange(len(person_ids))]
        if a == b or (a, b) in existing or (b, a) in existing:
            continue
        existing.add((a, b))
        edges.append((a, b, edge_id, 0))
        edge_id += 1
    return edges


def _stream(session, spec, edges):
    """Replay the insert→read stream; return (prepared, per-step seconds)."""
    prepared = session.prepare(spec["query"])
    prepared.run(spec["parameters"])  # cold derivation paid up front
    times = []
    for edge in edges:
        started = time.perf_counter()
        session.insert("Person_KNOWS_Person", [edge])
        prepared.run(spec["parameters"])
        times.append(time.perf_counter() - started)
    return prepared, times


def test_streaming_inserts_are_o_delta(bench_data, bench_raqlet):
    person_ids = list(bench_data.dataset.person_ids)
    spec = friend_reachability(person_ids[0])
    edges = _new_edges(bench_data.facts, person_ids, MUTATIONS)

    ivm_session = bench_raqlet.session(bench_data.facts, executor="compiled")
    try:
        ivm_prepared, ivm_times = _stream(ivm_session, spec, edges)
        ivm_engine = ivm_prepared.engine
        resets_after_cold_run = ivm_engine.reset_count
        final_rows = ivm_prepared.run(spec["parameters"]).row_set()
        # Proof IVM ran: every mutation maintained, zero fallbacks, and no
        # reset after the initial derivation.
        assert ivm_engine.maintain_count == MUTATIONS
        assert ivm_engine.full_rederive_count == 0
        assert ivm_engine.reset_count == resets_after_cold_run
    finally:
        ivm_session.close()

    baseline_session = bench_raqlet.session(
        bench_data.facts, executor="compiled", ivm=False
    )
    try:
        base_prepared, base_times = _stream(baseline_session, spec, edges)
        base_engine = base_prepared.engine
        # Same answers from both strategies...
        assert base_prepared.run(spec["parameters"]).row_set() == final_rows
        # ...but the baseline re-derived once per read (cold + MUTATIONS).
        assert base_engine.maintain_count == 0
        assert base_engine.reset_count >= MUTATIONS
    finally:
        baseline_session.close()

    ivm_total = sum(ivm_times)
    base_total = sum(base_times)
    assert base_total >= MIN_SPEEDUP * ivm_total, (
        f"IVM stream took {ivm_total:.4f}s vs baseline {base_total:.4f}s — "
        f"only {base_total / ivm_total:.1f}×, expected ≥ {MIN_SPEEDUP}×"
    )

    # Update cost must scale with |Δ| (one edge), not with the closure the
    # stream has grown so far: the late-stream per-mutation median may not
    # explode over the early-stream one.
    half = MUTATIONS // 2
    early = statistics.median(ivm_times[:half])
    late = statistics.median(ivm_times[half:])
    assert late <= FLATNESS_SLACK * early, (
        f"per-mutation cost grew from {early * 1e3:.3f}ms to "
        f"{late * 1e3:.3f}ms over the stream — not O(|Δ|)"
    )
