"""Serving-pool throughput: multi-worker QPS vs a single worker.

The serving claim is *not* CPU parallelism (pure Python, one GIL): it is
**binding affinity**.  Every worker session keeps its prepared query warm
for the last binding it served, so a pool of N workers keeps N distinct
bindings warm simultaneously — the steady-state request mix of a serving
tier — while a single worker thrashes: each binding change forces a reset
and a full re-derivation.  The benchmark drives the same round-robin
binding mix through a 1-worker and a 4-worker pool and asserts the 4-worker
pool clears **3×** the throughput, reporting p50/p99 latency per pool.

Correctness rides along: every single response is compared against a
single-session oracle for its binding (zero divergence), and the coalescing
sub-benchmark proves K identical in-flight requests collapse into one
execution.
"""

from __future__ import annotations

import time

from repro.ldbc.queries import friend_reachability
from repro.serving import ServingPool

BINDINGS = 4
ROUNDS = 8  # requests per pool = BINDINGS * ROUNDS


def _drive(pool, person_ids):
    """Synchronous round-robin request loop; returns (elapsed, latencies)."""
    latencies = []
    started = time.perf_counter()
    for round_index in range(ROUNDS):
        for person_id in person_ids:
            t0 = time.perf_counter()
            pool.run("reach", personId=person_id, timeout=300)
            latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - started, latencies


def _percentile(latencies, fraction):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_four_workers_triple_single_worker_qps(bench_data, bench_raqlet):
    person_ids = list(bench_data.dataset.person_ids[:BINDINGS])
    assert len(person_ids) == BINDINGS
    requests = BINDINGS * ROUNDS

    # -- single-session oracle per binding --------------------------------
    oracles = {}
    with bench_raqlet.session(bench_data.facts) as session:
        prepared = session.prepare(friend_reachability(person_ids[0])["query"])
        for person_id in person_ids:
            oracles[person_id] = prepared.run(personId=person_id).row_set()

    elapsed = {}
    latencies = {}
    for workers in (1, 4):
        with ServingPool(bench_raqlet, bench_data.facts, workers=workers) as pool:
            pool.prepare("reach", friend_reachability(person_ids[0])["query"])
            # one untimed warm-up round so both pools start post-cold-start
            for person_id in person_ids:
                response = pool.submit("reach", personId=person_id).result(300)
                assert response.result.row_set() == oracles[person_id]
            elapsed[workers], latencies[workers] = _drive(pool, person_ids)
            # zero divergence on the timed traffic too
            for person_id in person_ids:
                assert (
                    pool.run("reach", personId=person_id).row_set()
                    == oracles[person_id]
                )
            stats = pool.stats()
            assert stats["executed_count"] == requests + 2 * BINDINGS
            assert stats["full_rederive_count"] == 0

    qps1 = requests / elapsed[1]
    qps4 = requests / elapsed[4]
    for workers in (1, 4):
        print(
            f"\n  {workers} worker(s): {requests / elapsed[workers]:8.1f} qps   "
            f"p50 {_percentile(latencies[workers], 0.50) * 1000:7.2f} ms   "
            f"p99 {_percentile(latencies[workers], 0.99) * 1000:7.2f} ms"
        )
    print(f"  speedup: {qps4 / qps1:.1f}x with 4 workers on {BINDINGS} bindings")
    assert qps4 >= 3 * qps1, (
        f"4-worker pool must serve >=3x the single-worker throughput: "
        f"{qps4:.1f} vs {qps1:.1f} qps"
    )


def test_coalescing_collapses_identical_inflight_runs(bench_data, bench_raqlet):
    person_id = bench_data.dataset.person_ids[0]
    spec = friend_reachability(person_id)
    with bench_raqlet.session(bench_data.facts) as session:
        oracle = session.execute(spec["query"], spec["parameters"]).row_set()
    with ServingPool(bench_raqlet, bench_data.facts, workers=1) as pool:
        pool.prepare("reach", spec["query"])
        release = pool._pause_worker(0, timeout=60)
        try:
            futures = [
                pool.submit("reach", personId=person_id) for _ in range(8)
            ]
        finally:
            release.set()
        for future in futures:
            assert future.result(timeout=300).result.row_set() == oracle
        stats = pool.stats()
        assert stats["executed_count"] == 1, "8 identical in-flight runs -> 1 execution"
        assert stats["coalesced_count"] == 7
        print(
            f"\n  coalescing: 8 identical in-flight requests, "
            f"{stats['executed_count']} execution, "
            f"{stats['coalesced_count']} coalesced"
        )
