"""Figure 4: the optimization sequence on the running example.

Figure 4a shows the running example after inlining (intermediate views
expanded, the duplicate Person self-join removed); Figure 4b after dead-rule
elimination (a single Return rule remains).  The benchmark reproduces both
steps, asserts the rule counts, and measures the execution-time effect of the
optimizations on the Datalog engine -- the mechanism behind Table 1's
"optimized beats unoptimized" rows.
"""

from __future__ import annotations

from repro.ldbc import complex_query_2, short_query_1
from repro.optimize import DeadRuleElimination, InlineRules, RemoveDuplicateAtoms


RUNNING_EXAMPLE = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""


def test_fig4a_inlining_expands_views(bench_raqlet):
    compiled = bench_raqlet.compile_cypher(RUNNING_EXAMPLE, optimize=False)
    program = compiled.program(optimized=False)
    # Figure 4a's "inlining" step both expands the views and removes the
    # duplicated Person self-join; in this codebase those are the InlineRules
    # and RemoveDuplicateAtoms passes.
    inlined = RemoveDuplicateAtoms().run(InlineRules().run(program))
    assert len(inlined.rules) == 3  # same rules, bodies expanded
    return_rule = inlined.rules_for("Return")[0]
    assert "Where1" not in return_rule.body_relations()
    assert return_rule.body_relations().count("Person") == 1


def test_fig4b_dead_rule_elimination_single_rule(bench_raqlet):
    compiled = bench_raqlet.compile_cypher(RUNNING_EXAMPLE, optimize=False)
    program = compiled.program(optimized=False)
    optimized = DeadRuleElimination().run(InlineRules().run(program))
    assert [rule.head.relation for rule in optimized.rules] == ["Return"]


def test_fig4_optimization_pipeline_time(benchmark, bench_raqlet, bench_data):
    """Time the optimizer itself (it must stay negligible next to execution)."""
    from repro.optimize import optimize_program

    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"], optimize=False)
    program = compiled.program(optimized=False)

    optimized, _ = benchmark(lambda: optimize_program(program, bench_raqlet.mapping))
    assert len(optimized.rules) <= len(program.rules)


def _run_variant(bench_raqlet, bench_data, spec, optimized):
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
    return bench_raqlet.run_on_datalog_engine(compiled, bench_data.facts, optimized=optimized)


def test_fig4_effect_sq1_unoptimized(benchmark, bench_raqlet, bench_data):
    spec = short_query_1(bench_data.dataset.default_person_id())
    result = benchmark(lambda: _run_variant(bench_raqlet, bench_data, spec, False))
    assert len(result) == 1


def test_fig4_effect_sq1_optimized(benchmark, bench_raqlet, bench_data):
    spec = short_query_1(bench_data.dataset.default_person_id())
    result = benchmark(lambda: _run_variant(bench_raqlet, bench_data, spec, True))
    assert len(result) == 1


def test_fig4_effect_cq2_unoptimized(benchmark, bench_raqlet, bench_data):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    result = benchmark(lambda: _run_variant(bench_raqlet, bench_data, spec, False))
    assert len(result) > 0


def test_fig4_effect_cq2_optimized(benchmark, bench_raqlet, bench_data):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    result = benchmark(lambda: _run_variant(bench_raqlet, bench_data, spec, True))
    assert len(result) > 0
