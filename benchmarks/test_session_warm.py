"""Warm prepared-query runs vs. the cold one-shot API on the LDBC short query.

The cold path is what every request paid before sessions existed: compile
the query with the parameter inlined, build a fresh engine, re-ingest the
whole EDB, rebuild indexes and statistics, plan, derive.  The warm path
pays all of that once — ``session.prepare`` — and then only binds and
re-derives.  The headline assertion is deliberately conservative:

* a warm run is **at least 5×** faster than a cold run (orders of
  magnitude in practice, since cold pays the full EDB ingest);
* between warm runs the counters are flat: one ingest for the whole
  session, zero index rebuilds, zero plan recompiles.

The store follows ``REPRO_STORE`` so the CI matrix exercises the warm
path on every backend; the executor is pinned to ``compiled`` so the
warm/cold trajectory stays comparable across CI legs (the columnar leg
would otherwise change both sides of the ratio).  The re-plan threshold
is pinned to the default because the always-replan stress leg rebuilds
plans per snapshot by design — exactly the cost this benchmark asserts
the warm path avoids.
"""

from __future__ import annotations

import time

from repro.ldbc import short_query_1

RUNS = 5


def test_warm_prepared_runs_beat_cold_oneshot(bench_data, bench_raqlet):
    person_ids = list(bench_data.dataset.person_ids[:RUNS])
    assert len(person_ids) == RUNS

    # -- cold: one-shot API, everything rebuilt per request ---------------
    cold_times = []
    cold_results = []
    for person_id in person_ids:
        spec = short_query_1(person_id)
        started = time.perf_counter()
        compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
        result = bench_raqlet.run_on_datalog_engine(
            compiled, bench_data.facts, executor="compiled", replan_threshold=10
        )
        cold_times.append(time.perf_counter() - started)
        cold_results.append(result.row_set())

    # -- warm: one session, one prepared query, N bindings ----------------
    session = bench_raqlet.session(
        bench_data.facts, executor="compiled", replan_threshold=10
    )
    try:
        prepared = session.prepare(short_query_1(person_ids[0])["query"])
        warm_times = []
        warm_results = []
        plan_builds = index_builds = None
        for person_id in person_ids:
            spec = short_query_1(person_id)
            started = time.perf_counter()
            result = prepared.run(spec["parameters"])
            warm_times.append(time.perf_counter() - started)
            warm_results.append(result.row_set())
            if plan_builds is None:
                plan_builds = prepared.engine.plan_build_count
                index_builds = session.store.index_build_count

        # Same answers, request for request.
        assert warm_results == cold_results
        assert any(warm_results), "the benchmark query returned no rows"

        # The acceptance bar: re-binding does zero re-ingest, zero index
        # rebuilds, zero plan recompiles.
        assert session.ingest_count == 1
        assert prepared.engine.plan_build_count == plan_builds
        assert session.store.index_build_count == index_builds
        assert prepared.engine.replan_count == 0

        # >=5x, comparing best warm re-bind against the best cold run (the
        # first warm run carries the one-off derivation and is excluded).
        best_cold = min(cold_times)
        best_warm = min(warm_times[1:])
        assert best_warm * 5 <= best_cold, (
            f"expected >=5x, got {best_cold / best_warm:.1f}x "
            f"(cold={best_cold * 1000:.1f}ms, warm={best_warm * 1000:.2f}ms)"
        )
    finally:
        session.close()
