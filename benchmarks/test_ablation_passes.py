"""Ablation: the contribution of each optimizer pass (supports Section 5).

DESIGN.md calls out the individual optimizations -- inlining, dead-rule
elimination, semantic join elimination, magic sets -- as separate design
choices.  This harness measures, for complex query 2 and for the bound
reachability query, the Datalog-engine execution time with the full pipeline,
with no optimization, and with each pass group removed, plus the number of
facts the engine derives (the work magic sets is supposed to avoid).
"""

from __future__ import annotations

import pytest

from repro.engines.datalog import DatalogEngine
from repro.ldbc import complex_query_2
from repro.ldbc.queries import friend_reachability
from repro.optimize import (
    ConstantPropagation,
    DeadRuleElimination,
    InlineRules,
    LinearizeRecursion,
    MagicSets,
    PassManager,
    RemoveDuplicateAtoms,
    SemanticJoinElimination,
)


def _pipeline_without(bench_raqlet, skip: str):
    passes = [
        ("constant-propagation", ConstantPropagation()),
        ("inline", InlineRules()),
        ("duplicates", RemoveDuplicateAtoms()),
        ("semantic-join-elimination", SemanticJoinElimination(bench_raqlet.mapping)),
        ("linearize", LinearizeRecursion()),
        ("magic-sets", MagicSets()),
        ("dead-rule-elimination", DeadRuleElimination()),
    ]
    return [instance for name, instance in passes if name != skip]


_VARIANTS = [
    "full",
    "none",
    "no-inline",
    "no-semantic-join-elimination",
    "no-magic-sets",
    "no-dead-rule-elimination",
]


def _optimize_variant(bench_raqlet, program, variant):
    if variant == "none":
        return program
    if variant == "full":
        passes = _pipeline_without(bench_raqlet, skip="nothing")
    else:
        passes = _pipeline_without(bench_raqlet, skip=variant.removeprefix("no-"))
    return PassManager(passes, iterate=True).run(program)


@pytest.mark.parametrize("variant", _VARIANTS)
def test_ablation_cq2(benchmark, bench_raqlet, bench_data, variant):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"], optimize=False)
    program = _optimize_variant(bench_raqlet, compiled.program(optimized=False), variant)
    reference = bench_raqlet.run_on_datalog_engine(compiled, bench_data.facts, optimized=False)

    result = benchmark(lambda: DatalogEngine(program, bench_data.facts).query("Return"))
    assert result.same_rows(reference)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["rules"] = len(program.rules)


@pytest.mark.parametrize("variant", ["full", "none", "no-magic-sets"])
def test_ablation_bound_reachability(benchmark, bench_raqlet, bench_data, variant):
    """Magic sets matter most for bound recursive queries: measure derived facts."""
    spec = friend_reachability(bench_data.dataset.default_person_id())
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"], optimize=False)
    program = _optimize_variant(bench_raqlet, compiled.program(optimized=False), variant)
    reference = bench_raqlet.run_on_datalog_engine(compiled, bench_data.facts, optimized=False)

    def run():
        engine = DatalogEngine(program, bench_data.facts)
        result = engine.query("Return")
        return engine, result

    engine, result = benchmark(run)
    assert result.same_rows(reference)
    derived = sum(
        engine.store.count(name)
        for name in program.idb_names()
    )
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["derived_facts"] = derived


def test_magic_sets_restricts_derived_facts(bench_raqlet, bench_data):
    """The headline claim behind magic sets: far fewer intermediate facts."""
    spec = friend_reachability(bench_data.dataset.default_person_id())
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"], optimize=False)
    unoptimized = compiled.program(optimized=False)
    optimized = _optimize_variant(bench_raqlet, unoptimized, "full")

    engine_unopt = DatalogEngine(unoptimized, bench_data.facts)
    engine_unopt.run()
    engine_opt = DatalogEngine(optimized, bench_data.facts)
    engine_opt.run()
    unopt_facts = sum(engine_unopt.store.count(name) for name in unoptimized.idb_names())
    opt_facts = sum(engine_opt.store.count(name) for name in optimized.idb_names())
    # The friendship graph is a single dense component, so full TC is large;
    # the magic-set version only explores from the bound person.
    assert opt_facts < unopt_facts
