"""Standing queries at fan-out: K=32 subscriptions over a streaming insert mix.

One reachability query template is subscribed under 32 distinct person
bindings; a stream of LDBC ``knows`` inserts then flows through the
session.  The reactive path folds each insert into every standing
derivation incrementally (O(|Δ|) per subscription) and pushes result-row
deltas to the listeners.

The **baseline** is what an application without the reactive layer must
do: after every mutation, re-run all 32 queries and set-diff each answer
against the previous one.  The baseline's diffs double as the **oracle**:
every delta the subscriptions delivered must equal the corresponding
re-run diff exactly — the speedup claim and the correctness claim ride
the same replay.

Assertions:

* end-to-end the reactive stream is **≥ 5×** faster than the re-run-and-
  diff baseline (conservative; observed gap is far larger and widens with
  both K and scale);
* the maintainable stream never falls back: summed ``full_rederive_count``
  across every standing derivation is **zero**;
* every delivered ``(added, removed)`` equals the oracle's set-diff, and
  silent steps (empty diff) deliver nothing.

A second benchmark drives the **columnar** executor's incremental column
maintenance: cold re-runs under rotating bindings over a mutating store
must advance the cached relation encodings by |Δ|
(``columnar_incremental_encode_count``) instead of re-encoding
(``store_encode_count`` stays flat after warm-up).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.ldbc.queries import FRIEND_REACHABILITY, SHORT_QUERY_1

#: standing subscriptions (distinct bindings of one query template)
SUBSCRIPTIONS = 32

#: streamed arrival batches (new person + ``knows`` edge each)
MUTATIONS = 10

#: conservative end-to-end bar for reactive vs re-run-everything
MIN_SPEEDUP = 5.0


def _arrival_batches(facts, anchors, count, seed=11):
    """New persons joining the graph, each knowing one existing anchor.

    Connecting a *new* person guarantees every subscription whose binding
    reaches the anchor gains exactly that person — mutating only existing
    ``knows`` edges rarely changes reachability on the largely-connected
    SNB graph, which would make the stream a silent no-op.
    """
    rng = random.Random(seed)
    width = len(facts["Person"][0])
    batches = []
    for index in range(count):
        new_id = 920_000 + index
        person = (new_id, f"Streamed{index}") + ("x",) * (width - 2)
        anchor = anchors[rng.randrange(len(anchors))]
        edge = (anchor, new_id, 930_000 + index, 0)
        batches.append((person, edge))
    return batches


def test_standing_queries_beat_rerun_and_diff(bench_data, bench_raqlet):
    person_ids = list(bench_data.dataset.person_ids)
    bindings = person_ids[:SUBSCRIPTIONS]
    assert len(bindings) == SUBSCRIPTIONS
    batches = _arrival_batches(bench_data.facts, bindings, MUTATIONS)

    # -- reactive stream: subscribe once, stream mutations -------------------
    deliveries = {pid: [] for pid in bindings}
    session = bench_raqlet.session(bench_data.facts, executor="compiled")
    try:
        template = session.prepare(FRIEND_REACHABILITY)
        for pid in bindings:
            session.subscribe(
                template,
                lambda delta, _pid=pid: deliveries[_pid].append(
                    (set(delta.added), set(delta.removed))
                ),
                personId=pid,
            )
        reactive_times = []
        for person, edge in batches:
            started = time.perf_counter()
            session.insert("Person", [person])
            session.insert("Person_KNOWS_Person", [edge])
            reactive_times.append(time.perf_counter() - started)
        engines = [prepared.engine for prepared in session._all_prepared]
        assert sum(engine.full_rederive_count for engine in engines) == 0
        # every arrival changed at least the anchor's reachable set
        assert (
            sum(len(events) for events in deliveries.values()) >= MUTATIONS
        )
    finally:
        session.close()

    # -- baseline: re-run all K queries per mutation, diff by hand -----------
    oracle = {pid: [] for pid in bindings}
    baseline = bench_raqlet.session(
        bench_data.facts, executor="compiled", ivm=False
    )
    try:
        prepared = {
            pid: baseline.prepare(FRIEND_REACHABILITY) for pid in bindings
        }
        state = {
            pid: prepared[pid].run(personId=pid).row_set() for pid in bindings
        }
        baseline_times = []
        for person, edge in batches:
            started = time.perf_counter()
            baseline.insert("Person", [person])
            baseline.insert("Person_KNOWS_Person", [edge])
            for pid in bindings:
                after = prepared[pid].run(personId=pid).row_set()
                added, removed = after - state[pid], state[pid] - after
                if added or removed:
                    oracle[pid].append((added, removed))
                state[pid] = after
            baseline_times.append(time.perf_counter() - started)
    finally:
        baseline.close()

    # -- correctness: every pushed delta equals the re-run diff --------------
    for pid in bindings:
        assert deliveries[pid] == oracle[pid], (
            f"personId {pid}: subscriptions delivered {deliveries[pid]}, "
            f"re-run oracle says {oracle[pid]}"
        )

    # -- performance ---------------------------------------------------------
    reactive_total = sum(reactive_times)
    baseline_total = sum(baseline_times)
    assert baseline_total >= MIN_SPEEDUP * reactive_total, (
        f"reactive stream took {reactive_total:.4f}s vs re-run baseline "
        f"{baseline_total:.4f}s — only {baseline_total / reactive_total:.1f}×, "
        f"expected ≥ {MIN_SPEEDUP}×"
    )


def test_columnar_cold_runs_advance_encodings_incrementally(
    bench_data, bench_raqlet
):
    """Rotating bindings force cold runs (no IVM reuse), but the columnar
    executor still advances its cached ``Person`` encoding by the insert
    delta instead of re-encoding the full relation every run."""
    pytest.importorskip("numpy", reason="columnar executor requires NumPy")
    person_ids = list(bench_data.dataset.person_ids)
    width = len(bench_data.facts["Person"][0])

    session = bench_raqlet.session(bench_data.facts, executor="columnar")
    try:
        prepared = session.prepare(SHORT_QUERY_1)
        oracle_session = bench_raqlet.session(
            bench_data.facts, executor="compiled"
        )
        try:
            oracle_prepared = oracle_session.prepare(SHORT_QUERY_1)
            prepared.run(personId=person_ids[0])  # warm-up: full encodes
            oracle_prepared.run(personId=person_ids[0])
            executor = prepared.engine.executor
            encodes_after_warmup = executor.store_encode_count
            advances = executor.columnar_incremental_encode_count
            for step in range(MUTATIONS):
                person = (940_000 + step, f"Cold{step}") + ("x",) * (width - 2)
                pid = person_ids[(step + 1) % SUBSCRIPTIONS]
                session.insert("Person", [person])
                oracle_session.insert("Person", [person])
                got = prepared.run(personId=pid).row_set()
                assert got == oracle_prepared.run(personId=pid).row_set()
            assert executor.store_encode_count == encodes_after_warmup
            assert (
                executor.columnar_incremental_encode_count - advances
                >= MUTATIONS
            )
        finally:
            oracle_session.close()
    finally:
        session.close()
