"""Adaptive re-planning vs. frozen first-iteration plans.

The adversarial workload the ROADMAP's "join-order statistics" item asks
for: a recursive relation (``blow``) that starts with a handful of rows and
grows three orders of magnitude past its partner (``sparse``, a small EDB
filter) during the fixpoint.  The victim rule

    victim(x, y) :- tick(n), blow(x, y), sparse(x).

is re-planned once per ``tick`` delta.  At the first semi-naive iteration
``blow`` holds ~6 rows, so *any* size-based planner puts it before
``sparse`` — and a frozen plan keeps scanning the whole of ``blow`` (tens
of thousands of rows by the end) for every tick, only to filter almost all
of it through ``sparse``.  With statistics-driven re-planning the engine
notices ``blow``'s cardinality drifting past the 10× threshold, re-plans,
and probes ``sparse`` (40 rows) first instead.

The assertions pin the *mechanism*, not just the timing: the adaptive
engine must actually have re-planned (``replan_count``), its final victim
plan must order ``sparse`` before ``blow`` while the frozen plan keeps the
first-iteration order, and the speedup must be at least 2× (≈4× in
practice; 2× keeps CI sturdy) with identical results.
"""

from __future__ import annotations

import time

from repro.dlir.builder import ProgramBuilder
from repro.dlir.core import ArithExpr, Const, Var
from repro.engines.datalog import DatalogEngine

#: fixpoint length (tick counts 0..K), warm-up slices, rows per hot slice,
#: distinct x values in ``blow``, size of the ``sparse`` filter
K, WARM, W, XS, S = 30, 3, 800, 50, 40

OUTPUTS = ("tick", "blow", "victim")


def adaptive_program():
    """tick drives the fixpoint; blow grows a grid slice per tick; victim
    joins the growing relation against a small disjoint filter."""
    builder = ProgramBuilder()
    builder.edb("start", [("n", "number")])
    builder.edb("lim", [("n", "number")])
    builder.edb("grid", [("n", "number"), ("x", "number"), ("y", "number")])
    builder.edb("sparse", [("x", "number")])
    builder.idb("tick", [("n", "number")])
    builder.idb("blow", [("x", "number"), ("y", "number")])
    builder.idb("victim", [("x", "number"), ("y", "number")])
    builder.rule("tick", ["n"], [("start", ["n"])])
    builder.rule(
        "tick",
        ["m"],
        [("tick", ["n"]), ("lim", ["n"])],
        comparisons=[("=", "m", ArithExpr("+", Var("n"), Const(1)))],
    )
    builder.rule("blow", ["x", "y"], [("tick", ["n"]), ("grid", ["n", "x", "y"])])
    builder.rule(
        "victim",
        ["x", "y"],
        [("tick", ["n"]), ("blow", ["x", "y"]), ("sparse", ["x"])],
    )
    for relation in OUTPUTS:
        builder.output(relation)
    return builder.build()


def adaptive_facts():
    """Tiny grid slices while plans freeze, huge ones after; sparse is
    disjoint from blow's x domain so a good plan filters immediately."""
    grid = []
    for n in range(K):
        rows = 2 if n < WARM else W
        for i in range(rows):
            grid.append((n, i % XS, n * W + i))
    return {
        "start": [(0,)],
        "lim": [(n,) for n in range(K)],
        "grid": grid,
        "sparse": [(10**6 + i,) for i in range(S)],
    }


def _run(replan_threshold, repeats=3):
    """Run the fixpoint ``repeats`` times; return (best seconds, engine)."""
    best = float("inf")
    engine = None
    for _ in range(repeats):
        # Pinned to the memory store + compiled executor so the comparison
        # isolates the planning strategy.
        engine = DatalogEngine(
            adaptive_program(),
            adaptive_facts(),
            store="memory",
            executor="compiled",
            replan_threshold=replan_threshold,
        )
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best, engine


def _victim_delta_tick_order(engine):
    """The join order of victim's delta-at-tick plan, as relation names."""
    for entry in engine.plan_report():
        if entry["head"] == "victim" and entry["delta_index"] == 0:
            return [relation for relation, _body_index in entry["join_order"]]
    raise AssertionError("victim delta plan not found in plan report")


def test_adaptive_replanning_beats_frozen_plan():
    """Re-planning on cardinality drift is >=2x over the frozen plan, and
    the counters + final join orders prove the mechanism produced it."""
    frozen_seconds, frozen = _run(float("inf"))
    adaptive_seconds, adaptive = _run(None)  # default 10x drift threshold

    # The workload is not degenerate, and planning strategy cannot change
    # results.
    assert adaptive.fact_count("tick") == K + 1
    assert adaptive.fact_count("blow") == 2 * WARM + W * (K - WARM)
    for relation in OUTPUTS:
        assert adaptive.query(relation).same_rows(frozen.query(relation))

    # The mechanism: the frozen engine never re-planned and kept blow before
    # sparse; the adaptive engine re-planned and flipped the order.
    assert frozen.replan_count == 0
    assert adaptive.replan_count >= 1
    frozen_order = _victim_delta_tick_order(frozen)
    adaptive_order = _victim_delta_tick_order(adaptive)
    assert frozen_order.index("blow") < frozen_order.index("sparse")
    assert adaptive_order.index("sparse") < adaptive_order.index("blow")

    assert adaptive_seconds * 2 <= frozen_seconds, (
        f"expected >=2x speedup from adaptive re-planning, got "
        f"{frozen_seconds / adaptive_seconds:.2f}x "
        f"(adaptive={adaptive_seconds * 1000:.1f}ms, "
        f"frozen={frozen_seconds * 1000:.1f}ms, "
        f"replans={adaptive.replan_count})"
    )


def test_always_replan_matches_default_results():
    """REPRO_REPLAN_THRESHOLD=1 semantics: re-planning every iteration (the
    CI leg's configuration) changes plans, never facts."""
    eager = DatalogEngine(
        adaptive_program(), adaptive_facts(), replan_threshold=1
    )
    default = DatalogEngine(adaptive_program(), adaptive_facts())
    eager.run()
    default.run()
    for relation in OUTPUTS:
        assert eager.query(relation).same_rows(default.query(relation))
    # With the floor threshold every per-iteration drift check fires.
    assert eager.replan_count >= adaptive_iterations_lower_bound()


def adaptive_iterations_lower_bound():
    """The fixpoint runs at least K iterations; each re-checks the plans."""
    return K
