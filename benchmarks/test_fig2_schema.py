"""Figure 2: the PG-Schema to DL-Schema data-model transformation.

The paper's Figure 2 shows the running example's PG-Schema (2a) and the
DL-Schema Raqlet derives from it (2b).  The benchmark regenerates that
transformation -- for the paper's 3-relation example schema and for the full
SNB schema -- and asserts the exact shape of Figure 2b.
"""

from __future__ import annotations

from repro.ldbc.schema import SNB_PG_SCHEMA_TEXT
from repro.schema import parse_pg_schema, pg_to_dl_schema

PAPER_SCHEMA_TEXT = """
CREATE GRAPH {
  (personType : Person { id INT, firstName STRING, locationIP STRING }),
  (cityType : City { id INT, name STRING }),
  (:personType)-[locationType : isLocatedIn { id INT }]->(:cityType)
}
"""


def test_fig2_paper_schema_shape():
    mapping = pg_to_dl_schema(parse_pg_schema(PAPER_SCHEMA_TEXT))
    rendered = sorted(str(relation) for relation in mapping.dl_schema)
    assert rendered == [
        "City(id:number, name:symbol)",
        "Person(id:number, firstName:symbol, locationIP:symbol)",
        "Person_IS_LOCATED_IN_City(id1:number, id2:number, id:number)",
    ]


def test_fig2_translate_paper_schema(benchmark):
    mapping = benchmark(lambda: pg_to_dl_schema(parse_pg_schema(PAPER_SCHEMA_TEXT)))
    assert len(mapping.dl_schema) == 3


def test_fig2_translate_snb_schema(benchmark):
    mapping = benchmark(lambda: pg_to_dl_schema(parse_pg_schema(SNB_PG_SCHEMA_TEXT)))
    # 6 node types + 11 edge types.
    assert len(mapping.dl_schema) == 17
    assert mapping.dl_schema.get("Person_KNOWS_Person").column_names() == [
        "id1",
        "id2",
        "id",
        "creationDate",
    ]
