"""The shared TC + cycle-audit micro workload.

One definition used by every benchmark that runs this fixpoint
(`test_recursion_micro.py`, `test_store_backends.py`, `test_executors.py`),
so index-strategy, store-backend and executor comparisons all measure the
*same* workload and cannot drift apart.

The ``cyclic`` rule joins ``tc`` against itself with a fully bound key, so
every fixpoint iteration probes the full (growing) ``tc`` relation — the
shape that exposes per-probe and per-row costs.  The fact set is a deep
chain (many fixpoint iterations, quadratic closure) with one back edge so
the cycle audit has matches.
"""

from __future__ import annotations

from repro.dlir.builder import ProgramBuilder

#: chain length of the largest micro case
TC_FIXPOINT_NODES = 120


def tc_cycle_program():
    """Transitive closure plus a cycle audit probing the growing relation."""
    builder = ProgramBuilder()
    builder.edb("edge", [("a", "number"), ("b", "number")])
    builder.idb("tc", [("a", "number"), ("b", "number")])
    builder.idb("cyclic", [("a", "number"), ("b", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("tc", ["x", "z"]), ("edge", ["z", "y"])])
    builder.rule("cyclic", ["x", "y"], [("tc", ["x", "y"]), ("tc", ["y", "x"])])
    builder.output("tc")
    builder.output("cyclic")
    return builder.build()


def tc_fixpoint_facts(nodes: int = TC_FIXPOINT_NODES):
    """A chain of ``nodes`` with one back edge (the cycle-audit matches)."""
    edges = [(index, index + 1) for index in range(nodes - 1)]
    edges.append((nodes - 1, nodes - 5))
    return {"edge": edges}
