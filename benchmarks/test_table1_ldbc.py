"""Table 1: execution time of LDBC SQ1 and CQ2 across backends.

The paper reports execution times (ms) for the original Cypher query on Neo4j
and for the translated Datalog / SQL queries on Soufflé, DuckDB and HyPer,
unoptimized and fully optimized (SF10).  This harness regenerates the same
grid over the substitute engines:

=============  =========================================
paper system   this repository
=============  =========================================
Neo4j          ``graph`` (PGIR interpreter)
Soufflé        ``datalog`` (semi-naive DLIR engine)
DuckDB         ``relational`` (SQIR executor)
HyPer          ``sqlite`` (generated SQL on SQLite)
=============  =========================================

Absolute numbers differ (pure-Python substrate, synthetic data, smaller
scale); the *shape* to compare against the paper is (a) the translated and
optimized Datalog/SQL runs beat the unoptimized ones, and (b) the translated
queries are competitive with or faster than the graph-native execution.
Each benchmark also checks that the engines agree on the result rows.
"""

from __future__ import annotations

import pytest

from repro.ldbc import complex_query_2, short_query_1


def _query_spec(name, data):
    person_id = data.dataset.default_person_id()
    if name == "SQ1":
        return short_query_1(person_id)
    return complex_query_2(person_id, data.dataset.median_message_date())


def _compile(raqlet, data, query_name):
    spec = _query_spec(query_name, data)
    return raqlet.compile_cypher(spec["query"], spec["parameters"])


_GRID = [
    (query, backend, optimized)
    for query in ("SQ1", "CQ2")
    for backend in ("graph", "datalog", "relational", "sqlite")
    for optimized in (False, True)
    # The graph engine always executes the original (PGIR) query; the
    # optimized flag does not apply, so it is benchmarked once.
    if not (backend == "graph" and optimized)
]


@pytest.mark.parametrize(
    "query_name,backend,optimized",
    _GRID,
    ids=[
        f"{query}-{backend}-{'opt' if optimized else 'unopt'}"
        for query, backend, optimized in _GRID
    ],
)
def test_table1_execution_time(benchmark, bench_raqlet, bench_data, query_name, backend, optimized):
    compiled = _compile(bench_raqlet, bench_data, query_name)
    reference = bench_raqlet.run_on_datalog_engine(compiled, bench_data.facts, optimized=True)

    if backend == "graph":
        run = lambda: bench_raqlet.run_on_graph_engine(compiled, bench_data.property_graph())
    elif backend == "datalog":
        run = lambda: bench_raqlet.run_on_datalog_engine(
            compiled, bench_data.facts, optimized=optimized
        )
    elif backend == "relational":
        run = lambda: bench_raqlet.run_on_relational_engine(
            compiled, bench_data.relational_database(), optimized=optimized
        )
    else:
        run = lambda: bench_raqlet.run_on_sqlite(
            compiled, bench_data.sqlite_executor(), optimized=optimized
        )

    result = benchmark(run)
    assert result.same_rows(reference)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["optimized"] = optimized
    benchmark.extra_info["rows"] = len(result)


def test_table1_datalog_plan_cache_not_slower_than_seed_strategy(
    bench_raqlet, bench_data
):
    """Before/after check for the Datalog engine's compiled-plan path.

    Runs the optimized CQ2 program in both engine modes: the current one
    (cached rule plans + incrementally maintained indexes) and the seed
    strategy (per-call planning, indexes invalidated on insert).  The
    results must agree, every index must be built exactly once, and the new
    mode must not lose to the seed strategy.  This workload is mostly
    non-recursive so the modes are near parity; the 1.5x headroom exists to
    absorb scheduler/GC noise on shared CI runners, not to hide a
    regression (the recursive win is asserted tightly in
    ``test_recursion_micro.py``).
    """
    import time

    from repro.engines.datalog import DatalogEngine

    compiled = _compile(bench_raqlet, bench_data, "CQ2")
    program = compiled.program(optimized=True)

    def best_of(incremental, repeats=5):
        best = float("inf")
        engine = None
        for _ in range(repeats):
            # Pinned to the memory backend: this compares the memory store's
            # index strategies (REPRO_STORE must not redirect it).
            engine = DatalogEngine(
                program,
                bench_data.facts,
                incremental_indexes=incremental,
                reuse_plans=incremental,
                store="memory",
            )
            started = time.perf_counter()
            engine.run()
            best = min(best, time.perf_counter() - started)
        return best, engine

    fast, fast_engine = best_of(True)
    slow, slow_engine = best_of(False)
    assert fast_engine.query().same_rows(slow_engine.query())
    assert fast_engine.store.index_build_count == fast_engine.store.index_count
    assert fast <= slow * 1.5, (
        f"compiled plans regressed: new={fast * 1000:.1f}ms "
        f"seed-strategy={slow * 1000:.1f}ms"
    )


def test_table1_optimization_reduces_rule_count(bench_raqlet, bench_data):
    """Sanity check behind Table 1: optimization shrinks both programs."""
    for query_name in ("SQ1", "CQ2"):
        compiled = _compile(bench_raqlet, bench_data, query_name)
        unoptimized_rules = len(compiled.program(optimized=False).rules)
        optimized_rules = len(compiled.program(optimized=True).rules)
        assert optimized_rules < unoptimized_rules
