"""Executor comparisons: interpreted vs. compiled vs. columnar.

The compiled executor removes the interpreter's per-row costs (bindings-dict
copies, per-step dispatch, per-element key assembly) by source-generating
one closure per plan, and batches each join step's index probes through
``StoreBackend.lookup_many``.  These benchmarks pin the headline claims:

* the compiled executor is **at least 1.5x** faster than the interpreter on
  the transitive-closure micro workload (in practice ~2x; 1.5x keeps CI
  sturdy), with identical results;
* on the SQLite store every batched probe costs **one SQL query**, i.e. at
  most one query per (join step, rule application) instead of one per row;
* the columnar executor is **at least 3x** faster than the compiled one on
  the dense-join micro (in practice ~10x: the join never leaves NumPy, and
  liveness analysis turns the second join into a semi-join mask instead of
  an O(output) row expansion), with identical results and zero fallbacks.

Every comparison runs the *same* compiled plans against the same store
backend, so the numbers isolate execution strategy.
"""

from __future__ import annotations

import time

import pytest

from tc_workload import tc_cycle_program, tc_fixpoint_facts

from repro.engines.datalog import DatalogEngine
from repro.ldbc import complex_query_2

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-less CI legs
    HAVE_NUMPY = False

EXECUTORS = ("interpreted", "compiled") + (("columnar",) if HAVE_NUMPY else ())


def _run_tc(executor, repeats=3):
    """Run the TC fixpoint ``repeats`` times; return (best seconds, engine)."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    best = float("inf")
    engine = None
    for _ in range(repeats):
        # Pinned to the memory store: this benchmark compares executors, so
        # REPRO_STORE must not redirect it.
        engine = DatalogEngine(program, facts, store="memory", executor=executor)
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best, engine


def test_tc_micro_compiled_beats_interpreted():
    """The compiled executor is >= 1.5x the interpreter on the TC micro."""
    fast, fast_engine = _run_tc("compiled")
    slow, slow_engine = _run_tc("interpreted")
    assert fast_engine.query("tc").same_rows(slow_engine.query("tc"))
    assert fast_engine.query("cyclic").same_rows(slow_engine.query("cyclic"))
    assert fast_engine.fact_count("cyclic") > 0  # the audit is not vacuous
    assert fast * 1.5 <= slow, (
        f"expected >=1.5x speedup, got {slow / fast:.2f}x "
        f"(compiled={fast * 1000:.1f}ms, interpreted={slow * 1000:.1f}ms)"
    )


def test_tc_micro_sqlite_batches_one_query_per_step():
    """On SQLite, lookup_many answers each join step's batch with one SELECT.

    The compiled executor issues one ``lookup_many`` per non-delta join step
    per rule application; the recursive ``tc`` rule and the ``cyclic`` audit
    (two delta positions) contribute at most three such steps per fixpoint
    iteration, so the query count is bounded by ``3 * iterations`` — and
    every batched probe must have cost exactly one SQL query, however many
    delta rows it carried.
    """
    program = tc_cycle_program()
    engine = DatalogEngine(
        program, tc_fixpoint_facts(), store="sqlite", executor="compiled"
    )
    engine.run()
    store = engine.store
    assert store.batch_probe_count > 0
    assert store.batch_probe_query_count == store.batch_probe_count
    assert store.batch_probe_query_count <= 3 * engine.iteration_count("tc")
    # The batched path preserves the "each index is built exactly once"
    # invariant the store benchmarks assert.
    assert store.index_build_count == store.index_count
    store.close()


def _dense_join_case(n):
    """``hub(x) :- r(x, y), s(y, z)`` over two n x n integer grids.

    The shape the columnar executor exists for: one dense hash join whose
    intermediate (n^3 pairs under tuple-at-a-time execution) dwarfs the
    input, no recursion, no per-row Python work needed anywhere.
    """
    from repro.dlir.builder import ProgramBuilder

    builder = ProgramBuilder()
    builder.edb("r", [("a", "number"), ("b", "number")])
    builder.edb("s", [("a", "number"), ("b", "number")])
    builder.idb("hub", [("a", "number")])
    builder.rule("hub", ["x"], [("r", ["x", "y"]), ("s", ["y", "z"])])
    program = builder.output("hub").build()
    grid = [(i, j) for i in range(n) for j in range(n)]
    return program, {"r": grid, "s": list(grid)}


def _run_dense_join(executor_factory, n, repeats=3):
    program, facts = _dense_join_case(n)
    best = float("inf")
    engine = executor = None
    for _ in range(repeats):
        executor = executor_factory()
        # Pinned to the memory store: this benchmark compares executors.
        engine = DatalogEngine(program, facts, store="memory", executor=executor)
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best, engine, executor


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar executor requires NumPy")
def test_dense_join_columnar_beats_compiled():
    """The columnar executor is >= 3x the compiled one on the dense join.

    Observed ~10-15x; 3x keeps CI sturdy on noisy machines.  The counters
    prove the claim is about the vectorised path: the whole program ran
    columnar (zero static or runtime fallbacks).
    """
    from repro.engines.datalog import ColumnarExecutor

    n = 100
    fast, fast_engine, executor = _run_dense_join(ColumnarExecutor, n)
    slow, slow_engine, _ = _run_dense_join(lambda: "compiled", n)
    assert fast_engine.query("hub").same_rows(slow_engine.query("hub"))
    assert fast_engine.fact_count("hub") == n
    assert executor.vectorised_count > 0
    assert executor.fallback_count == 0
    assert executor.runtime_fallback_count == 0
    assert fast_engine.executor_fallback_count == 0
    assert fast * 3 <= slow, (
        f"expected >=3x speedup, got {slow / fast:.2f}x "
        f"(columnar={fast * 1000:.1f}ms, compiled={slow * 1000:.1f}ms)"
    )


@pytest.mark.parametrize("executor", EXECUTORS)
def test_tc_fixpoint_executors(benchmark, executor):
    """The TC + cycle-audit micro under each executor (timing trajectory)."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    reference = DatalogEngine(
        program, facts, store="memory", executor="interpreted"
    ).query("tc")

    def run():
        engine = DatalogEngine(program, facts, store="memory", executor=executor)
        engine.run()
        return engine

    engine = benchmark(run)
    assert engine.query("tc").same_rows(reference)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["tc_facts"] = engine.fact_count("tc")


@pytest.mark.parametrize("executor", EXECUTORS)
def test_ldbc_cq2_executors(benchmark, bench_raqlet, bench_data, executor):
    """LDBC CQ2 (the heavier Table 1 workload) under each executor."""
    person_id = bench_data.dataset.default_person_id()
    spec = complex_query_2(person_id, bench_data.dataset.median_message_date())
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
    reference = bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store="memory", executor="interpreted"
    )

    run = lambda: bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store="memory", executor=executor
    )
    result = benchmark(run)
    assert result.same_rows(reference)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["rows"] = len(result)
