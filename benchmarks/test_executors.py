"""Compiled vs. interpreted plan execution on the TC micro and LDBC CQ2.

The compiled executor removes the interpreter's per-row costs (bindings-dict
copies, per-step dispatch, per-element key assembly) by source-generating
one closure per plan, and batches each join step's index probes through
``StoreBackend.lookup_many``.  These benchmarks pin the two headline claims:

* the compiled executor is **at least 1.5x** faster than the interpreter on
  the transitive-closure micro workload (in practice ~2x; 1.5x keeps CI
  sturdy), with identical results;
* on the SQLite store every batched probe costs **one SQL query**, i.e. at
  most one query per (join step, rule application) instead of one per row.

Both executors run against the *same* compiled plans and the same store
backend in every comparison, so the numbers isolate execution strategy.
"""

from __future__ import annotations

import time

import pytest

from tc_workload import tc_cycle_program, tc_fixpoint_facts

from repro.engines.datalog import DatalogEngine
from repro.ldbc import complex_query_2

EXECUTORS = ("interpreted", "compiled")


def _run_tc(executor, repeats=3):
    """Run the TC fixpoint ``repeats`` times; return (best seconds, engine)."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    best = float("inf")
    engine = None
    for _ in range(repeats):
        # Pinned to the memory store: this benchmark compares executors, so
        # REPRO_STORE must not redirect it.
        engine = DatalogEngine(program, facts, store="memory", executor=executor)
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best, engine


def test_tc_micro_compiled_beats_interpreted():
    """The compiled executor is >= 1.5x the interpreter on the TC micro."""
    fast, fast_engine = _run_tc("compiled")
    slow, slow_engine = _run_tc("interpreted")
    assert fast_engine.query("tc").same_rows(slow_engine.query("tc"))
    assert fast_engine.query("cyclic").same_rows(slow_engine.query("cyclic"))
    assert fast_engine.fact_count("cyclic") > 0  # the audit is not vacuous
    assert fast * 1.5 <= slow, (
        f"expected >=1.5x speedup, got {slow / fast:.2f}x "
        f"(compiled={fast * 1000:.1f}ms, interpreted={slow * 1000:.1f}ms)"
    )


def test_tc_micro_sqlite_batches_one_query_per_step():
    """On SQLite, lookup_many answers each join step's batch with one SELECT.

    The compiled executor issues one ``lookup_many`` per non-delta join step
    per rule application; the recursive ``tc`` rule and the ``cyclic`` audit
    (two delta positions) contribute at most three such steps per fixpoint
    iteration, so the query count is bounded by ``3 * iterations`` — and
    every batched probe must have cost exactly one SQL query, however many
    delta rows it carried.
    """
    program = tc_cycle_program()
    engine = DatalogEngine(
        program, tc_fixpoint_facts(), store="sqlite", executor="compiled"
    )
    engine.run()
    store = engine.store
    assert store.batch_probe_count > 0
    assert store.batch_probe_query_count == store.batch_probe_count
    assert store.batch_probe_query_count <= 3 * engine.iteration_count("tc")
    # The batched path preserves the "each index is built exactly once"
    # invariant the store benchmarks assert.
    assert store.index_build_count == store.index_count
    store.close()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_tc_fixpoint_executors(benchmark, executor):
    """The TC + cycle-audit micro under each executor (timing trajectory)."""
    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    reference = DatalogEngine(
        program, facts, store="memory", executor="interpreted"
    ).query("tc")

    def run():
        engine = DatalogEngine(program, facts, store="memory", executor=executor)
        engine.run()
        return engine

    engine = benchmark(run)
    assert engine.query("tc").same_rows(reference)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["tc_facts"] = engine.fact_count("tc")


@pytest.mark.parametrize("executor", EXECUTORS)
def test_ldbc_cq2_executors(benchmark, bench_raqlet, bench_data, executor):
    """LDBC CQ2 (the heavier Table 1 workload) under each executor."""
    person_id = bench_data.dataset.default_person_id()
    spec = complex_query_2(person_id, bench_data.dataset.median_message_date())
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
    reference = bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store="memory", executor="interpreted"
    )

    run = lambda: bench_raqlet.run_on_datalog_engine(
        compiled, bench_data.facts, store="memory", executor=executor
    )
    result = benchmark(run)
    assert result.same_rows(reference)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["rows"] = len(result)
