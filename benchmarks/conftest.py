"""Shared fixtures for the benchmark harness.

The dataset scale can be raised with the ``RAQLET_BENCH_SCALE`` environment
variable (number of persons; default 200).  The default keeps the whole
benchmark suite in the tens of seconds on a laptop while preserving the
relative ordering the paper's Table 1 reports.
"""

from __future__ import annotations

import os

import pytest

from repro import Raqlet
from repro.ldbc import load_dataset, snb_schema_mapping

BENCH_SCALE = int(os.environ.get("RAQLET_BENCH_SCALE", "200"))
BENCH_SEED = int(os.environ.get("RAQLET_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def bench_data():
    """The SNB dataset used by every benchmark, with engines prebuilt."""
    data = load_dataset(scale_persons=BENCH_SCALE, seed=BENCH_SEED)
    # Materialise every engine once so per-benchmark timings exclude loading.
    data.relational_database()
    data.property_graph()
    data.sqlite_executor()
    yield data
    data.close()


@pytest.fixture(scope="session")
def bench_raqlet():
    """A Raqlet compiler over the SNB schema."""
    return Raqlet(snb_schema_mapping())
