"""Figure 3: the running example at every stage of the translation pipeline.

Figure 3 shows short query 1 as (a) Cypher, (b) PGIR, (c) DLIR, (d) generated
Soufflé Datalog and (e) generated SQL.  The benchmark regenerates every stage,
asserts the structural facts visible in the figure, and times each individual
translation step so the cost distribution across the pipeline is visible.
"""

from __future__ import annotations

import pytest

from repro.dlir import translate_pgir_to_dlir
from repro.backends import dlir_to_souffle, sqir_to_sql
from repro.frontend.cypher import parse_cypher
from repro.pgir import lower_cypher_to_pgir
from repro.sqir import translate_dlir_to_sqir

RUNNING_EXAMPLE = """
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
"""


@pytest.fixture(scope="module")
def snb_mapping(bench_raqlet):
    return bench_raqlet.mapping


def test_fig3_stage_artifacts(bench_raqlet):
    compiled = bench_raqlet.compile_cypher(RUNNING_EXAMPLE)
    # (b) PGIR: MATCH / WHERE / RETURN constructs with the generated x1 edge id.
    pgir_text = compiled.pgir_text()
    assert "x1" in pgir_text and "RETURN DISTINCT" in pgir_text
    # (c) DLIR: Match1 / Where1 / Return rules.
    rule_names = [rule.head.relation for rule in compiled.program(optimized=False).rules]
    assert rule_names == ["Match1", "Where1", "Return"]
    # (d) Soufflé Datalog text with declarations and the output directive.
    datalog_text = compiled.datalog_text(optimized=False)
    assert ".decl Return(firstName:symbol, cityId:number)" in datalog_text
    # (e) SQL text: three CTEs and a final SELECT DISTINCT.
    sql_text = compiled.sql_text(optimized=False)
    assert sql_text.count(" AS (") == 3 and "SELECT DISTINCT" in sql_text


def test_fig3a_parse_cypher(benchmark):
    ast = benchmark(lambda: parse_cypher(RUNNING_EXAMPLE))
    assert ast.return_clause().distinct


def test_fig3b_lower_to_pgir(benchmark):
    ast = parse_cypher(RUNNING_EXAMPLE)
    lowering = benchmark(lambda: lower_cypher_to_pgir(ast))
    assert len(lowering.query.clauses) == 3


def test_fig3c_translate_to_dlir(benchmark, snb_mapping):
    lowering = lower_cypher_to_pgir(parse_cypher(RUNNING_EXAMPLE))
    program = benchmark(lambda: translate_pgir_to_dlir(lowering, snb_mapping))
    assert len(program.rules) == 3


def test_fig3d_unparse_to_souffle(benchmark, snb_mapping):
    lowering = lower_cypher_to_pgir(parse_cypher(RUNNING_EXAMPLE))
    program = translate_pgir_to_dlir(lowering, snb_mapping)
    text = benchmark(lambda: dlir_to_souffle(program))
    assert ".output Return" in text


def test_fig3e_unparse_to_sql(benchmark, snb_mapping):
    lowering = lower_cypher_to_pgir(parse_cypher(RUNNING_EXAMPLE))
    program = translate_pgir_to_dlir(lowering, snb_mapping)
    sql = benchmark(lambda: sqir_to_sql(translate_dlir_to_sqir(program)))
    assert "WITH" in sql
