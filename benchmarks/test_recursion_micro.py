"""Recursion microbenchmarks across engines (supports Sections 2 and 5).

The paper's survey (Section 2) discusses which classes of recursive queries
perform best on which paradigm (Soufflé beating RDBMS on transitive closure,
RDBMS winning on aggregation-heavy workloads, and so on).  These
microbenchmarks exercise the classic recursive queries on synthetic graphs on
every engine in the repository:

* transitive closure from a bound source (chain and random graph),
* same-generation (the classic non-linear Datalog example, linearized for SQL),
* shortest path (Datalog engine with subsumption vs. graph-engine BFS),
* the transitive-closure fixpoint with a cycle audit, comparing the Datalog
  engine's compiled plans + incrementally maintained indexes against the
  seed strategy (per-call planning, indexes invalidated on every insert).
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Raqlet
from repro.engines.graph import facts_to_property_graph
from repro.engines.relational import Database
from repro.engines.sqlite_exec import SQLiteExecutor

GRAPH_SCHEMA = """
CREATE GRAPH {
  (nodeType : Node { id INT, name STRING }),
  (:nodeType)-[linkType : linksTo { id INT }]->(:nodeType)
}
"""

TC_QUERY = "MATCH (a:Node {id: 0})-[:LINKS_TO*]->(b:Node) RETURN b.id AS target"
SHORTEST_QUERY = (
    "MATCH p = shortestPath((a:Node {id: 0})-[:LINKS_TO*]->(b:Node {id: $target})) "
    "RETURN length(p) AS hops"
)


def _random_graph_facts(nodes=300, extra_edges=450, seed=13):
    rng = random.Random(seed)
    edges = [(index, index + 1, index) for index in range(nodes - 1)]
    edge_id = nodes
    for _ in range(extra_edges):
        src, dst = rng.randrange(nodes), rng.randrange(nodes)
        if src != dst:
            edge_id += 1
            edges.append((src, dst, edge_id))
    return {
        "Node": [(index, f"n{index}") for index in range(nodes)],
        "Node_LINKS_TO_Node": edges,
    }


@pytest.fixture(scope="module")
def graph_raqlet():
    return Raqlet(GRAPH_SCHEMA)


@pytest.fixture(scope="module")
def graph_facts():
    return _random_graph_facts()


@pytest.fixture(scope="module")
def graph_engines(graph_raqlet, graph_facts):
    database = Database()
    for relation in graph_raqlet.dl_schema.edb_relations():
        database.create_table(relation.name, relation.column_names())
        database.insert_many(relation.name, graph_facts.get(relation.name, []))
    graph = facts_to_property_graph(graph_facts, graph_raqlet.mapping)
    sqlite_executor = SQLiteExecutor(graph_raqlet.dl_schema, graph_facts)
    sqlite_executor.create_indexes()
    yield {"database": database, "graph": graph, "sqlite": sqlite_executor}
    sqlite_executor.close()


@pytest.mark.parametrize("backend", ["datalog", "relational", "sqlite", "graph"])
def test_transitive_closure_bound_source(benchmark, graph_raqlet, graph_facts, graph_engines, backend):
    compiled = graph_raqlet.compile_cypher(TC_QUERY)
    reference = graph_raqlet.run_on_datalog_engine(compiled, graph_facts)
    if backend == "datalog":
        run = lambda: graph_raqlet.run_on_datalog_engine(compiled, graph_facts)
    elif backend == "relational":
        run = lambda: graph_raqlet.run_on_relational_engine(compiled, graph_engines["database"])
    elif backend == "sqlite":
        run = lambda: graph_raqlet.run_on_sqlite(compiled, graph_engines["sqlite"])
    else:
        run = lambda: graph_raqlet.run_on_graph_engine(compiled, graph_engines["graph"])
    result = benchmark(run)
    assert result.same_rows(reference)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["reachable"] = len(result)


@pytest.mark.parametrize("backend", ["datalog", "graph"])
def test_shortest_path_length(benchmark, graph_raqlet, graph_facts, graph_engines, backend):
    compiled = graph_raqlet.compile_cypher(SHORTEST_QUERY, {"target": 250})
    reference = graph_raqlet.run_on_datalog_engine(compiled, graph_facts)
    if backend == "datalog":
        run = lambda: graph_raqlet.run_on_datalog_engine(compiled, graph_facts)
    else:
        run = lambda: graph_raqlet.run_on_graph_engine(compiled, graph_engines["graph"])
    result = benchmark(run)
    assert result.same_rows(reference)
    assert len(result) == 1


# The shared TC + cycle-audit workload: the ``cyclic`` rule probes the full
# (growing) ``tc`` relation with a fully bound key every iteration.  With
# incrementally maintained indexes each probe is O(1); with the seed
# strategy the ``tc`` index is invalidated by every insert and rebuilt from
# scratch once per iteration.
from tc_workload import tc_cycle_program, tc_fixpoint_facts


def _run_tc_fixpoint(incremental, repeats=3):
    """Run the fixpoint ``repeats`` times; return (best seconds, engine)."""
    from repro.engines.datalog import DatalogEngine

    program = tc_cycle_program()
    facts = tc_fixpoint_facts()
    best = float("inf")
    engine = None
    for _ in range(repeats):
        # Pinned to the memory backend and the interpreted executor: this
        # benchmark compares the memory store's two index strategies, so
        # neither REPRO_STORE nor REPRO_EXECUTOR may redirect it (and the
        # compiled executor would mask the per-probe cost being measured).
        engine = DatalogEngine(
            program,
            facts,
            incremental_indexes=incremental,
            reuse_plans=incremental,
            store="memory",
            executor="interpreted",
        )
        started = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - started)
    return best, engine


def test_tc_fixpoint_compiled_plans_beat_seed_strategy():
    """Compiled plans + incremental indexes are >= 2x the seed strategy.

    The seed evaluator re-planned every rule application and dropped every
    index of a relation on insert, which in a semi-naive fixpoint means one
    full index rebuild per iteration.  This asserts the headline win on the
    largest micro case (in practice the gap is ~10x; 2x keeps CI sturdy).
    """
    fast, fast_engine = _run_tc_fixpoint(incremental=True)
    slow, slow_engine = _run_tc_fixpoint(incremental=False)
    assert fast_engine.query("tc").same_rows(slow_engine.query("tc"))
    assert fast_engine.query("cyclic").same_rows(slow_engine.query("cyclic"))
    assert fast_engine.fact_count("cyclic") > 0  # the audit is not vacuous
    assert fast * 2 <= slow, (
        f"expected >=2x speedup, got {slow / fast:.2f}x "
        f"(fast={fast * 1000:.1f}ms, slow={slow * 1000:.1f}ms)"
    )


def test_tc_fixpoint_builds_each_index_exactly_once():
    """No index rebuilds inside the fixpoint loop.

    With incremental maintenance every ``(relation, positions)`` index is
    constructed exactly once, so the store's build counter must equal its
    index count after the whole fixpoint has run.  The seed strategy, by
    contrast, rebuilds once per iteration.
    """
    _, engine = _run_tc_fixpoint(incremental=True, repeats=1)
    store = engine.store
    assert store.index_count > 0
    assert store.index_build_count == store.index_count

    _, legacy_engine = _run_tc_fixpoint(incremental=False, repeats=1)
    legacy_store = legacy_engine.store
    assert legacy_store.index_build_count > legacy_store.index_count


def test_same_generation_datalog_vs_sqlite(benchmark, graph_raqlet):
    """The classic same-generation program, written directly in Datalog."""
    from repro.engines.datalog import evaluate_program
    from repro.engines.sqlite_exec import run_sql_on_sqlite
    from repro.optimize.linearize import LinearizeRecursion

    program_text = """
    .decl parent(child:number, par:number)
    .decl sg(a:number, b:number)
    sg(x, y) :- parent(x, p), parent(y, p), x != y.
    sg(x, y) :- parent(x, px), sg(px, py), parent(y, py).
    .output sg
    """
    compiled = graph_raqlet.compile_datalog(program_text, optimize=False)
    rng = random.Random(7)
    parent_facts = []
    # A shallow forest: 3 roots, branching factor ~3, depth ~4.
    next_id = 3
    frontier = [0, 1, 2]
    for _depth in range(4):
        new_frontier = []
        for parent in frontier:
            for _ in range(rng.randrange(2, 4)):
                parent_facts.append((next_id, parent))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    facts = {"parent": parent_facts}

    program = compiled.program(optimized=False)
    datalog_result = benchmark(lambda: evaluate_program(program, facts, relation="sg"))

    linearized = LinearizeRecursion().run(program)
    from repro.backends import sqir_to_sql
    from repro.sqir import translate_dlir_to_sqir

    sql = sqir_to_sql(translate_dlir_to_sqir(linearized, output="sg"), dialect="sqlite")
    sqlite_result = run_sql_on_sqlite(program.schema, facts, sql)
    assert datalog_result.same_rows(sqlite_result)
    benchmark.extra_info["sg_pairs"] = len(datalog_result)
