"""Figure 1: the architecture diagram's implemented translation edges.

Figure 1 shows Raqlet's architecture: parsers (Cypher, Soufflé Datalog as
implemented; GQL and SQL/PGQ planned), the PGIR -> DLIR -> SQIR transformation
spine with analyses and optimizations at the DLIR level, and unparsers
(Soufflé Datalog, SQL, Cypher).  This harness walks every implemented edge of
the diagram end-to-end and times the full compilation path, which is the
"compilation is cheap relative to execution" premise of a source-to-source
compiler.
"""

from __future__ import annotations

from repro.ldbc import complex_query_2


def test_fig1_every_implemented_edge_runs(bench_raqlet, bench_data):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
    # Frontend edges.
    assert compiled.lowering is not None                       # Cypher -> PGIR
    assert compiled.program(optimized=False).rules             # PGIR -> DLIR
    # Middle-end.
    assert compiled.analysis is not None                       # analyses at DLIR level
    assert compiled.optimization_trace is not None             # optimizations at DLIR level
    # Backend edges.
    assert ".decl" in compiled.datalog_text()                  # DLIR -> Soufflé
    assert "SELECT" in compiled.sql_text()                     # DLIR -> SQIR -> SQL
    assert "MATCH" in compiled.cypher_text()                   # PGIR -> Cypher
    # Datalog frontend edge (Soufflé text parsed back into DLIR).
    reparsed = bench_raqlet.compile_datalog(compiled.datalog_text(optimized=False))
    assert reparsed.program(optimized=False).rules
    # SQL frontend edge (generated SQL parsed back through SQIR into DLIR).
    recompiled = bench_raqlet.compile_sql(compiled.sql_text(optimized=False))
    assert recompiled.program(optimized=False).rules


def test_fig1_compile_cypher_to_all_targets(benchmark, bench_raqlet, bench_data):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )

    def compile_all():
        compiled = bench_raqlet.compile_cypher(spec["query"], spec["parameters"])
        return compiled.datalog_text(), compiled.sql_text(), compiled.cypher_text()

    datalog_text, sql_text, cypher_text = benchmark(compile_all)
    assert datalog_text and sql_text and cypher_text


def test_fig1_datalog_frontend_round_trip(benchmark, bench_raqlet, bench_data):
    spec = complex_query_2(
        bench_data.dataset.default_person_id(), bench_data.dataset.median_message_date()
    )
    datalog_text = bench_raqlet.compile_cypher(
        spec["query"], spec["parameters"]
    ).datalog_text(optimized=False)

    compiled = benchmark(lambda: bench_raqlet.compile_datalog(datalog_text))
    assert compiled.sql_text()
