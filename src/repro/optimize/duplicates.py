"""Duplicate-atom removal and key-based self-join elimination.

Two cleanups that typically become possible after inlining:

* *exact duplicates*: the same literal appearing twice in one body,
* *key self-joins*: two atoms over the same relation whose key column (the
  first column, which holds the node id by construction of the DL-Schema)
  is the same term.  The second atom is merged into the first by unifying
  the remaining columns, which removes a join the paper attributes to
  "removing self-joins on primary keys".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dlir.core import (
    Atom,
    Comparison,
    DLIRProgram,
    Literal,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.optimize.base import Pass
from repro.optimize.inline import remove_duplicate_literals


def _merge_atoms(first: Atom, second: Atom) -> Optional[Tuple[Atom, List[Literal]]]:
    """Merge two atoms over the same relation and key.

    Returns the merged atom plus any equality constraints needed when both
    atoms bind the same column to different non-wildcard variables.  Returns
    ``None`` when the atoms bind a column to two different constants (the
    join is empty and the rule should be left alone for clarity).
    """
    merged_terms: List[Term] = []
    extras: List[Literal] = []
    for left, right in zip(first.terms, second.terms):
        if isinstance(left, Wildcard):
            merged_terms.append(right)
        elif isinstance(right, Wildcard):
            merged_terms.append(left)
        elif left == right:
            merged_terms.append(left)
        elif isinstance(left, Var) and isinstance(right, Var):
            merged_terms.append(left)
            extras.append(Comparison("=", left, right))
        else:
            return None
    return Atom(first.relation, tuple(merged_terms)), extras


class RemoveDuplicateAtoms(Pass):
    """Remove duplicate literals and merge key-equal self-joins."""

    name = "duplicate-atom-removal"

    def __init__(self, key_column: int = 0) -> None:
        self._key_column = key_column

    def run(self, program: DLIRProgram) -> DLIRProgram:
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            new_rule = self._clean_rule(rule, program)
            new_rules.append(new_rule)
            changed = changed or new_rule is not rule
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    def _clean_rule(self, rule: Rule, program: DLIRProgram) -> Rule:
        body = remove_duplicate_literals(list(rule.body))
        body = self._merge_self_joins(body, program)
        if tuple(body) == rule.body:
            return rule
        return rule.with_body(body)

    def _merge_self_joins(
        self, body: List[Literal], program: DLIRProgram
    ) -> List[Literal]:
        result: List[Literal] = []
        # Key: (relation, key term text) -> index of the atom kept in `result`.
        kept_index: Dict[Tuple[str, str], int] = {}
        for literal in body:
            if not isinstance(literal, Atom) or not literal.terms:
                result.append(literal)
                continue
            declaration = program.schema.maybe_get(literal.relation)
            if declaration is None or not declaration.is_edb:
                result.append(literal)
                continue
            key_term = literal.terms[self._key_column]
            if isinstance(key_term, Wildcard):
                result.append(literal)
                continue
            key = (literal.relation, str(key_term))
            if key not in kept_index:
                kept_index[key] = len(result)
                result.append(literal)
                continue
            existing = result[kept_index[key]]
            assert isinstance(existing, Atom)
            merged = _merge_atoms(existing, literal)
            if merged is None:
                result.append(literal)
                continue
            merged_atom, extras = merged
            result[kept_index[key]] = merged_atom
            result.extend(extras)
        return remove_duplicate_literals(result)
