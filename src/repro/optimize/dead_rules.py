"""Dead rule elimination (paper Figure 4b).

A rule is dead when its head relation is not reachable (through rule bodies,
including negated atoms) from any output relation.  Dead rules are removed
along with the now-unused IDB declarations.
"""

from __future__ import annotations

from typing import List, Set

from repro.dlir.core import DLIRProgram, Rule
from repro.optimize.base import Pass
from repro.schema.dl_schema import DLSchema


def reachable_relations(program: DLIRProgram) -> Set[str]:
    """Return the relations reachable from the program outputs."""
    reachable: Set[str] = set(program.outputs)
    worklist: List[str] = list(program.outputs)
    while worklist:
        current = worklist.pop()
        for rule in program.rules_for(current):
            for relation in rule.referenced_relations():
                if relation not in reachable:
                    reachable.add(relation)
                    worklist.append(relation)
    return reachable


class DeadRuleElimination(Pass):
    """Remove rules (and IDB declarations) unreachable from the outputs."""

    name = "dead-rule-elimination"

    def run(self, program: DLIRProgram) -> DLIRProgram:
        if not program.outputs:
            return program
        reachable = reachable_relations(program)
        kept_rules: List[Rule] = [
            rule for rule in program.rules if rule.head.relation in reachable
        ]
        if len(kept_rules) == len(program.rules):
            return program
        result = program.copy()
        result.rules = kept_rules
        # Drop declarations of IDBs that no longer have rules and are not
        # referenced anywhere (EDB declarations always stay).
        referenced: Set[str] = set(program.outputs)
        for rule in kept_rules:
            referenced.add(rule.head.relation)
            referenced.update(rule.referenced_relations())
        new_schema = DLSchema()
        for relation in result.schema:
            if relation.is_edb or relation.name in referenced:
                new_schema.add(relation)
        result.schema = new_schema
        return result
