"""Magic-set transformation (paper Section 5, "Pushing Operators Past Recursion").

The transformation specialises a recursive predicate to the constant bindings
with which it is queried, so that bottom-up evaluation only derives facts
relevant to the query -- the classic technique of Bancilhon et al. [7].

The implementation handles the common shape produced by Raqlet's own
translation pipeline (and by typical hand-written Datalog): a recursive
predicate ``P`` defined in a single-predicate SCC, called from non-recursive
rules with constants in some argument positions.  The steps are:

1. compute the *adornment*: the argument positions bound to constants at
   every call site outside the SCC (the intersection over call sites),
2. create a magic predicate ``Magic_P`` over the bound positions, seeded with
   one fact per call site,
3. guard every rule of ``P`` with ``Magic_P(bound head arguments)``,
4. for every recursive call inside a rule of ``P``, derive new magic facts
   with a left-to-right sideways information passing strategy.

The transformation is skipped (returning the program unchanged) whenever it
cannot be shown safe: no recursion, no bound call-site positions, mutual
recursion, negation/aggregation/subsumption inside the SCC, or call sites
whose bound arguments are not constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dependencies import DependencyGraph, build_dependency_graph
from repro.dlir.core import (
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    term_variables,
)
from repro.optimize.base import Pass
from repro.schema.dl_schema import DLColumn, DLRelation


def _call_sites(program: DLIRProgram, predicate: str, component) -> List[Atom]:
    """Return the positive occurrences of ``predicate`` outside its SCC."""
    sites: List[Atom] = []
    for rule in program.rules:
        if rule.head.relation in component:
            continue
        for atom in rule.body_atoms():
            if atom.relation == predicate:
                sites.append(atom)
        for negated in rule.negated_atoms():
            if negated.atom.relation == predicate:
                # A negated use must see the complete relation; magic would
                # under-approximate it, so the transformation is unsafe.
                return []
    return sites


def _bound_positions(sites: Sequence[Atom]) -> Tuple[int, ...]:
    """Return positions bound to a ground term at every call site.

    Late-bound parameters count as bound: their value is fixed per run, so
    a magic seed fact ``Magic_P($p)`` simply derives the binding's value at
    execution time.
    """
    if not sites:
        return ()
    arity = sites[0].arity
    positions = []
    for index in range(arity):
        if all(isinstance(site.terms[index], (Const, Param)) for site in sites):
            positions.append(index)
    return tuple(positions)


def _component_is_plain(program: DLIRProgram, component) -> bool:
    """Return whether the SCC's rules are plain positive conjunctive rules."""
    for relation in component:
        for rule in program.rules_for(relation):
            if rule.has_negation() or rule.has_aggregation():
                return False
            if rule.subsume_min is not None or rule.subsume_max is not None:
                return False
    return True


class MagicSets(Pass):
    """Specialise bound recursive predicates with magic predicates."""

    name = "magic-sets"

    def __init__(self, magic_prefix: str = "Magic_") -> None:
        self._prefix = magic_prefix

    def run(self, program: DLIRProgram) -> DLIRProgram:
        graph = build_dependency_graph(program)
        current = program
        for component in graph.recursive_components():
            if len(component) != 1:
                continue  # mutual recursion: out of scope for this implementation
            (predicate,) = tuple(component)
            transformed = self._transform_predicate(current, predicate, graph)
            if transformed is not None:
                current = transformed
                graph = build_dependency_graph(current)
        return current

    # ------------------------------------------------------------------

    def _transform_predicate(
        self, program: DLIRProgram, predicate: str, graph: DependencyGraph
    ) -> Optional[DLIRProgram]:
        component = graph.scc_of[predicate]
        if not _component_is_plain(program, component):
            return None
        sites = _call_sites(program, predicate, component)
        if not sites:
            return None
        bound = _bound_positions(sites)
        if not bound:
            return None
        declaration = program.schema.maybe_get(predicate)
        if declaration is None:
            return None
        magic_name = f"{self._prefix}{predicate}"
        if magic_name in program.schema:
            return None  # already transformed
        magic_columns = tuple(
            DLColumn(declaration.columns[index].name, declaration.columns[index].type)
            for index in bound
        )
        magic_relation = DLRelation(name=magic_name, columns=magic_columns, is_edb=False)

        new_rules: List[Rule] = []
        seeds: Set[Tuple] = set()
        for site in sites:
            seed_terms = tuple(site.terms[index] for index in bound)
            seeds.add(seed_terms)
        seed_rules = [
            Rule(head=Atom(magic_name, terms), body=()) for terms in sorted(seeds, key=str)
        ]

        for rule in program.rules:
            if rule.head.relation != predicate:
                new_rules.append(rule)
                continue
            guarded, magic_rules = self._rewrite_rule(rule, predicate, magic_name, bound)
            if guarded is None:
                return None  # a head bound position is not a plain variable
            new_rules.extend(magic_rules)
            new_rules.append(guarded)

        result = program.copy()
        result.rules = seed_rules + new_rules
        result.declare(magic_relation)
        return result

    def _rewrite_rule(
        self, rule: Rule, predicate: str, magic_name: str, bound: Tuple[int, ...]
    ) -> Tuple[Optional[Rule], List[Rule]]:
        head_bound_terms = []
        for index in bound:
            term = rule.head.terms[index]
            if not isinstance(term, (Var, Const, Param)):
                return None, []
            head_bound_terms.append(term)
        guard = Atom(magic_name, tuple(head_bound_terms))

        magic_rules: List[Rule] = []
        known: Set[str] = {
            name for term in head_bound_terms for name in term_variables(term)
        }
        prefix: List[Literal] = [guard]
        for literal in rule.body:
            if isinstance(literal, Atom) and literal.relation == predicate:
                call_bound_terms = tuple(literal.terms[index] for index in bound)
                call_vars = {
                    name
                    for term in call_bound_terms
                    for name in term_variables(term)
                }
                if call_vars <= known:
                    magic_rules.append(
                        Rule(
                            head=Atom(magic_name, call_bound_terms),
                            body=tuple(prefix),
                        )
                    )
            prefix.append(literal)
            known.update(self._newly_bound(literal))
        guarded = rule.with_body([guard] + list(rule.body))
        return guarded, magic_rules

    @staticmethod
    def _newly_bound(literal: Literal) -> Set[str]:
        if isinstance(literal, Atom):
            return set(literal.variables())
        if isinstance(literal, Comparison) and literal.op == "=":
            return set(literal.variables())
        if isinstance(literal, NegatedAtom):
            return set()
        return set()
