"""View inlining (paper Figure 4a).

An IDB atom in a rule body is replaced by the body of its defining rule when
that is safe:

* the referenced relation is defined by exactly one rule,
* that rule is not recursive (directly or mutually),
* that rule carries no aggregation and no subsumption marker,
* the atom occurs positively (negated atoms are never inlined).

During inlining the defining rule's variables are renamed apart, its head
terms are unified with the call-site terms, and duplicate atoms that result
from the substitution are removed (the paper's "since Person appears twice,
the duplication is removed").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dependencies import build_dependency_graph
from repro.common.names import NameGenerator
from repro.dlir.core import (
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.optimize.base import Pass


def _rename_apart(rule: Rule, names: NameGenerator) -> Rule:
    """Rename every variable of ``rule`` to a fresh name."""
    mapping: Dict[str, Term] = {}
    for variable in rule.variables():
        mapping[variable] = Var(names.fresh(f"{variable}_i"))
    return rule.substitute(mapping)


def _unify_head(definition: Rule, call: Atom) -> Optional[List[Literal]]:
    """Unify the definition's head with the call-site atom.

    Returns the extra literals implied by the unification (equality
    comparisons between call-site constants/variables and definition-body
    terms) plus the substituted body, or ``None`` when unification fails.
    """
    substitution: Dict[str, Term] = {}
    extras: List[Literal] = []
    for head_term, call_term in zip(definition.head.terms, call.terms):
        if isinstance(head_term, Var):
            existing = substitution.get(head_term.name)
            if existing is None:
                substitution[head_term.name] = call_term
            elif existing != call_term:
                extras.append(Comparison("=", existing, call_term))
        elif isinstance(head_term, Const):
            if isinstance(call_term, Const):
                if call_term.value != head_term.value:
                    return None  # definitely empty join; keep original rule
            elif isinstance(call_term, Wildcard):
                continue
            else:
                extras.append(Comparison("=", call_term, head_term))
        elif isinstance(head_term, Param):
            if isinstance(call_term, Param) and call_term == head_term:
                continue  # same parameter: trivially equal under any binding
            if isinstance(call_term, Wildcard):
                continue
            # The parameter's value is unknown until run time: keep the
            # equality as a residual comparison.
            extras.append(Comparison("=", call_term, head_term))
        else:
            # Arithmetic heads are not inlined.
            return None
    body: List[Literal] = []
    for literal in definition.body:
        if isinstance(literal, (Atom, NegatedAtom, Comparison)):
            body.append(literal.substitute(substitution))
        else:  # pragma: no cover - defensive
            body.append(literal)
    # Call-site terms bound to wildcards in the definition body are dropped by
    # substitution already; wildcards at the call site simply vanish.
    return body + extras


def remove_duplicate_literals(body: List[Literal]) -> List[Literal]:
    """Remove exact duplicate literals while preserving order."""
    seen: Set[str] = set()
    result: List[Literal] = []
    for literal in body:
        key = str(literal)
        if key in seen:
            continue
        seen.add(key)
        result.append(literal)
    return result


class InlineRules(Pass):
    """Inline single-rule, non-recursive, aggregation-free IDB definitions."""

    name = "inline"

    def __init__(self, protect: Tuple[str, ...] = ()) -> None:
        self._protect = set(protect)

    def _inlinable(self, program: DLIRProgram) -> Dict[str, Rule]:
        graph = build_dependency_graph(program)
        candidates: Dict[str, Rule] = {}
        for relation in program.idb_names():
            if relation in self._protect:
                continue
            rules = program.rules_for(relation)
            if len(rules) != 1:
                continue
            rule = rules[0]
            if graph.is_recursive(relation):
                continue
            if rule.has_aggregation() or rule.subsume_min is not None or rule.subsume_max is not None:
                continue
            candidates[relation] = rule
        return candidates

    def run(self, program: DLIRProgram) -> DLIRProgram:
        # Inlining one view can expose another inlinable view inside the
        # expansion (Return -> Where1 -> Match1 in the paper's example), so the
        # pass iterates to a fixpoint; the bound is the number of IDB views.
        current = program
        for _ in range(max(1, len(program.idb_names()))):
            result = self._run_once(current)
            if result is current:
                break
            current = result
        return current

    def _run_once(self, program: DLIRProgram) -> DLIRProgram:
        candidates = self._inlinable(program)
        if not candidates:
            return program
        names = NameGenerator()
        for rule in program.rules:
            names.reserve_all(rule.variables())
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            new_rule, rule_changed = self._inline_rule(rule, candidates, names)
            new_rules.append(new_rule)
            changed = changed or rule_changed
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    def _inline_rule(
        self, rule: Rule, candidates: Dict[str, Rule], names: NameGenerator
    ) -> Tuple[Rule, bool]:
        changed = False
        body: List[Literal] = []
        for literal in rule.body:
            if (
                isinstance(literal, Atom)
                and literal.relation in candidates
                and literal.relation != rule.head.relation
            ):
                definition = _rename_apart(candidates[literal.relation], names)
                expansion = _unify_head(definition, literal)
                if expansion is None:
                    body.append(literal)
                    continue
                body.extend(expansion)
                changed = True
            else:
                body.append(literal)
        if not changed:
            return rule, False
        deduplicated = remove_duplicate_literals(body)
        return rule.with_body(deduplicated), True
