"""DLIR optimizer (paper Section 5).

The optimizer is a small pass framework over DLIR programs.  Each pass is a
pure program-to-program transformation; the :class:`PassManager` runs a
pipeline of passes and records a trace (rule counts before/after each pass)
used by the ablation benchmarks.

Passes shipped with the reproduction:

* :class:`InlineRules`             -- view inlining (Figure 4a),
* :class:`RemoveDuplicateAtoms`    -- duplicate-atom / self-join cleanup,
* :class:`DeadRuleElimination`     -- drop rules unreachable from outputs (Figure 4b),
* :class:`ConstantPropagation`     -- substitute variables equated to constants,
* :class:`SemanticJoinElimination` -- drop node-membership atoms implied by
  PG-Schema foreign keys (semantic join optimization),
* :class:`MagicSets`               -- magic-set transformation for bound
  recursive queries (pushing selections past recursion),
* :class:`LinearizeRecursion`      -- rewrite doubly-recursive chain rules
  into linear ones.
"""

from repro.optimize.base import OptimizationTrace, Pass, PassManager
from repro.optimize.constant_propagation import ConstantPropagation
from repro.optimize.dead_rules import DeadRuleElimination
from repro.optimize.duplicates import RemoveDuplicateAtoms
from repro.optimize.inline import InlineRules
from repro.optimize.linearize import LinearizeRecursion
from repro.optimize.magic_sets import MagicSets
from repro.optimize.semantic import SemanticJoinElimination
from repro.optimize.pipeline import default_pipeline, optimize_program

__all__ = [
    "Pass",
    "PassManager",
    "OptimizationTrace",
    "InlineRules",
    "RemoveDuplicateAtoms",
    "DeadRuleElimination",
    "ConstantPropagation",
    "SemanticJoinElimination",
    "MagicSets",
    "LinearizeRecursion",
    "default_pipeline",
    "optimize_program",
]
