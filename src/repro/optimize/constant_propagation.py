"""Constant propagation.

An equality comparison ``x = c`` (or ``c = x``) with a constant ``c`` allows
every other occurrence of ``x`` in the rule to be replaced by ``c``.  The
comparison that performed the binding is kept only when ``x`` appears in the
head (so the head stays range-restricted after substitution the comparison is
no longer needed there either, because the head occurrence is also replaced).

Late-bound parameters (:class:`~repro.dlir.core.Param`) propagate exactly
like constants: ``$p`` is a ground value at execution time, so pushing it
into an atom argument turns a post-join filter into an index probe — the
step that makes prepared queries as fast as queries with inlined values.

Pushing constants into atoms is what later lets the engines use index lookups
instead of full scans, and it exposes further simplification for the magic-set
transformation.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.dlir.core import (
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    Param,
    Rule,
    Term,
    Var,
)
from repro.optimize.base import Pass

_GroundTerm = Union[Const, Param]


def _constant_bindings(rule: Rule) -> Dict[str, _GroundTerm]:
    """Return variables equated to constants (or parameters) by the body."""
    bindings: Dict[str, _GroundTerm] = {}
    for comparison in rule.comparisons():
        if comparison.op != "=":
            continue
        left, right = comparison.left, comparison.right
        if isinstance(left, Var) and isinstance(right, (Const, Param)):
            bindings.setdefault(left.name, right)
        elif isinstance(right, Var) and isinstance(left, (Const, Param)):
            bindings.setdefault(right.name, left)
    return bindings


class ConstantPropagation(Pass):
    """Substitute variables bound to constants throughout each rule."""

    name = "constant-propagation"

    def run(self, program: DLIRProgram) -> DLIRProgram:
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            new_rule = self._propagate(rule)
            new_rules.append(new_rule)
            changed = changed or new_rule is not rule
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    def _propagate(self, rule: Rule) -> Rule:
        bindings = _constant_bindings(rule)
        if not bindings:
            return rule
        mapping: Dict[str, Term] = dict(bindings)
        substituted = rule.substitute(mapping)
        # Drop comparisons that became trivially true (c = c); keep ones that
        # became contradictions so the emptiness stays visible to the engines.
        body: List[Literal] = []
        for literal in substituted.body:
            if isinstance(literal, Comparison) and literal.op == "=":
                if (
                    isinstance(literal.left, Const)
                    and isinstance(literal.right, Const)
                    and literal.left.value == literal.right.value
                ):
                    continue
                if (
                    isinstance(literal.left, Param)
                    and literal.left == literal.right
                ):
                    # ``$p = $p`` holds for every binding.
                    continue
            body.append(literal)
        new_rule = substituted.with_body(body)
        if str(new_rule) == str(rule):
            return rule
        return new_rule
