"""Constant propagation.

An equality comparison ``x = c`` (or ``c = x``) with a constant ``c`` allows
every other occurrence of ``x`` in the rule to be replaced by ``c``.  The
comparison that performed the binding is kept only when ``x`` appears in the
head (so the head stays range-restricted after substitution the comparison is
no longer needed there either, because the head occurrence is also replaced).

Pushing constants into atoms is what later lets the engines use index lookups
instead of full scans, and it exposes further simplification for the magic-set
transformation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dlir.core import (
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    Rule,
    Term,
    Var,
)
from repro.optimize.base import Pass


def _constant_bindings(rule: Rule) -> Dict[str, Const]:
    """Return variables equated to constants by the rule body."""
    bindings: Dict[str, Const] = {}
    for comparison in rule.comparisons():
        if comparison.op != "=":
            continue
        left, right = comparison.left, comparison.right
        if isinstance(left, Var) and isinstance(right, Const):
            bindings.setdefault(left.name, right)
        elif isinstance(right, Var) and isinstance(left, Const):
            bindings.setdefault(right.name, left)
    return bindings


class ConstantPropagation(Pass):
    """Substitute variables bound to constants throughout each rule."""

    name = "constant-propagation"

    def run(self, program: DLIRProgram) -> DLIRProgram:
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            new_rule = self._propagate(rule)
            new_rules.append(new_rule)
            changed = changed or new_rule is not rule
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    def _propagate(self, rule: Rule) -> Rule:
        bindings = _constant_bindings(rule)
        if not bindings:
            return rule
        mapping: Dict[str, Term] = dict(bindings)
        substituted = rule.substitute(mapping)
        # Drop comparisons that became trivially true (c = c); keep ones that
        # became contradictions so the emptiness stays visible to the engines.
        body: List[Literal] = []
        for literal in substituted.body:
            if isinstance(literal, Comparison) and literal.op == "=":
                if (
                    isinstance(literal.left, Const)
                    and isinstance(literal.right, Const)
                    and literal.left.value == literal.right.value
                ):
                    continue
            body.append(literal)
        new_rule = substituted.with_body(body)
        if str(new_rule) == str(rule):
            return rule
        return new_rule
