"""Default optimization pipelines.

``default_pipeline`` mirrors the "fully optimized" configuration of the
paper's Table 1: constant propagation, inlining, duplicate-atom cleanup,
semantic join elimination (when a schema mapping is available), linearization,
magic sets, and dead-rule elimination, iterated until nothing changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dlir.core import DLIRProgram
from repro.optimize.base import OptimizationTrace, Pass, PassManager
from repro.optimize.constant_propagation import ConstantPropagation
from repro.optimize.dead_rules import DeadRuleElimination
from repro.optimize.duplicates import RemoveDuplicateAtoms
from repro.optimize.inline import InlineRules
from repro.optimize.linearize import LinearizeRecursion
from repro.optimize.magic_sets import MagicSets
from repro.optimize.semantic import SemanticJoinElimination
from repro.schema.translate import SchemaMapping


def default_pipeline(
    mapping: Optional[SchemaMapping] = None,
    enable_magic_sets: bool = True,
    enable_linearization: bool = True,
) -> List[Pass]:
    """Return the default pass list used by :func:`optimize_program`."""
    passes: List[Pass] = [
        ConstantPropagation(),
        InlineRules(),
        RemoveDuplicateAtoms(),
    ]
    if mapping is not None:
        passes.append(SemanticJoinElimination(mapping))
    if enable_linearization:
        passes.append(LinearizeRecursion())
    if enable_magic_sets:
        passes.append(MagicSets())
    passes.append(DeadRuleElimination())
    return passes


def optimize_program(
    program: DLIRProgram,
    mapping: Optional[SchemaMapping] = None,
    passes: Optional[List[Pass]] = None,
    iterate: bool = True,
) -> tuple[DLIRProgram, OptimizationTrace]:
    """Optimize ``program`` with the default (or a custom) pipeline.

    Returns the optimized program and the optimization trace.
    """
    manager = PassManager(passes or default_pipeline(mapping), iterate=iterate)
    optimized = manager.run(program)
    return optimized, manager.trace
