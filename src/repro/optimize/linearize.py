"""Linearization of non-linear recursive rules (paper Section 4, "Linearity").

The classic doubly-recursive formulation of transitive closure::

    TC(x, y) :- TC(x, z), TC(z, y).

derives the same relation as the right-linear formulation in which the second
recursive call is replaced by the base case::

    TC(x, y) :- TC(x, z), <base body with head unified to (z, y)>.

Rewriting to the linear form removes a self-join of the (potentially large)
recursive relation and makes the program acceptable to backends that only
support linear recursion (SQL ``WITH RECURSIVE``).  The pass only fires on
the exact chain pattern above: a binary predicate, exactly two recursive body
atoms that chain head-first-argument -> shared variable -> head-second-
argument, and no other literals in the body.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.dependencies import build_dependency_graph
from repro.common.names import NameGenerator
from repro.dlir.core import Atom, DLIRProgram, Rule, Term, Var
from repro.optimize.base import Pass


def _is_chain_rule(rule: Rule, predicate: str) -> bool:
    """Return whether ``rule`` is ``P(x,y) :- P(x,z), P(z,y)`` (up to naming)."""
    if rule.head.relation != predicate or rule.head.arity != 2:
        return False
    if len(rule.body) != 2:
        return False
    atoms = rule.body_atoms()
    if len(atoms) != 2 or any(atom.relation != predicate for atom in atoms):
        return False
    head_terms = rule.head.terms
    first, second = atoms
    if not all(isinstance(term, Var) for term in head_terms + first.terms + second.terms):
        return False
    x, y = head_terms
    if first.terms[0] != x or second.terms[1] != y:
        return False
    # The chaining variable must be shared and distinct from x and y.
    z_first = first.terms[1]
    z_second = second.terms[0]
    return z_first == z_second and z_first not in (x, y)


def _unify_base(base: Rule, target_terms: List[Term], names: NameGenerator) -> Optional[List]:
    """Instantiate ``base``'s body with its head unified to ``target_terms``."""
    renamed = base.substitute(
        {variable: Var(names.fresh(f"{variable}_l")) for variable in base.variables()}
    )
    mapping: Dict[str, Term] = {}
    for head_term, target in zip(renamed.head.terms, target_terms):
        if isinstance(head_term, Var):
            if head_term.name in mapping and mapping[head_term.name] != target:
                return None
            mapping[head_term.name] = target
        elif head_term != target:
            return None
    return [
        literal.substitute(mapping) if hasattr(literal, "substitute") else literal
        for literal in renamed.body
    ]


class LinearizeRecursion(Pass):
    """Rewrite doubly-recursive chain rules into right-linear rules."""

    name = "linearize-recursion"

    def run(self, program: DLIRProgram) -> DLIRProgram:
        graph = build_dependency_graph(program)
        names = NameGenerator()
        for rule in program.rules:
            names.reserve_all(rule.variables())
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            predicate = rule.head.relation
            component = graph.scc_of.get(predicate, frozenset())
            if len(component) != 1 or not _is_chain_rule(rule, predicate):
                new_rules.append(rule)
                continue
            base_rules = [
                candidate
                for candidate in program.rules_for(predicate)
                if predicate not in candidate.body_relations()
            ]
            if not base_rules:
                new_rules.append(rule)
                continue
            replacements = self._linearize(rule, base_rules, names)
            if replacements is None:
                new_rules.append(rule)
                continue
            new_rules.extend(replacements)
            changed = True
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    def _linearize(
        self, rule: Rule, base_rules: List[Rule], names: NameGenerator
    ) -> Optional[List[Rule]]:
        atoms = rule.body_atoms()
        first, second = atoms
        replacements: List[Rule] = []
        for base in base_rules:
            if base.has_aggregation() or base.has_negation():
                return None
            expansion = _unify_base(base, list(second.terms), names)
            if expansion is None:
                return None
            replacements.append(rule.with_body([first] + expansion))
        return replacements
