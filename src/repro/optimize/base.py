"""Optimizer pass framework: the :class:`Pass` protocol and :class:`PassManager`."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.dlir.core import DLIRProgram


class Pass(abc.ABC):
    """A DLIR-to-DLIR transformation.

    Passes must not mutate their input program; they return a new program
    (sharing unchanged rule objects is fine, rules are immutable).
    """

    #: Human-readable pass name used in traces and benchmark output.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, program: DLIRProgram) -> DLIRProgram:
        """Apply the transformation and return the (possibly new) program."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class PassApplication:
    """Statistics of one pass application."""

    pass_name: str
    rules_before: int
    rules_after: int
    changed: bool

    def __str__(self) -> str:
        return (
            f"{self.pass_name}: {self.rules_before} -> {self.rules_after} rules"
            f" ({'changed' if self.changed else 'no change'})"
        )


@dataclass
class OptimizationTrace:
    """The record of a full optimization run."""

    applications: List[PassApplication] = field(default_factory=list)

    def total_rule_reduction(self) -> int:
        """Return the net number of rules removed across the run."""
        if not self.applications:
            return 0
        return self.applications[0].rules_before - self.applications[-1].rules_after

    def to_text(self) -> str:
        """Render the trace, one pass per line."""
        return "\n".join(str(application) for application in self.applications)


class PassManager:
    """Run a pipeline of passes, optionally iterating until a fixpoint."""

    def __init__(self, passes: Sequence[Pass], iterate: bool = False, max_rounds: int = 5) -> None:
        self._passes = list(passes)
        self._iterate = iterate
        self._max_rounds = max_rounds
        self.trace = OptimizationTrace()

    @property
    def passes(self) -> List[Pass]:
        """Return the configured passes in execution order."""
        return list(self._passes)

    def run(self, program: DLIRProgram) -> DLIRProgram:
        """Apply the pipeline to ``program`` and return the optimized program."""
        self.trace = OptimizationTrace()
        current = program
        rounds = self._max_rounds if self._iterate else 1
        for _ in range(rounds):
            changed_this_round = False
            for optimization in self._passes:
                before = len(current.rules)
                result = optimization.run(current)
                after = len(result.rules)
                changed = result is not current and (
                    after != before or result.rules != current.rules
                )
                self.trace.applications.append(
                    PassApplication(
                        pass_name=optimization.name,
                        rules_before=before,
                        rules_after=after,
                        changed=changed,
                    )
                )
                changed_this_round = changed_this_round or changed
                current = result
            if not changed_this_round:
                break
        return current
