"""Semantic join elimination (paper Section 5, "Semantic Join Optimizations").

The DL-Schema derived from a PG-Schema carries implicit integrity
constraints: the ``id1`` / ``id2`` columns of an edge relation are foreign
keys into the source / target node relations.  Consequently a node-membership
atom such as ``Person(n, _, _, ...)`` is redundant when ``n`` is already bound
by the ``id1`` column of ``Person_IS_LOCATED_IN_City`` in the same body and no
other column of the node atom is used.  Removing the atom removes a join.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.dlir.core import Atom, DLIRProgram, Literal, Rule, Var, Wildcard
from repro.optimize.base import Pass
from repro.schema.translate import SchemaMapping


class SemanticJoinElimination(Pass):
    """Remove node-membership atoms implied by edge foreign-key constraints."""

    name = "semantic-join-elimination"

    def __init__(self, mapping: Optional[SchemaMapping] = None) -> None:
        self._mapping = mapping

    def run(self, program: DLIRProgram) -> DLIRProgram:
        if self._mapping is None:
            return program
        changed = False
        new_rules: List[Rule] = []
        for rule in program.rules:
            new_rule = self._clean_rule(rule)
            new_rules.append(new_rule)
            changed = changed or new_rule is not rule
        if not changed:
            return program
        result = program.copy()
        result.rules = new_rules
        return result

    # -- helpers ----------------------------------------------------------

    def _guaranteed_node_bindings(self, rule: Rule) -> Set[tuple]:
        """Return ``(node label, variable)`` pairs guaranteed by edge atoms."""
        assert self._mapping is not None
        guaranteed: Set[tuple] = set()
        for atom in rule.body_atoms():
            if not self._mapping.is_edge_relation(atom.relation):
                continue
            source_label, target_label = self._mapping.edge_endpoints(atom.relation)
            if atom.terms and isinstance(atom.terms[0], Var):
                guaranteed.add((source_label, atom.terms[0].name))
            if len(atom.terms) > 1 and isinstance(atom.terms[1], Var):
                guaranteed.add((target_label, atom.terms[1].name))
        return guaranteed

    def _clean_rule(self, rule: Rule) -> Rule:
        assert self._mapping is not None
        guaranteed = self._guaranteed_node_bindings(rule)
        if not guaranteed:
            return rule
        body: List[Literal] = []
        changed = False
        for literal in rule.body:
            if self._is_redundant_node_atom(literal, guaranteed):
                changed = True
                continue
            body.append(literal)
        if not changed:
            return rule
        return rule.with_body(body)

    def _is_redundant_node_atom(self, literal: Literal, guaranteed: Set[tuple]) -> bool:
        assert self._mapping is not None
        if not isinstance(literal, Atom):
            return False
        if not self._mapping.is_node_relation(literal.relation):
            return False
        if not literal.terms or not isinstance(literal.terms[0], Var):
            return False
        # Every non-key column must be a wildcard: if any property is read,
        # the atom is doing real work and must stay.
        if any(not isinstance(term, Wildcard) for term in literal.terms[1:]):
            return False
        label = literal.relation
        return (label, literal.terms[0].name) in guaranteed
