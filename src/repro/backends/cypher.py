"""Cypher unparser: render a PGIR query back into Cypher text.

Used for round-trip testing (Cypher -> PGIR -> Cypher) and as the "Cypher"
backend of the architecture diagram (Figure 1).  The output is normalised
Cypher: generated identifiers are kept, inline property maps stay extracted
as WHERE conditions, and RETURN keeps its DISTINCT flag.
"""

from __future__ import annotations

from typing import List

from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGExpression,
    PGFunction,
    PGNot,
    PGParam,
    PGProperty,
    PGVariable,
)
from repro.pgir.nodes import (
    PGDirection,
    PGEdgePattern,
    PGIRQuery,
    PGMatch,
    PGNodePattern,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)


def _expression_text(expression: PGExpression) -> str:
    if isinstance(expression, PGVariable):
        return expression.name
    if isinstance(expression, PGConst):
        if isinstance(expression.value, str):
            escaped = expression.value.replace("'", "\\'")
            return f"'{escaped}'"
        if expression.value is None:
            return "null"
        if isinstance(expression.value, bool):
            return "true" if expression.value else "false"
        return str(expression.value)
    if isinstance(expression, PGParam):
        return f"${expression.name}"
    if isinstance(expression, PGProperty):
        return f"{expression.variable}.{expression.property_name}"
    if isinstance(expression, PGBinary):
        return f"({_expression_text(expression.left)} {expression.op} {_expression_text(expression.right)})"
    if isinstance(expression, PGNot):
        return f"(NOT {_expression_text(expression.operand)})"
    if isinstance(expression, PGFunction):
        args = ", ".join(_expression_text(arg) for arg in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, PGAggregate):
        inner = "*" if expression.argument is None else _expression_text(expression.argument)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.func}({distinct}{inner})"
    raise TypeError(f"cannot unparse PGIR expression {expression!r}")


def _node_text(node: PGNodePattern) -> str:
    label = f":{node.label}" if node.label else ""
    return f"({node.identifier}{label})"


def _edge_text(edge: PGEdgePattern) -> str:
    label = f":{edge.label}" if edge.label else ""
    star = ""
    if edge.var_length:
        if edge.min_hops is None and edge.max_hops is None:
            star = "*"
        elif edge.max_hops is None:
            star = f"*{edge.min_hops}.."
        elif edge.min_hops == edge.max_hops and edge.min_hops is not None:
            star = f"*{edge.min_hops}"
        else:
            low = "" if edge.min_hops is None else str(edge.min_hops)
            star = f"*{low}..{edge.max_hops}"
    body = f"[{edge.identifier}{label}{star}]"
    if edge.direction is PGDirection.DIRECTED:
        pattern = f"{_node_text(edge.source)}-{body}->{_node_text(edge.target)}"
    elif edge.direction is PGDirection.REVERSED:
        pattern = f"{_node_text(edge.source)}<-{body}-{_node_text(edge.target)}"
    else:
        pattern = f"{_node_text(edge.source)}-{body}-{_node_text(edge.target)}"
    if edge.shortest:
        pattern = f"shortestPath({pattern})"
    if edge.path_variable:
        pattern = f"{edge.path_variable} = {pattern}"
    return pattern


def pgir_to_cypher(query: PGIRQuery) -> str:
    """Render ``query`` as normalised Cypher text."""
    lines: List[str] = []
    for clause in query.clauses:
        if isinstance(clause, PGMatch):
            keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
            patterns = [_edge_text(edge) for edge in clause.edge_patterns]
            patterns.extend(_node_text(node) for node in clause.node_patterns)
            lines.append(f"{keyword} " + ", ".join(patterns))
        elif isinstance(clause, PGWhere):
            lines.append(f"WHERE {_expression_text(clause.condition)}")
        elif isinstance(clause, PGWith):
            keyword = "WITH DISTINCT" if clause.distinct else "WITH"
            items = ", ".join(
                f"{_expression_text(item.expression)} AS {item.alias}"
                for item in clause.items
            )
            lines.append(f"{keyword} {items}")
        elif isinstance(clause, PGUnwind):
            lines.append(f"UNWIND {_expression_text(clause.expression)} AS {clause.alias}")
        elif isinstance(clause, PGReturn):
            keyword = "RETURN DISTINCT" if clause.distinct else "RETURN"
            items = ", ".join(
                f"{_expression_text(item.expression)} AS {item.alias}"
                for item in clause.items
            )
            lines.append(f"{keyword} {items}")
        else:
            raise TypeError(f"cannot unparse PGIR clause {clause!r}")
    return "\n".join(lines) + "\n"
