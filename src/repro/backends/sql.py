"""SQL unparser: render a SQIR query as executable SQL text.

The output follows the paper's Figure 3e layout: a ``WITH`` (or ``WITH
RECURSIVE``) clause with one CTE per DLIR relation, followed by the final
``SELECT DISTINCT``.  Two dialects are supported:

* ``"ansi"`` -- generic SQL:1999-style text,
* ``"sqlite"`` -- identical except ``GROUP_CONCAT`` is kept (SQLite's
  spelling of ``collect``) and float promotion uses ``* 1.0``.

Both in-repo executors (:mod:`repro.engines.relational` and
:mod:`repro.engines.sqlite_exec`) consume this output.
"""

from __future__ import annotations

from typing import List

from repro.sqir.nodes import CTE, SelectQuery, SQIRQuery


def _indent(text: str, spaces: int = 2) -> str:
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


def _select_text(select: SelectQuery) -> str:
    lines: List[str] = []
    keyword = "SELECT DISTINCT" if select.distinct and not select.group_by else "SELECT"
    lines.append(f"{keyword} " + ", ".join(str(item) for item in select.items))
    if select.from_tables:
        lines.append("FROM " + ", ".join(str(table) for table in select.from_tables))
    if select.where:
        lines.append("WHERE " + " AND ".join(f"({cond})" for cond in select.where))
    if select.group_by:
        lines.append("GROUP BY " + ", ".join(str(expr) for expr in select.group_by))
    return "\n".join(lines)


def _cte_text(cte: CTE) -> str:
    members = [_select_text(member) for member in cte.all_members()]
    body = "\n  UNION\n".join(_indent(member) for member in members)
    column_list = ", ".join(cte.columns)
    return f"{cte.name}({column_list}) AS (\n{body}\n)"


def sqir_to_sql(query: SQIRQuery, dialect: str = "ansi") -> str:
    """Render ``query`` as SQL text in the requested ``dialect``."""
    if dialect not in ("ansi", "sqlite"):
        raise ValueError(f"unknown SQL dialect {dialect!r}")
    parts: List[str] = []
    if query.ctes:
        keyword = "WITH RECURSIVE" if query.is_recursive else "WITH"
        cte_texts = [_cte_text(cte) for cte in query.ctes]
        parts.append(keyword + " " + ",\n".join(cte_texts))
    parts.append(_select_text(query.final))
    return "\n".join(parts) + ";\n"
