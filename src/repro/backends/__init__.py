"""Raqlet backends (unparsers): generate executable query text from the IRs.

* :mod:`repro.backends.souffle` -- Soufflé-dialect Datalog text from DLIR.
* :mod:`repro.backends.sql` -- SQL text (ANSI / SQLite flavours) from SQIR.
* :mod:`repro.backends.cypher` -- Cypher text from PGIR (round-tripping).
"""

from repro.backends.cypher import pgir_to_cypher
from repro.backends.souffle import dlir_to_souffle
from repro.backends.sql import sqir_to_sql

__all__ = ["dlir_to_souffle", "sqir_to_sql", "pgir_to_cypher"]
