"""Soufflé Datalog unparser (paper Figure 3d).

Generates a self-contained Soufflé program: ``.decl`` statements for every
relation, ``.input`` directives for EDBs, the rules, and ``.output``
directives.  The generated text matches the concrete syntax used in the
paper's figures (``:-`` rules, ``_`` wildcards, quoted symbols).

Aggregation rules are emitted with Soufflé's aggregate syntax
(``result = count : { ... }``) by repeating the rule body inside the
aggregate; min/max subsumption rules additionally emit Soufflé subsumption
clauses (``<=``) so that only the best value per group survives.
"""

from __future__ import annotations

from typing import List

from repro.common.text import souffle_quote_string
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
)


def _term_text(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Wildcard):
        return "_"
    if isinstance(term, Param):
        # Named placeholder: prepared queries substitute the value per run.
        return f"${term.name}"
    if isinstance(term, Const):
        if isinstance(term.value, str):
            return souffle_quote_string(term.value)
        if isinstance(term.value, bool):
            return "1" if term.value else "0"
        return str(term.value)
    if isinstance(term, ArithExpr):
        return f"({_term_text(term.left)} {term.op} {_term_text(term.right)})"
    raise TypeError(f"cannot unparse term {term!r}")


def _atom_text(atom: Atom) -> str:
    return f"{atom.relation}({', '.join(_term_text(term) for term in atom.terms)})"


def _literal_text(literal) -> str:
    if isinstance(literal, Atom):
        return _atom_text(literal)
    if isinstance(literal, NegatedAtom):
        return f"!{_atom_text(literal.atom)}"
    if isinstance(literal, Comparison):
        op = "!=" if literal.op == "<>" else literal.op
        return f"{_term_text(literal.left)} {op} {_term_text(literal.right)}"
    raise TypeError(f"cannot unparse literal {literal!r}")


def _aggregation_text(rule: Rule, aggregation: Aggregation) -> str:
    inner = ", ".join(_literal_text(literal) for literal in rule.body)
    if aggregation.argument is None:
        body = f"count : {{ {inner} }}"
    else:
        body = f"{aggregation.func} {_term_text(aggregation.argument)} : {{ {inner} }}"
        if aggregation.func == "count":
            body = f"count : {{ {inner} }}"
    return f"{_term_text(aggregation.result)} = {body}"


def _rule_text(rule: Rule) -> str:
    head = _atom_text(rule.head)
    if rule.is_fact() and not rule.aggregations:
        return f"{head}."
    parts = [_literal_text(literal) for literal in rule.body]
    parts.extend(_aggregation_text(rule, aggregation) for aggregation in rule.aggregations)
    return f"{head} :- {', '.join(parts)}."


def _subsumption_text(program: DLIRProgram, relation: str, column: int, minimize: bool) -> str:
    declaration = program.schema.get(relation)
    first = [f"a{i}" for i in range(declaration.arity)]
    second = [f"b{i}" for i in range(declaration.arity)]
    conditions = []
    for index in range(declaration.arity):
        if index == column:
            op = "<=" if minimize else ">="
            conditions.append(f"a{index} {op} b{index}")
        else:
            conditions.append(f"a{index} = b{index}")
    head = (
        f"{relation}({', '.join(second)}) <= {relation}({', '.join(first)})"
    )
    return f"{head} :- {', '.join(conditions)}."


def dlir_to_souffle(program: DLIRProgram, include_inputs: bool = True) -> str:
    """Unparse ``program`` into Soufflé Datalog text."""
    lines: List[str] = []
    idb_names = set(program.idb_names())
    for relation in program.schema:
        columns = ", ".join(
            f"{column.name}:{column.type.value}" for column in relation.columns
        )
        lines.append(f".decl {relation.name}({columns})")
        if include_inputs and relation.is_edb and relation.name not in idb_names:
            lines.append(f".input {relation.name}")
    for relation, rows in sorted(program.facts.items()):
        for row in rows:
            values = ", ".join(
                souffle_quote_string(value) if isinstance(value, str) else str(value)
                for value in row
            )
            lines.append(f"{relation}({values}).")
    emitted_subsumption = set()
    for rule in program.rules:
        lines.append(_rule_text(rule))
        if rule.subsume_min is not None and (rule.head.relation, "min") not in emitted_subsumption:
            lines.append(_subsumption_text(program, rule.head.relation, rule.subsume_min, True))
            emitted_subsumption.add((rule.head.relation, "min"))
        if rule.subsume_max is not None and (rule.head.relation, "max") not in emitted_subsumption:
            lines.append(_subsumption_text(program, rule.head.relation, rule.subsume_max, False))
            emitted_subsumption.add((rule.head.relation, "max"))
    for name in program.outputs:
        lines.append(f".output {name}")
    return "\n".join(lines) + "\n"
