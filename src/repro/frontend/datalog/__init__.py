"""Datalog (Soufflé-dialect) frontend: parse Datalog text into DLIR."""

from repro.frontend.datalog.parser import parse_datalog

__all__ = ["parse_datalog"]
