"""Parser for the Soufflé-dialect Datalog accepted by Raqlet.

Supported constructs (the subset Raqlet itself emits, plus ground facts):

* ``.decl Name(col:type, ...)`` declarations (types ``number``, ``symbol``,
  ``float``, plus ``unsigned`` treated as ``number``),
* ``.input Name`` / ``.output Name`` directives,
* rules ``Head(t, ...) :- Lit, ..., Lit.`` with positive atoms, negated atoms
  (``!Atom``), comparisons (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``) and
  arithmetic in comparison operands and head arguments,
* late-bound query parameters ``$name`` in term positions (bound per run
  through the prepared-query API),
* ground facts ``Name(1, "x").``,
* ``//`` line comments.

Aggregates and components are not part of this frontend subset; programs that
need aggregation are built through the Cypher pipeline or the
:class:`~repro.dlir.builder.ProgramBuilder`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.common.location import SourceLocation
from repro.dlir.core import (
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.schema.dl_schema import DLColumn, DLRelation, DLType

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<directive>\.[A-Za-z_]+)
  | (?P<parameter>\$[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<turnstile>:-)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),.!_:])
  | (?P<arith>[+\-*/%])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    location: SourceLocation


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    location = SourceLocation(1, 1)
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", location, "datalog"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("ws", "comment"):
            token_kind = value if kind in ("punct",) else kind
            tokens.append(_Token(token_kind, value, location))
        location = location.advanced(value)
        position = match.end()
    tokens.append(_Token("eof", "", location))
    return tokens


_TYPE_ALIASES = {
    "number": DLType.NUMBER,
    "unsigned": DLType.NUMBER,
    "symbol": DLType.SYMBOL,
    "float": DLType.FLOAT,
}


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._program = DLIRProgram()

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text or 'end of input'!r}",
                token.location,
                "datalog",
            )
        return self._advance()

    def _accept(self, kind: str) -> bool:
        if self._peek().kind == kind:
            self._advance()
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse(self) -> DLIRProgram:
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "directive":
                self._parse_directive()
            elif token.kind == "word":
                self._parse_clause()
            else:
                raise ParseError(
                    f"unexpected token {token.text!r}", token.location, "datalog"
                )
        return self._program

    def _parse_directive(self) -> None:
        directive = self._advance().text
        if directive == ".decl":
            self._parse_decl()
        elif directive == ".input":
            name = self._expect("word").text
            if name not in self._program.inputs:
                self._program.inputs.append(name)
        elif directive == ".output":
            name = self._expect("word").text
            self._program.add_output(name)
        else:
            raise ParseError(f"unsupported directive {directive!r}")

    def _parse_decl(self) -> None:
        name = self._expect("word").text
        self._expect("(")
        columns: List[DLColumn] = []
        while not self._peek().kind == ")":
            column_name = self._expect("word").text
            self._expect_op(":")
            type_name = self._expect("word").text
            dl_type = _TYPE_ALIASES.get(type_name)
            if dl_type is None:
                raise ParseError(f"unknown column type {type_name!r}")
            columns.append(DLColumn(column_name, dl_type))
            if not self._accept(","):
                break
        self._expect(")")
        is_edb = True  # refined after rules are parsed
        self._program.declare(DLRelation(name=name, columns=tuple(columns), is_edb=is_edb))

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        # ':' appears inside declarations; it is tokenised as part of ':-' only
        # when followed by '-', otherwise the regex above does not emit it, so
        # we accept the word boundary here by checking the raw text.
        if token.kind == "op" and token.text == op:
            self._advance()
            return
        if token.text == op:
            self._advance()
            return
        raise ParseError(f"expected {op!r} but found {token.text!r}", token.location, "datalog")

    def _parse_clause(self) -> None:
        head = self._parse_atom()
        if self._accept("."):
            if all(isinstance(term, Const) for term in head.terms):
                self._program.add_fact(
                    head.relation, tuple(term.value for term in head.terms)  # type: ignore[union-attr]
                )
            else:
                self._program.add_rule(Rule(head=head, body=()))
            return
        self._expect("turnstile")
        body: List[Literal] = []
        while True:
            body.append(self._parse_literal())
            if self._accept(","):
                continue
            break
        self._expect(".")
        self._program.add_rule(Rule(head=head, body=tuple(body)))
        declaration = self._program.schema.maybe_get(head.relation)
        if declaration is not None and declaration.is_edb:
            self._program.schema.relations[head.relation] = DLRelation(
                name=declaration.name, columns=declaration.columns, is_edb=False
            )

    def _parse_literal(self) -> Literal:
        if self._accept("!"):
            return NegatedAtom(self._parse_atom())
        # Comparison or atom: an atom starts with word followed by '('.
        if self._peek().kind == "word" and self._peek(1).kind == "(":
            return self._parse_atom()
        left = self._parse_term()
        op_token = self._peek()
        if op_token.kind != "op":
            raise ParseError(
                f"expected comparison operator but found {op_token.text!r}",
                op_token.location,
                "datalog",
            )
        self._advance()
        op = "<>" if op_token.text == "!=" else op_token.text
        right = self._parse_term()
        return Comparison(op, left, right)

    def _parse_atom(self) -> Atom:
        name = self._expect("word").text
        self._expect("(")
        terms: List[Term] = []
        while self._peek().kind != ")":
            terms.append(self._parse_term())
            if not self._accept(","):
                break
        self._expect(")")
        return Atom(name, tuple(terms))

    def _parse_term(self) -> Term:
        term = self._parse_simple_term()
        while self._peek().kind == "arith":
            op = self._advance().text
            right = self._parse_simple_term()
            term = ArithExpr(op, term, right)
        return term

    def _parse_simple_term(self) -> Term:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return Const(float(token.text))
            return Const(int(token.text))
        if token.kind == "string":
            self._advance()
            return Const(token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "parameter":
            self._advance()
            return Param(token.text[1:])
        if token.kind == "_":
            self._advance()
            return Wildcard()
        if token.kind == "(":
            self._advance()
            term = self._parse_term()
            self._expect(")")
            return term
        if token.kind == "word":
            self._advance()
            return Var(token.text)
        raise ParseError(
            f"unexpected token {token.text!r} in term position", token.location, "datalog"
        )


def parse_datalog(text: str, schema=None) -> DLIRProgram:
    """Parse Soufflé-dialect Datalog ``text`` into a :class:`DLIRProgram`.

    ``schema`` optionally supplies a :class:`~repro.schema.dl_schema.DLSchema`
    of externally defined (EDB) relations -- typically the DL-Schema derived
    from a PG-Schema -- so that programs can reference the graph relations
    without re-declaring them.
    """
    program = _Parser(_tokenize(text)).parse()
    if schema is not None:
        for relation in schema:
            if relation.name not in program.schema:
                program.schema.add(relation)
    problems = program.validate()
    if problems:
        raise ParseError("invalid Datalog program: " + "; ".join(problems))
    return program
