"""Raqlet frontends: parsers for the supported input query languages.

* :mod:`repro.frontend.cypher` -- Cypher (the paper's primary frontend).
* :mod:`repro.frontend.datalog` -- Soufflé-dialect Datalog.
* :mod:`repro.frontend.sql` -- recursive SQL (``WITH [RECURSIVE]`` subset).
"""
