"""Recursive-descent parser for the recursive-SQL subset accepted by Raqlet.

Grammar (keywords case-insensitive)::

    query      := [with_clause] select_stmt [';']
    with_clause:= WITH [RECURSIVE] cte (',' cte)*
    cte        := name ['(' column (',' column)* ')'] AS '(' select_union ')'
    select_union := select_stmt (UNION [ALL] select_stmt)*
    select_stmt  := SELECT [DISTINCT] item (',' item)*
                    [FROM table_ref (',' table_ref)*]
                    [WHERE condition (AND condition)*]
                    [GROUP BY expr (',' expr)*]
    item       := expr [AS alias] | '*'
    table_ref  := name [AS] [alias]
    condition  := expr cmp expr | NOT EXISTS '(' select_stmt ')'
    expr       := additive with '.'-qualified column refs, literals,
                  COUNT/SUM/MIN/MAX/AVG(...) aggregates and arithmetic

The parser produces a :class:`~repro.sqir.nodes.SQIRQuery`; recursive CTEs are
recognised by self-reference (a member selecting from the CTE being defined)
exactly as in the DLIR-to-SQIR direction.  ``UNION ALL`` is accepted but
treated as ``UNION`` (set semantics), matching DLIR's semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.common.location import SourceLocation
from repro.sqir.nodes import (
    CTE,
    ColumnRef,
    NotExists,
    SelectItem,
    SelectQuery,
    SQLBinary,
    SQLExpr,
    SQLFunction,
    SQLLiteral,
    SQIRQuery,
    TableRef,
)

_KEYWORDS = {
    "WITH", "RECURSIVE", "AS", "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP",
    "BY", "UNION", "ALL", "AND", "OR", "NOT", "EXISTS", "TRUE", "FALSE", "NULL",
}

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "GROUP_CONCAT"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<float>\d+\.\d+)
  | (?P<integer>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<identifier>"[^"]+"|[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.;*+\-/%])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    location: SourceLocation

    def is_keyword(self, *keywords: str) -> bool:
        return self.kind == "keyword" and self.text.upper() in {k.upper() for k in keywords}

    def is_punct(self, *symbols: str) -> bool:
        return self.kind in ("punct", "op") and self.text in symbols


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    location = SourceLocation(1, 1)
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", location, "sql")
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("ws", "comment"):
            if kind == "identifier" and not value.startswith('"') and value.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", value, location))
            else:
                tokens.append(_Token(kind, value, location))
        location = location.advanced(value)
        position = match.end()
    tokens.append(_Token("eof", "", location))
    return tokens


class SQLParser:
    """Parse recursive SQL text into a :class:`SQIRQuery`."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.location, "sql")

    def _expect_keyword(self, keyword: str) -> _Token:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise self._error(f"expected {keyword!r} but found {token.text!r}")
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().is_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_punct(self, symbol: str) -> _Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r} but found {token.text!r}")
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind != "identifier":
            raise self._error(f"expected identifier but found {token.text!r}")
        self._advance()
        return token.text.strip('"')

    # -- query ---------------------------------------------------------------

    def parse_query(self) -> SQIRQuery:
        ctes: List[CTE] = []
        if self._accept_keyword("WITH"):
            self._accept_keyword("RECURSIVE")
            ctes.append(self._parse_cte())
            while self._accept_punct(","):
                ctes.append(self._parse_cte())
        final = self._parse_select()
        self._accept_punct(";")
        if self._peek().kind != "eof":
            raise self._error(f"unexpected trailing input {self._peek().text!r}")
        resolved = [self._classify_cte(cte) for cte in ctes]
        return SQIRQuery(ctes=resolved, final=final)

    def _parse_cte(self) -> CTE:
        name = self._expect_identifier()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        members = [self._parse_select()]
        while self._accept_keyword("UNION"):
            self._accept_keyword("ALL")
            members.append(self._parse_select())
        self._expect_punct(")")
        if not columns:
            columns = [item.alias for item in members[0].items]
        return CTE(name=name, columns=columns, base_members=members, recursive_members=[])

    @staticmethod
    def _references(select: SelectQuery, name: str) -> bool:
        return any(table.name == name for table in select.from_tables)

    def _classify_cte(self, cte: CTE) -> CTE:
        """Split the parsed members into base and recursive members."""
        base = [m for m in cte.base_members if not self._references(m, cte.name)]
        recursive = [m for m in cte.base_members if self._references(m, cte.name)]
        return CTE(
            name=cte.name,
            columns=cte.columns,
            base_members=base,
            recursive_members=recursive,
        )

    # -- SELECT ---------------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_item()]
        while self._accept_punct(","):
            items.append(self._parse_item())
        from_tables: List[TableRef] = []
        if self._accept_keyword("FROM"):
            from_tables.append(self._parse_table_ref())
            while self._accept_punct(","):
                from_tables.append(self._parse_table_ref())
        where: List[SQLExpr] = []
        if self._accept_keyword("WHERE"):
            where.append(self._parse_condition())
            while self._accept_keyword("AND"):
                where.append(self._parse_condition())
        group_by: List[SQLExpr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())
        return SelectQuery(
            items=items,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            distinct=distinct,
        )

    def _parse_item(self) -> SelectItem:
        if self._peek().is_punct("*"):
            raise self._error("SELECT * is not supported; list the columns explicitly")
        expression = self._parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().kind == "identifier":
            alias = self._expect_identifier()
        if alias is None:
            if isinstance(expression, ColumnRef):
                alias = expression.column
            else:
                alias = f"col{self._index}"
        return SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = name
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().kind == "identifier":
            alias = self._expect_identifier()
        return TableRef(name=name, alias=alias)

    # -- conditions and expressions --------------------------------------------

    def _parse_condition(self) -> SQLExpr:
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword("EXISTS"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return NotExists(subquery)
        if self._accept_punct("("):
            condition = self._parse_condition()
            while self._accept_keyword("AND"):
                condition = SQLBinary("AND", condition, self._parse_condition())
            self._expect_punct(")")
            return condition
        left = self._parse_expression()
        token = self._peek()
        if token.kind != "op":
            raise self._error(f"expected comparison operator but found {token.text!r}")
        self._advance()
        op = "<>" if token.text == "!=" else token.text
        right = self._parse_expression()
        return SQLBinary(op, left, right)

    def _parse_expression(self) -> SQLExpr:
        left = self._parse_term()
        while self._peek().is_punct("+", "-"):
            op = self._advance().text
            left = SQLBinary(op, left, self._parse_term())
        return left

    def _parse_term(self) -> SQLExpr:
        left = self._parse_factor()
        while self._peek().is_punct("*", "/", "%"):
            op = self._advance().text
            left = SQLBinary(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> SQLExpr:
        token = self._peek()
        if token.kind == "integer":
            self._advance()
            return SQLLiteral(int(token.text))
        if token.kind == "float":
            self._advance()
            return SQLLiteral(float(token.text))
        if token.kind == "string":
            self._advance()
            return SQLLiteral(token.text[1:-1].replace("''", "'"))
        if token.is_keyword("NULL"):
            self._advance()
            return SQLLiteral(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return SQLLiteral(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return SQLLiteral(False)
        if token.is_punct("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "identifier":
            return self._parse_reference_or_call()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_reference_or_call(self) -> SQLExpr:
        name = self._expect_identifier()
        if self._peek().is_punct("(") and name.upper() in _AGGREGATES:
            self._advance()
            distinct = self._accept_keyword("DISTINCT")
            if self._accept_punct("*"):
                self._expect_punct(")")
                return SQLFunction(name.upper(), (), star=True)
            argument = self._parse_expression()
            self._expect_punct(")")
            return SQLFunction(name.upper(), (argument,), distinct=distinct)
        if self._accept_punct("."):
            column = self._expect_identifier()
            return ColumnRef(table=name, column=column)
        # A bare column name: resolved against the FROM tables during the
        # SQIR-to-DLIR translation; represented as a column of the pseudo
        # table "" here.
        return ColumnRef(table="", column=name)


def parse_sql(text: str) -> SQIRQuery:
    """Parse recursive SQL ``text`` into a :class:`SQIRQuery`."""
    return SQLParser(_tokenize(text)).parse_query()
