"""SQL frontend: parse recursive SQL (``WITH [RECURSIVE]``) into SQIR.

The paper's Figure 1 lists a SQL parser as planned future work; this
reproduction implements it for the subset Raqlet itself generates (and the
common hand-written recursive-CTE style), closing the loop SQL -> SQIR ->
DLIR -> {Datalog, SQL}.
"""

from repro.frontend.sql.parser import parse_sql

__all__ = ["parse_sql"]
