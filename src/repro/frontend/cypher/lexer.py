"""Tokenizer for the Cypher subset.

The lexer is a small regex-driven scanner that produces a flat list of
:class:`Token` objects with source locations, which the recursive-descent
parser consumes.  Keywords are recognised case-insensitively, as in Cypher.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Union

from repro.common.errors import ParseError
from repro.common.location import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`CypherLexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    PARAMETER = "parameter"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "MATCH",
    "OPTIONAL",
    "WHERE",
    "RETURN",
    "WITH",
    "UNWIND",
    "AS",
    "DISTINCT",
    "ORDER",
    "BY",
    "ASC",
    "ASCENDING",
    "DESC",
    "DESCENDING",
    "SKIP",
    "LIMIT",
    "AND",
    "OR",
    "XOR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "STARTS",
    "ENDS",
    "CONTAINS",
}

# Multi-character punctuation must precede single-character alternatives.
_PUNCTUATION = [
    "<=",
    ">=",
    "<>",
    "!=",
    "->",
    "<-",
    "..",
    "=",
    "<",
    ">",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ":",
    ".",
    "-",
    "+",
    "*",
    "/",
    "%",
    "|",
    "$",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<float>\d+\.\d+([eE][+-]?\d+)?)
  | (?P<integer>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<identifier>`[^`]+`|[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTUATION) + r""")
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    value: Union[int, float, str, None]
    location: SourceLocation

    def is_keyword(self, *keywords: str) -> bool:
        """Return whether this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text.upper() in {
            keyword.upper() for keyword in keywords
        }

    def is_punct(self, *symbols: str) -> bool:
        """Return whether this token is one of the given punctuation symbols."""
        return self.kind is TokenKind.PUNCT and self.text in symbols


def _unescape(text: str) -> str:
    body = text[1:-1]
    return (
        body.replace("\\'", "'")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\\\\", "\\")
    )


class CypherLexer:
    """Tokenize Cypher text into a list of :class:`Token` objects."""

    def __init__(self, text: str, source_name: str = "cypher") -> None:
        self._text = text
        self._source_name = source_name

    def tokenize(self) -> List[Token]:
        """Return the token list, ending with a single EOF token."""
        tokens: List[Token] = []
        location = SourceLocation(1, 1)
        position = 0
        text = self._text
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise ParseError(
                    f"unexpected character {text[position]!r}",
                    location,
                    self._source_name,
                )
            group = match.lastgroup or ""
            lexeme = match.group()
            if group not in ("ws", "comment"):
                tokens.append(self._make_token(group, lexeme, location))
            location = location.advanced(lexeme)
            position = match.end()
        tokens.append(Token(TokenKind.EOF, "", None, location))
        return tokens

    def _make_token(self, group: str, lexeme: str, location: SourceLocation) -> Token:
        if group == "float":
            return Token(TokenKind.FLOAT, lexeme, float(lexeme), location)
        if group == "integer":
            return Token(TokenKind.INTEGER, lexeme, int(lexeme), location)
        if group == "string":
            return Token(TokenKind.STRING, lexeme, _unescape(lexeme), location)
        if group == "identifier":
            if lexeme.startswith("`"):
                return Token(TokenKind.IDENTIFIER, lexeme[1:-1], lexeme[1:-1], location)
            if lexeme.upper() in KEYWORDS:
                return Token(TokenKind.KEYWORD, lexeme, lexeme.upper(), location)
            return Token(TokenKind.IDENTIFIER, lexeme, lexeme, location)
        return Token(TokenKind.PUNCT, lexeme, lexeme, location)


def tokenize_cypher(text: str, source_name: str = "cypher") -> List[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return CypherLexer(text, source_name).tokenize()
