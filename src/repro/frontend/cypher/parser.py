"""Recursive-descent parser for the Cypher subset.

The grammar mirrors openCypher's read-query core.  Operator precedence for
expressions (loosest to tightest) is::

    OR  <  XOR  <  AND  <  NOT  <  comparison / IN / IS NULL
        <  + -  <  * / %  <  unary -  <  property access / calls  <  primary
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.frontend.cypher.ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    BinaryOp,
    Clause,
    CypherQuery,
    Expression,
    FunctionCall,
    ListLiteral,
    Literal,
    MatchClause,
    NodePattern,
    OrderItem,
    Parameter,
    PathPattern,
    PropertyAccess,
    RelDirection,
    RelPattern,
    ReturnClause,
    ReturnItem,
    UnaryOp,
    UnwindClause,
    Variable,
    WhereClause,
    WithClause,
)
from repro.frontend.cypher.lexer import Token, TokenKind, tokenize_cypher

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}


class CypherParser:
    """Parse a token stream into a :class:`CypherQuery`."""

    def __init__(self, tokens: List[Token], source_name: str = "cypher") -> None:
        self._tokens = tokens
        self._index = 0
        self._source_name = source_name

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.location, self._source_name)

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r} but found {token.text!r}")
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise self._error(f"expected {keyword!r} but found {token.text!r}")
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise self._error(f"expected identifier but found {token.text!r}")
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().is_keyword(keyword):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Query and clauses
    # ------------------------------------------------------------------

    def parse_query(self) -> CypherQuery:
        """Parse a full read query and require the input to be fully consumed."""
        clauses: List[Clause] = []
        while self._peek().kind is not TokenKind.EOF:
            clauses.append(self._parse_clause())
        if not clauses:
            raise self._error("empty query")
        query = CypherQuery(clauses=clauses)
        query.return_clause()  # validates that a RETURN is present
        return query

    def _parse_clause(self) -> Clause:
        token = self._peek()
        if token.is_keyword("OPTIONAL"):
            self._advance()
            self._expect_keyword("MATCH")
            return self._parse_match(optional=True)
        if token.is_keyword("MATCH"):
            self._advance()
            return self._parse_match(optional=False)
        if token.is_keyword("WHERE"):
            self._advance()
            return WhereClause(condition=self._parse_expression())
        if token.is_keyword("RETURN"):
            self._advance()
            return self._parse_return()
        if token.is_keyword("WITH"):
            self._advance()
            return self._parse_with()
        if token.is_keyword("UNWIND"):
            self._advance()
            return self._parse_unwind()
        raise self._error(f"unexpected token {token.text!r} at start of clause")

    def _parse_match(self, optional: bool) -> MatchClause:
        patterns = [self._parse_path_pattern()]
        while self._accept_punct(","):
            patterns.append(self._parse_path_pattern())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return MatchClause(patterns=tuple(patterns), optional=optional, where=where)

    def _parse_return(self) -> ReturnClause:
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_return_items()
        order_by, skip, limit = self._parse_trailer()
        return ReturnClause(
            items=tuple(items),
            distinct=distinct,
            order_by=tuple(order_by),
            skip=skip,
            limit=limit,
        )

    def _parse_with(self) -> WithClause:
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_return_items()
        order_by, skip, limit = self._parse_trailer()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return WithClause(
            items=tuple(items),
            distinct=distinct,
            where=where,
            order_by=tuple(order_by),
            skip=skip,
            limit=limit,
        )

    def _parse_unwind(self) -> UnwindClause:
        expression = self._parse_expression()
        self._expect_keyword("AS")
        variable = self._expect_identifier().text
        return UnwindClause(expression=expression, variable=variable)

    def _parse_return_items(self) -> List[ReturnItem]:
        items = [self._parse_return_item()]
        while self._accept_punct(","):
            items.append(self._parse_return_item())
        return items

    def _parse_return_item(self) -> ReturnItem:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier().text
        return ReturnItem(expression=expression, alias=alias)

    def _parse_trailer(self) -> Tuple[List[OrderItem], Optional[int], Optional[int]]:
        order_by: List[OrderItem] = []
        skip: Optional[int] = None
        limit: Optional[int] = None
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        if self._accept_keyword("SKIP"):
            skip = self._parse_integer_literal()
        if self._accept_keyword("LIMIT"):
            limit = self._parse_integer_literal()
        return order_by, skip, limit

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC") or self._accept_keyword("DESCENDING"):
            ascending = False
        else:
            if self._accept_keyword("ASC"):
                ascending = True
            elif self._accept_keyword("ASCENDING"):
                ascending = True
        return OrderItem(expression=expression, ascending=ascending)

    def _parse_integer_literal(self) -> int:
        token = self._peek()
        if token.kind is not TokenKind.INTEGER:
            raise self._error(f"expected integer but found {token.text!r}")
        self._advance()
        return int(token.value)

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def _parse_path_pattern(self) -> PathPattern:
        path_variable = None
        if (
            self._peek().kind is TokenKind.IDENTIFIER
            and self._peek(1).is_punct("=")
            and not self._peek(2).is_punct("=")
        ):
            path_variable = self._advance().text
            self._expect_punct("=")
        shortest = False
        all_shortest = False
        if self._peek().kind is TokenKind.IDENTIFIER and self._peek().text in (
            "shortestPath",
            "allShortestPaths",
        ):
            shortest = True
            all_shortest = self._advance().text == "allShortestPaths"
            self._expect_punct("(")
            pattern = self._parse_pattern_element()
            self._expect_punct(")")
        else:
            pattern = self._parse_pattern_element()
        nodes, relationships = pattern
        return PathPattern(
            nodes=tuple(nodes),
            relationships=tuple(relationships),
            path_variable=path_variable,
            shortest=shortest,
            all_shortest=all_shortest,
        )

    def _parse_pattern_element(self) -> Tuple[List[NodePattern], List[RelPattern]]:
        nodes = [self._parse_node_pattern()]
        relationships: List[RelPattern] = []
        while self._peek().is_punct("-", "<-"):
            relationships.append(self._parse_rel_pattern())
            nodes.append(self._parse_node_pattern())
        return nodes, relationships

    def _parse_node_pattern(self) -> NodePattern:
        self._expect_punct("(")
        variable = None
        labels: List[str] = []
        properties: Tuple[Tuple[str, Expression], ...] = ()
        if self._peek().kind is TokenKind.IDENTIFIER:
            variable = self._advance().text
        while self._accept_punct(":"):
            labels.append(self._expect_identifier().text)
        if self._peek().is_punct("{"):
            properties = self._parse_property_map()
        self._expect_punct(")")
        return NodePattern(
            variable=variable, labels=tuple(labels), properties=properties
        )

    def _parse_rel_pattern(self) -> RelPattern:
        token = self._peek()
        incoming_start = False
        if token.is_punct("<-"):
            incoming_start = True
            self._advance()
        else:
            self._expect_punct("-")
        variable = None
        types: List[str] = []
        properties: Tuple[Tuple[str, Expression], ...] = ()
        var_length = False
        min_hops: Optional[int] = None
        max_hops: Optional[int] = None
        if self._accept_punct("["):
            if self._peek().kind is TokenKind.IDENTIFIER:
                variable = self._advance().text
            if self._accept_punct(":"):
                types.append(self._expect_identifier().text)
                while self._accept_punct("|"):
                    self._accept_punct(":")
                    types.append(self._expect_identifier().text)
            if self._accept_punct("*"):
                var_length = True
                min_hops, max_hops = self._parse_var_length_bounds()
            if self._peek().is_punct("{"):
                properties = self._parse_property_map()
            self._expect_punct("]")
        # Closing arrow
        closing = self._peek()
        if closing.is_punct("->"):
            self._advance()
            direction = RelDirection.OUTGOING
        elif closing.is_punct("-"):
            self._advance()
            direction = RelDirection.UNDIRECTED
        else:
            raise self._error(f"expected '->' or '-' but found {closing.text!r}")
        if incoming_start:
            if direction is RelDirection.OUTGOING:
                raise self._error("relationship pattern cannot point both ways")
            direction = RelDirection.INCOMING
        return RelPattern(
            variable=variable,
            types=tuple(types),
            direction=direction,
            properties=properties,
            var_length=var_length,
            min_hops=min_hops,
            max_hops=max_hops,
        )

    def _parse_var_length_bounds(self) -> Tuple[Optional[int], Optional[int]]:
        min_hops: Optional[int] = None
        max_hops: Optional[int] = None
        if self._peek().kind is TokenKind.INTEGER:
            min_hops = int(self._advance().value)
            if self._accept_punct(".."):
                if self._peek().kind is TokenKind.INTEGER:
                    max_hops = int(self._advance().value)
            else:
                max_hops = min_hops
        elif self._accept_punct(".."):
            if self._peek().kind is TokenKind.INTEGER:
                max_hops = int(self._advance().value)
        return min_hops, max_hops

    def _parse_property_map(self) -> Tuple[Tuple[str, Expression], ...]:
        self._expect_punct("{")
        entries: List[Tuple[str, Expression]] = []
        while not self._peek().is_punct("}"):
            key_token = self._peek()
            if key_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise self._error(f"expected property name but found {key_token.text!r}")
            self._advance()
            self._expect_punct(":")
            entries.append((key_token.text, self._parse_expression()))
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return tuple(entries)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_xor()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("XOR"):
            left = BinaryOp("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _COMPARISON_OPS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return BinaryOp(op, left, self._parse_additive())
        if token.is_keyword("IN"):
            self._advance()
            return BinaryOp("IN", left, self._parse_additive())
        if token.is_keyword("STARTS"):
            self._advance()
            self._expect_keyword("WITH")
            return BinaryOp("STARTS WITH", left, self._parse_additive())
        if token.is_keyword("ENDS"):
            self._advance()
            self._expect_keyword("WITH")
            return BinaryOp("ENDS WITH", left, self._parse_additive())
        if token.is_keyword("CONTAINS"):
            self._advance()
            return BinaryOp("CONTAINS", left, self._parse_additive())
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            op = "IS NOT NULL" if negated else "IS NULL"
            return UnaryOp(op, left)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().is_punct("+", "-"):
            op = self._advance().text
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().is_punct("*", "/", "%"):
            op = self._advance().text
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self._accept_punct("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expression = self._parse_primary()
        while self._peek().is_punct("."):
            self._advance()
            name_token = self._peek()
            if name_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise self._error(
                    f"expected property name but found {name_token.text!r}"
                )
            self._advance()
            expression = PropertyAccess(expression, name_token.text)
        return expression

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(str(token.value))
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_punct("$"):
            self._advance()
            name = self._expect_identifier().text
            return Parameter(name)
        if token.is_punct("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.is_punct("["):
            return self._parse_list_literal()
        if token.kind is TokenKind.IDENTIFIER:
            if self._peek(1).is_punct("("):
                return self._parse_call()
            self._advance()
            return Variable(token.text)
        if token.kind is TokenKind.KEYWORD and self._peek(1).is_punct("("):
            # Aggregates such as COUNT are keywords in some dialects; accept them.
            return self._parse_call()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_list_literal(self) -> Expression:
        self._expect_punct("[")
        items: List[Expression] = []
        while not self._peek().is_punct("]"):
            items.append(self._parse_expression())
            if not self._accept_punct(","):
                break
        self._expect_punct("]")
        return ListLiteral(tuple(items))

    def _parse_call(self) -> Expression:
        name_token = self._advance()
        name = name_token.text
        self._expect_punct("(")
        if name.lower() in AGGREGATE_FUNCTIONS:
            distinct = self._accept_keyword("DISTINCT")
            if self._accept_punct("*"):
                self._expect_punct(")")
                return Aggregate(func=name.lower(), argument=None, distinct=distinct)
            argument = self._parse_expression()
            self._expect_punct(")")
            return Aggregate(func=name.lower(), argument=argument, distinct=distinct)
        args: List[Expression] = []
        while not self._peek().is_punct(")"):
            args.append(self._parse_expression())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return FunctionCall(name=name, args=tuple(args))


def parse_cypher(text: str, source_name: str = "cypher") -> CypherQuery:
    """Parse Cypher ``text`` into a :class:`CypherQuery` AST."""
    tokens = tokenize_cypher(text, source_name)
    return CypherParser(tokens, source_name).parse_query()
