"""Abstract syntax tree for the Cypher subset understood by Raqlet.

The subset covers what the paper needs for the LDBC SNB read workloads:

* ``MATCH`` / ``OPTIONAL MATCH`` with comma-separated path patterns,
* node patterns with labels and inline property maps,
* relationship patterns with direction, types, inline properties and
  variable-length bounds (``*``, ``*2``, ``*1..3``),
* ``shortestPath`` path functions,
* ``WHERE`` with boolean expressions,
* ``WITH`` / ``RETURN`` (optionally ``DISTINCT``) with aliases and the
  aggregation functions ``count``, ``sum``, ``avg``, ``min``, ``max`` and
  ``collect``,
* ``UNWIND``,
* ``ORDER BY``, ``SKIP`` and ``LIMIT`` (parsed; dropped during lowering with a
  warning, as in the paper's normalization step).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for Cypher expressions (marker class)."""


@dataclass(frozen=True)
class Variable(Expression):
    """A reference to a bound variable, e.g. ``n``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """An integer, float, string, boolean or null literal."""

    value: Union[int, float, str, bool, None]

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class ListLiteral(Expression):
    """A list literal, e.g. ``[1, 2, 3]``."""

    items: Tuple[Expression, ...]

    def __str__(self) -> str:
        return "[" + ", ".join(str(item) for item in self.items) + "]"


@dataclass(frozen=True)
class Parameter(Expression):
    """A query parameter, e.g. ``$personId``."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PropertyAccess(Expression):
    """A property access, e.g. ``n.firstName``."""

    subject: Expression
    property_name: str

    def __str__(self) -> str:
        return f"{self.subject}.{self.property_name}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, boolean or ``IN``."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation, currently ``NOT`` and numeric negation."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A non-aggregating function call, e.g. ``id(n)`` or ``length(p)``."""

    name: str
    args: Tuple[Expression, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(arg) for arg in self.args)})"


AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max", "collect")


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregation call such as ``count(DISTINCT m)`` or ``count(*)``.

    ``argument`` is ``None`` for ``count(*)``.
    """

    func: str
    argument: Optional[Expression]
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{inner})"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class RelDirection(enum.Enum):
    """Direction of a relationship pattern as written in the query."""

    OUTGOING = "->"
    INCOMING = "<-"
    UNDIRECTED = "--"


@dataclass(frozen=True)
class NodePattern:
    """A node pattern ``(n:Label {prop: value})``.

    Any component may be missing: the variable (anonymous node), the label, or
    the inline property map.
    """

    variable: Optional[str] = None
    labels: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, Expression], ...] = ()

    def __str__(self) -> str:
        label_text = "".join(f":{label}" for label in self.labels)
        props = ""
        if self.properties:
            inner = ", ".join(f"{key}: {value}" for key, value in self.properties)
            props = " {" + inner + "}"
        return f"({self.variable or ''}{label_text}{props})"


@dataclass(frozen=True)
class RelPattern:
    """A relationship pattern ``-[r:TYPE*1..3 {prop: value}]->``.

    ``min_hops`` / ``max_hops`` are ``None`` unless a variable-length star is
    present; an unbounded star sets ``max_hops`` to ``None`` while
    ``var_length`` is ``True``.
    """

    variable: Optional[str] = None
    types: Tuple[str, ...] = ()
    direction: RelDirection = RelDirection.OUTGOING
    properties: Tuple[Tuple[str, Expression], ...] = ()
    var_length: bool = False
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None

    def __str__(self) -> str:
        type_text = "|".join(self.types)
        if type_text:
            type_text = ":" + type_text
        star = ""
        if self.var_length:
            if self.min_hops is None and self.max_hops is None:
                star = "*"
            elif self.max_hops is None:
                star = f"*{self.min_hops}.."
            elif self.min_hops == self.max_hops:
                star = f"*{self.min_hops}"
            else:
                star = f"*{self.min_hops}..{self.max_hops}"
        body = f"[{self.variable or ''}{type_text}{star}]"
        if self.direction is RelDirection.OUTGOING:
            return f"-{body}->"
        if self.direction is RelDirection.INCOMING:
            return f"<-{body}-"
        return f"-{body}-"


@dataclass(frozen=True)
class PathPattern:
    """A linear path: node, (relationship, node)*, with an optional path name.

    ``shortest`` marks ``shortestPath(...)`` / ``allShortestPaths(...)``
    wrappers.
    """

    nodes: Tuple[NodePattern, ...]
    relationships: Tuple[RelPattern, ...] = ()
    path_variable: Optional[str] = None
    shortest: bool = False
    all_shortest: bool = False

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.relationships) + 1:
            raise ValueError(
                "a path pattern must have exactly one more node than relationships"
            )

    def __str__(self) -> str:
        parts = [str(self.nodes[0])]
        for relationship, node in zip(self.relationships, self.nodes[1:]):
            parts.append(str(relationship))
            parts.append(str(node))
        body = "".join(parts)
        if self.shortest:
            body = f"shortestPath({body})"
        if self.path_variable:
            return f"{self.path_variable} = {body}"
        return body


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


class Clause:
    """Base class for Cypher clauses (marker class)."""


@dataclass(frozen=True)
class MatchClause(Clause):
    """``MATCH`` or ``OPTIONAL MATCH`` over one or more path patterns."""

    patterns: Tuple[PathPattern, ...]
    optional: bool = False
    where: Optional[Expression] = None

    def __str__(self) -> str:
        keyword = "OPTIONAL MATCH" if self.optional else "MATCH"
        text = f"{keyword} " + ", ".join(str(pattern) for pattern in self.patterns)
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text


@dataclass(frozen=True)
class WhereClause(Clause):
    """A standalone ``WHERE`` clause (attached to the preceding MATCH/WITH)."""

    condition: Expression

    def __str__(self) -> str:
        return f"WHERE {self.condition}"


@dataclass(frozen=True)
class ReturnItem:
    """A single projection item ``expression [AS alias]``."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self) -> str:
        """Return the column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, Variable):
            return self.expression.name
        if isinstance(self.expression, PropertyAccess):
            return self.expression.property_name
        return str(self.expression)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


@dataclass(frozen=True)
class OrderItem:
    """An ``ORDER BY`` key with sort direction."""

    expression: Expression
    ascending: bool = True

    def __str__(self) -> str:
        suffix = "" if self.ascending else " DESC"
        return f"{self.expression}{suffix}"


@dataclass(frozen=True)
class ReturnClause(Clause):
    """``RETURN [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n]``."""

    items: Tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[int] = None
    limit: Optional[int] = None

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        text = f"RETURN {distinct}" + ", ".join(str(item) for item in self.items)
        if self.order_by:
            text += " ORDER BY " + ", ".join(str(item) for item in self.order_by)
        if self.skip is not None:
            text += f" SKIP {self.skip}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass(frozen=True)
class WithClause(Clause):
    """``WITH [DISTINCT] items [WHERE ...]`` -- the pipeline chaining clause."""

    items: Tuple[ReturnItem, ...]
    distinct: bool = False
    where: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[int] = None
    limit: Optional[int] = None

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        text = f"WITH {distinct}" + ", ".join(str(item) for item in self.items)
        if self.order_by:
            text += " ORDER BY " + ", ".join(str(item) for item in self.order_by)
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.skip is not None:
            text += f" SKIP {self.skip}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass(frozen=True)
class UnwindClause(Clause):
    """``UNWIND expression AS variable``."""

    expression: Expression
    variable: str

    def __str__(self) -> str:
        return f"UNWIND {self.expression} AS {self.variable}"


@dataclass
class CypherQuery:
    """A full (single) Cypher read query: an ordered sequence of clauses."""

    clauses: List[Clause] = field(default_factory=list)

    def return_clause(self) -> ReturnClause:
        """Return the final ``RETURN`` clause; every read query must have one."""
        for clause in reversed(self.clauses):
            if isinstance(clause, ReturnClause):
                return clause
        raise ValueError("query has no RETURN clause")

    def match_clauses(self) -> List[MatchClause]:
        """Return every MATCH clause in order."""
        return [clause for clause in self.clauses if isinstance(clause, MatchClause)]

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self.clauses)
