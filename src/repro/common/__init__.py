"""Shared infrastructure used across every Raqlet subsystem.

The :mod:`repro.common` package holds the small building blocks that all
frontends, IRs, analyses and backends rely on:

* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.location` -- source locations and spans for diagnostics.
* :mod:`repro.common.names` -- deterministic fresh-name generation.
* :mod:`repro.common.text` -- small text-formatting helpers for unparsers.
"""

from repro.common.errors import (
    AnalysisError,
    ExecutionError,
    ParseError,
    RaqletError,
    SchemaError,
    TranslationError,
    UnsupportedFeatureError,
)
from repro.common.location import SourceLocation, Span
from repro.common.names import NameGenerator
from repro.common.text import indent_block, sql_quote_string, strip_margin

__all__ = [
    "RaqletError",
    "ParseError",
    "SchemaError",
    "TranslationError",
    "AnalysisError",
    "ExecutionError",
    "UnsupportedFeatureError",
    "SourceLocation",
    "Span",
    "NameGenerator",
    "indent_block",
    "sql_quote_string",
    "strip_margin",
]
