"""Small text helpers shared by the unparsers (Soufflé, SQL, Cypher)."""

from __future__ import annotations

from typing import Iterable


def indent_block(text: str, spaces: int = 2) -> str:
    """Indent every non-empty line of ``text`` by ``spaces`` spaces."""
    pad = " " * spaces
    lines = text.splitlines()
    return "\n".join(pad + line if line.strip() else line for line in lines)


def strip_margin(text: str) -> str:
    """Remove a leading ``|`` margin from each line of a triple-quoted string.

    This keeps multi-line SQL/Datalog templates readable in the source while
    producing clean output text::

        strip_margin('''
            |WITH V1 AS (
            |  SELECT 1
            |)
        ''')
    """
    lines = []
    for line in text.splitlines():
        stripped = line.lstrip()
        if stripped.startswith("|"):
            lines.append(stripped[1:])
        elif stripped:
            lines.append(stripped)
    return "\n".join(lines)


def sql_quote_string(value: str) -> str:
    """Quote ``value`` as a SQL string literal, escaping embedded quotes."""
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def souffle_quote_string(value: str) -> str:
    """Quote ``value`` as a Soufflé symbol literal."""
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def join_nonempty(separator: str, parts: Iterable[str]) -> str:
    """Join the non-empty strings in ``parts`` with ``separator``."""
    return separator.join(part for part in parts if part)
