"""Exception hierarchy for the Raqlet compiler and its execution substrates.

Every error raised by this package derives from :class:`RaqletError`, so
callers embedding the compiler can catch a single exception type.  The
subclasses partition failures by pipeline stage: parsing, schema handling,
IR translation, static analysis and query execution.
"""

from __future__ import annotations

from typing import Optional

from repro.common.location import SourceLocation


class RaqletError(Exception):
    """Base class for every error raised by the Raqlet package."""


class ParseError(RaqletError):
    """Raised when a frontend cannot parse its input text.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    location:
        Optional position in the source text where the problem was detected.
    source_name:
        Optional name of the input (file name, query label) for diagnostics.
    """

    def __init__(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        source_name: Optional[str] = None,
    ) -> None:
        self.bare_message = message
        self.location = location
        self.source_name = source_name
        super().__init__(self._format())

    def _format(self) -> str:
        parts = []
        if self.source_name:
            parts.append(self.source_name)
        if self.location is not None:
            parts.append(str(self.location))
        prefix = ":".join(parts)
        if prefix:
            return f"{prefix}: {self.bare_message}"
        return self.bare_message


class SchemaError(RaqletError):
    """Raised for malformed or inconsistent PG-Schema / DL-Schema definitions."""


class TranslationError(RaqletError):
    """Raised when a query cannot be translated between two IRs."""


class AnalysisError(RaqletError):
    """Raised when a static analysis detects an invalid program.

    For example, a program whose negation cycles make it non-stratifiable.
    """


class ExecutionError(RaqletError):
    """Raised by the execution engines (Datalog, relational, graph, SQLite)."""


class UnsupportedFeatureError(TranslationError):
    """Raised when a query uses a feature a backend cannot express.

    Static analysis uses this to reject, for instance, mutually recursive
    programs on a backend restricted to linear recursion.
    """

    def __init__(self, feature: str, backend: Optional[str] = None) -> None:
        self.feature = feature
        self.backend = backend
        if backend:
            message = f"feature {feature!r} is not supported by backend {backend!r}"
        else:
            message = f"feature {feature!r} is not supported"
        super().__init__(message)
