"""Deterministic fresh-name generation.

The Cypher-to-PGIR lowering and several optimizer passes need to invent
identifiers (for anonymous graph elements, magic predicates, renamed rule
variables and so on).  Names must be deterministic so that compiling the same
query twice produces byte-identical artifacts, which the tests and the
"golden reference" story of the paper rely on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional, Set


class NameGenerator:
    """Produce fresh identifiers of the form ``<prefix><counter>``.

    The generator never emits a name contained in its ``reserved`` set, which
    callers seed with the identifiers already present in the query, so that
    generated names cannot capture user variables.
    """

    def __init__(self, reserved: Optional[Iterable[str]] = None) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._reserved: Set[str] = set(reserved or ())

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken so it is never generated."""
        self._reserved.add(name)

    def reserve_all(self, names: Iterable[str]) -> None:
        """Mark every name in ``names`` as taken."""
        self._reserved.update(names)

    def fresh(self, prefix: str = "x") -> str:
        """Return a new identifier starting with ``prefix``.

        Counters are per-prefix and start at 1, matching the paper's running
        example where the anonymous edge becomes ``x1``.
        """
        while True:
            self._counters[prefix] += 1
            candidate = f"{prefix}{self._counters[prefix]}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate

    def is_reserved(self, name: str) -> bool:
        """Return whether ``name`` has been reserved or generated already."""
        return name in self._reserved
