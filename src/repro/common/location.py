"""Source locations and spans used by frontends for error reporting."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A 1-based (line, column) position in an input text."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def advanced(self, text: str) -> "SourceLocation":
        """Return the location obtained after consuming ``text``.

        Newlines reset the column to 1 and increment the line counter; any
        other character advances the column.
        """
        line = self.line
        column = self.column
        for char in text:
            if char == "\n":
                line += 1
                column = 1
            else:
                column += 1
        return SourceLocation(line, column)


@dataclass(frozen=True)
class Span:
    """A half-open region ``[start, end)`` of an input text."""

    start: SourceLocation
    end: SourceLocation

    def __str__(self) -> str:
        return f"{self.start}-{self.end}"

    @staticmethod
    def point(location: SourceLocation) -> "Span":
        """Build a zero-width span at ``location``."""
        return Span(location, location)
