"""A worker pool serving prepared queries over one shared, epoch-versioned EDB.

The pool owns N worker threads.  Each worker wraps one
:class:`~repro.session.Session` over a private
:class:`~repro.engines.datalog.storage_shared.SnapshotView` of the shared
:class:`~repro.engines.datalog.storage_shared.SharedEDB`; all workers share
one rule executor, so compiled closures, columnar lowerings and the value
dictionary are built once pool-wide (their caches are lock-guarded for
exactly this).  Derived relations live in per-worker IDB namespaces
(``Return__w3q1`` — the session namespace machinery with a worker label), so
workers never fight over derived state.

**Binding-affinity routing.**  Requests are routed by ``(statement,
binding)``: the first request for a binding picks a worker round-robin, and
every later request for the same binding lands on the same worker.  A
worker's :class:`~repro.session.PreparedQuery` keeps its most recent
derivation warm, so the pool as a whole keeps up to N distinct bindings
materialised simultaneously — repeat requests cost a result scan instead of
a re-derivation.  That, not raw parallelism, is what multiplies read
throughput (and on a multi-core interpreter the workers overlap on top).

**Coalescing.**  Identical in-flight requests — same statement, same
binding, same shared epoch — share one execution: followers get the same
:class:`~concurrent.futures.Future`.  The epoch in the key means a request
arriving after a mutation never reuses a pre-mutation execution.

**Mutations** go through :meth:`ServingPool.mutate` straight into the shared
store (single-writer, epoch bump).  Workers discover the new epoch at their
next request, feed the delta-chain suffix into their session's log, and the
prepared queries maintain incrementally — O(|delta|) per worker, zero full
re-derivations on the streaming path.

**Subscriptions** ride the same machinery: :meth:`ServingPool.subscribe`
routes a ``(statement, binding)`` to a worker by the same affinity map and
registers a standing query on that worker's session
(:class:`~repro.reactive.subscriptions.SubscriptionManager`); every
:meth:`mutate` then pokes the subscription-owning workers, whose sync
flushes the session's reactive layer and pushes exact ``(added, removed)``
result deltas to the pool-level listeners — O(|delta|) per standing query,
no re-execution, exactly-once per epoch (a worker that already synced for a
query request simply has nothing left to deliver when the poke arrives).
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import RaqletError
from repro.engines.datalog.executor_compiled import ExecutorSpec, create_executor
from repro.engines.datalog.storage import Row, StoreBackend, StoreSpec
from repro.engines.datalog.storage_shared import SharedEDB, SnapshotView
from repro.engines.result import QueryResult
from repro.session import PreparedQuery, Session, detect_query_language


class PoolSaturatedError(RaqletError):
    """Raised by :meth:`ServingPool.submit` when admission control rejects a
    request (too many in flight); the serving protocol maps it to a
    retryable ``saturated`` error."""


@dataclass
class ServedResponse:
    """What one pool execution returns: the result plus its provenance."""

    result: QueryResult
    statement: str
    epoch: int
    worker: int


@dataclass
class _Statement:
    name: str
    compiled: object  # repro.pipeline.CompiledQuery
    version: int
    param_names: Tuple[str, ...]
    derived: frozenset  # pre-namespace IDB names — mutation guard


@dataclass
class _QueryTask:
    statement: _Statement
    params: Dict[str, object]
    inflight_key: tuple
    future: Future


class _Inflight:
    __slots__ = ("future", "epoch")

    def __init__(self, future: Future, epoch: int) -> None:
        self.future = future
        self.epoch = epoch


_STOP = object()


class _Worker:
    """One worker: a thread, a task queue, a snapshot view, a session."""

    def __init__(self, pool: "ServingPool", index: int) -> None:
        self.index = index
        self.view = SnapshotView(pool._shared)
        self.session = Session(
            pool._raqlet,
            store=self.view,
            executor=pool._executor,
            namespace=f"w{index}",
            **pool._engine_options,
        )
        #: shared epoch already folded into the session's delta log
        self.synced_epoch = pool._shared.epoch
        #: statement name -> (statement version, PreparedQuery)
        self.prepared: Dict[str, Tuple[int, PreparedQuery]] = {}
        self.queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self.executed_count = 0
        self.thread = threading.Thread(
            target=pool._worker_loop,
            args=(self,),
            name=f"raqlet-pool-w{index}",
            daemon=True,
        )


class ServingPool:
    """N worker sessions over one shared EDB, behind a submit/mutate API.

    Parameters
    ----------
    raqlet:
        The compiler (:class:`repro.pipeline.Raqlet`) statements are
        compiled with.
    facts:
        Initial extensional facts, bulk-loaded into the shared store.
    workers:
        Worker count — the number of bindings the pool keeps warm at once.
    store:
        Base store for the shared EDB (spec or instance; ``None`` honours
        ``REPRO_STORE``).
    executor:
        The pool-wide rule executor (``None`` honours ``REPRO_EXECUTOR``).
    max_pending:
        Admission-control bound on requests queued or executing; beyond it
        :meth:`submit` raises :class:`PoolSaturatedError`.
    engine_options:
        Forwarded to every worker session (``replan_threshold``, ``ivm``,
        ...).
    """

    def __init__(
        self,
        raqlet,  # repro.pipeline.Raqlet
        facts: Optional[Mapping[str, Iterable[Row]]] = None,
        *,
        workers: int = 4,
        store: StoreSpec = None,
        executor: ExecutorSpec = None,
        max_pending: int = 256,
        **engine_options,
    ) -> None:
        if workers < 1:
            raise RaqletError("a serving pool needs at least one worker")
        self._raqlet = raqlet
        # The pool closes the shared store only when it built it from a
        # spec; caller-supplied SharedEDBs and backends stay caller-owned.
        self._owns_shared = not isinstance(store, (SharedEDB, StoreBackend))
        self._shared = store if isinstance(store, SharedEDB) else SharedEDB(store)
        self._executor = create_executor(executor)
        self._engine_options = dict(engine_options)
        self.max_pending = max_pending
        if facts:
            self._shared.ingest(facts)
        self._statements: Dict[str, _Statement] = {}
        self._statement_seq = itertools.count(1)
        self._derived_originals: set = set()
        # dispatch state — all guarded by one mutex
        self._dispatch_lock = threading.Lock()
        self._inflight: Dict[tuple, _Inflight] = {}
        self._affinity: Dict[tuple, int] = {}
        self._round_robin = 0
        self._pending = 0
        self._closed = False
        # sid -> (worker, session-level Subscription); the worker owns the
        # standing query, the pool owns the routing and the id space.
        self._subscriptions: Dict[int, Tuple["_Worker", object]] = {}
        self._subscription_seq = itertools.count(1)
        self._ticker = None
        self.executed_count = 0
        self.coalesced_count = 0
        self.rejected_count = 0
        self.mutation_count = 0
        self.notification_count = 0
        self._workers = [_Worker(self, index) for index in range(workers)]
        for worker in self._workers:
            worker.thread.start()

    # -- shared state --------------------------------------------------------

    @property
    def shared(self) -> SharedEDB:
        """The epoch-versioned shared EDB (diagnostics, direct reads)."""
        return self._shared

    @property
    def epoch(self) -> int:
        return self._shared.epoch

    @property
    def workers(self) -> int:
        return len(self._workers)

    # -- statements ----------------------------------------------------------

    def prepare(self, name: str, query, *, language: Optional[str] = None) -> Tuple[str, ...]:
        """Register (or replace) the named prepared statement.

        ``query`` is Cypher text, Datalog text, or an existing
        :class:`~repro.pipeline.CompiledQuery`.  Compilation happens once,
        here; each worker instantiates its own namespaced
        :class:`~repro.session.PreparedQuery` from the shared compiled form
        on first use.  Returns the statement's late-bound parameter names.
        """
        self._check_open()
        if isinstance(query, str):
            resolved = language or detect_query_language(query)
            if resolved == "cypher":
                compiled = self._raqlet.compile_cypher(query)
            elif resolved == "datalog":
                compiled = self._raqlet.compile_datalog(query)
            else:
                raise RaqletError(
                    f"unknown query language {resolved!r} "
                    "(expected 'cypher' or 'datalog')"
                )
        else:
            compiled = query
        program = compiled.program(True)
        statement = _Statement(
            name=name,
            compiled=compiled,
            version=next(self._statement_seq),
            param_names=tuple(compiled.param_names(True)),
            derived=frozenset(program.idb_names()),
        )
        with self._dispatch_lock:
            self._statements[name] = statement
            self._derived_originals.update(statement.derived)
        return statement.param_names

    def statements(self) -> List[str]:
        with self._dispatch_lock:
            return sorted(self._statements)

    # -- request path --------------------------------------------------------

    def submit(
        self,
        name: str,
        parameters: Optional[Mapping[str, object]] = None,
        **bindings: object,
    ) -> "Future[ServedResponse]":
        """Enqueue one prepared-query execution; return its future.

        Identical in-flight requests (same statement, binding and shared
        epoch) coalesce onto one execution.  Raises
        :class:`PoolSaturatedError` when ``max_pending`` requests are
        already queued or executing.
        """
        self._check_open()
        params: Dict[str, object] = dict(parameters or {})
        params.update(bindings)
        with self._dispatch_lock:
            statement = self._statements.get(name)
            if statement is None:
                raise RaqletError(
                    f"unknown prepared statement {name!r} "
                    f"(prepared: {', '.join(sorted(self._statements)) or 'none'})"
                )
            binding_key = self._freeze(params)
            routing_key = (name, statement.version, binding_key)
            epoch = self._shared.epoch
            if binding_key is not None:
                entry = self._inflight.get(routing_key)
                if entry is not None and entry.epoch == epoch:
                    self.coalesced_count += 1
                    return entry.future
            if self._pending >= self.max_pending:
                self.rejected_count += 1
                raise PoolSaturatedError(
                    f"serving pool saturated ({self._pending} requests in "
                    f"flight, max_pending={self.max_pending})"
                )
            future: "Future[ServedResponse]" = Future()
            if binding_key is not None:
                self._inflight[routing_key] = _Inflight(future, epoch)
            worker = self._route(routing_key)
            self._pending += 1
        task = _QueryTask(
            statement=statement,
            params=params,
            inflight_key=routing_key,
            future=future,
        )
        worker.queue.put(task)
        return future

    def run(
        self,
        name: str,
        parameters: Optional[Mapping[str, object]] = None,
        *,
        timeout: Optional[float] = None,
        **bindings: object,
    ) -> QueryResult:
        """Synchronous :meth:`submit`: block for the result rows."""
        response = self.submit(name, parameters, **bindings).result(timeout)
        return response.result

    def _route(self, routing_key: tuple) -> _Worker:
        # caller holds the dispatch lock
        index = self._affinity.get(routing_key)
        if index is None:
            if len(self._affinity) >= 65536:
                self._affinity.clear()
            index = self._round_robin % len(self._workers)
            self._round_robin += 1
            self._affinity[routing_key] = index
        return self._workers[index]

    @staticmethod
    def _freeze(params: Dict[str, object]) -> Optional[tuple]:
        """A hashable binding key, or ``None`` when a value is unhashable
        (such a request is routed but never coalesced)."""
        try:
            return tuple(sorted(params.items(), key=lambda item: item[0]))
        except TypeError:
            return None

    # -- mutation path -------------------------------------------------------

    def mutate(
        self,
        insert: Optional[Mapping[str, Iterable[Row]]] = None,
        retract: Optional[Mapping[str, Iterable[Row]]] = None,
    ) -> Dict[str, int]:
        """Apply one batch of EDB inserts/retracts to the shared store.

        Single-writer (serialised inside the shared store), effective-only,
        one epoch bump for the whole batch.  Workers fold the delta into
        their incremental maintainers on their next request.
        """
        self._check_open()
        for relation in list(insert or ()) + list(retract or ()):
            self._check_extensional(relation)
        inserted, retracted, epoch = self._shared.apply(insert, retract)
        self.mutation_count += 1
        if inserted or retracted:
            self.poke()
        return {"inserted": inserted, "retracted": retracted, "epoch": epoch}

    def ingest(self, facts: Mapping[str, Iterable[Row]]) -> Dict[str, int]:
        """Bulk-insert facts (an :meth:`mutate` with only inserts)."""
        return self.mutate(insert=facts)

    def _check_extensional(self, relation: str) -> None:
        if relation in self._derived_originals:
            raise RaqletError(
                f"relation {relation!r} is derived by a prepared statement; "
                "only extensional (EDB) relations can be mutated"
            )

    # -- subscriptions -------------------------------------------------------

    def subscribe(
        self,
        name: str,
        listener,
        *,
        parameters: Optional[Mapping[str, object]] = None,
        timeout: float = 30.0,
        **bindings: object,
    ) -> int:
        """Register a standing query on the named prepared statement.

        ``listener(sid, statement_name, delta)`` is called — on the owning
        worker's thread — with a
        :class:`~repro.reactive.subscriptions.ResultDelta` after every
        mutation batch that changes the statement's result for this
        binding.  The subscription is routed by the same binding-affinity
        map as :meth:`submit`, so the standing derivation and the warm
        request path share one worker (and one maintenance pass).  Returns
        the subscription id for :meth:`unsubscribe`.
        """
        self._check_open()
        params: Dict[str, object] = dict(parameters or {})
        params.update(bindings)
        with self._dispatch_lock:
            statement = self._statements.get(name)
            if statement is None:
                raise RaqletError(
                    f"unknown prepared statement {name!r} "
                    f"(prepared: {', '.join(sorted(self._statements)) or 'none'})"
                )
            routing_key = (name, statement.version, self._freeze(params))
            worker = self._route(routing_key)
            sid = next(self._subscription_seq)

        def callback(delta, _sid=sid, _name=name) -> None:
            # Re-stamp with the shared epoch the worker just synced to —
            # the session-internal epoch means nothing outside the worker.
            delta.epoch = worker.synced_epoch
            self.notification_count += 1
            listener(_sid, _name, delta)

        def control(holder: Future) -> None:
            worker.view.begin_read()
            try:
                self._sync_worker(worker)
                holder.set_result(
                    worker.session.reactive.subscribe(
                        statement.compiled, callback, parameters=params, name=name
                    )
                )
            except BaseException as exc:  # surfaced to the subscriber
                holder.set_exception(exc)
            finally:
                worker.view.end_read()

        subscription = self._run_on_worker(worker, control, timeout)
        with self._dispatch_lock:
            self._subscriptions[sid] = (worker, subscription)
        return sid

    def unsubscribe(self, sid: int, *, timeout: float = 30.0) -> bool:
        """Tear down a subscription by id; ``False`` when already gone."""
        with self._dispatch_lock:
            entry = self._subscriptions.pop(sid, None)
        if entry is None:
            return False
        worker, subscription = entry

        def control(holder: Future) -> None:
            worker.view.begin_read()
            try:
                subscription.unsubscribe()
                holder.set_result(True)
            except BaseException as exc:
                holder.set_exception(exc)
            finally:
                worker.view.end_read()

        self._run_on_worker(worker, control, timeout)
        return True

    def poke(self) -> int:
        """Ask every subscription-owning worker to catch up and deliver.

        Called by :meth:`mutate` after each effective batch (and by the
        optional ticker): the worker syncs the shared delta chain into its
        session, whose reactive layer flushes the standing queries and
        fires the listeners.  Idempotent per epoch — a worker that is
        already current delivers nothing.  Returns the worker count poked.
        """
        with self._dispatch_lock:
            if self._closed:
                return 0
            owners = {
                worker.index: worker for worker, _ in self._subscriptions.values()
            }
        for worker in owners.values():
            worker.queue.put(self._notify_control(worker))
        return len(owners)

    def start_ticker(self, interval: float = 0.05):
        """Deliver notifications on a periodic tick as well as per mutation
        (a safety net for writers that bypass :meth:`mutate`, e.g. a
        caller-owned :class:`SharedEDB` shared with another pool)."""
        from repro.reactive.scheduler import ReactiveScheduler

        if self._ticker is None:
            self._ticker = ReactiveScheduler()
            self._ticker.every(interval, self.poke, name="pool-notify")
            self._ticker.start()
        return self._ticker

    def _notify_control(self, worker: "_Worker"):
        def control() -> None:
            worker.view.begin_read()
            try:
                # The sync feeds the session's delta log; the session's
                # reactive auto-flush then delivers inside this read span.
                self._sync_worker(worker)
            finally:
                worker.view.end_read()

        return control

    @staticmethod
    def _run_on_worker(worker: "_Worker", control, timeout: float):
        """Run ``control(holder)`` on the worker thread; await its result."""
        holder: Future = Future()
        worker.queue.put(lambda: control(holder))
        return holder.result(timeout)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self, worker: _Worker) -> None:
        while True:
            task = worker.queue.get()
            if task is _STOP:
                break
            if callable(task):
                task()  # control task (tests use this to park a worker)
                continue
            try:
                response = self._execute(worker, task)
            except BaseException as exc:  # surfaced through the future
                self._finish(task, None, exc)
            else:
                self._finish(task, response, None)

    def _sync_worker(self, worker: _Worker) -> int:
        """Fold the shared delta chain into the worker's session log.

        Caller must hold a ``begin_read`` span.  Prepared queries then
        maintain incrementally on their next run, and the session's
        reactive layer flushes (delivering subscription notifications)
        before this returns.  Idempotent per epoch.
        """
        epoch = worker.view.pinned_epoch
        if epoch != worker.synced_epoch:
            entries = worker.view.delta_since(worker.synced_epoch)
            # Stamp the target epoch before folding: subscription listeners
            # fire *during* the fold (auto-flush) and tag their deltas with
            # the shared epoch the worker is syncing to.
            previous = worker.synced_epoch
            worker.synced_epoch = epoch
            try:
                worker.session.sync_external_mutations(entries)
            except BaseException:
                worker.synced_epoch = previous
                raise
            worker.view.mark_consumed(epoch)
        return epoch

    def _execute(self, worker: _Worker, task: _QueryTask) -> ServedResponse:
        worker.view.begin_read()
        try:
            epoch = self._sync_worker(worker)
            prepared = self._prepared_for(worker, task.statement)
            result = prepared.run(dict(task.params))
            worker.executed_count += 1
            return ServedResponse(
                result=result,
                statement=task.statement.name,
                epoch=epoch,
                worker=worker.index,
            )
        finally:
            worker.view.end_read()

    def _prepared_for(self, worker: _Worker, statement: _Statement) -> PreparedQuery:
        cached = worker.prepared.get(statement.name)
        if cached is not None and cached[0] == statement.version:
            return cached[1]
        if cached is not None:
            # replaced statement: untrack the old prepared query and drop
            # its derived relations from this worker's local store
            stale = cached[1]
            worker.session._unregister_prepared(stale)
            for relation in stale.idb_relations:
                worker.view.clear_relation(relation)
        prepared = worker.session.prepare(statement.compiled)
        worker.prepared[statement.name] = (statement.version, prepared)
        return prepared

    def _finish(
        self,
        task: _QueryTask,
        response: Optional[ServedResponse],
        error: Optional[BaseException],
    ) -> None:
        if error is None:
            # Count before waking the waiter: a client that reads stats()
            # right after its run resolves must see this run counted.
            self.executed_count += 1
            task.future.set_result(response)
        else:
            task.future.set_exception(error)
        with self._dispatch_lock:
            self._pending -= 1
            entry = self._inflight.get(task.inflight_key)
            if entry is not None and entry.future is task.future:
                del self._inflight[task.inflight_key]

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A merged counter snapshot across pool, workers and shared store."""
        with self._dispatch_lock:
            pending = self._pending
            statements = sorted(self._statements)
            subscriptions = len(self._subscriptions)
        maintain = rederive = 0
        per_worker = []
        for worker in self._workers:
            engines = [prepared.engine for _, prepared in worker.prepared.values()]
            maintain += sum(engine.maintain_count for engine in engines)
            rederive += sum(engine.full_rederive_count for engine in engines)
            per_worker.append(
                {"worker": worker.index, "executed": worker.executed_count}
            )
        return {
            "workers": len(self._workers),
            "statements": statements,
            "pending": pending,
            "executed_count": self.executed_count,
            "coalesced_count": self.coalesced_count,
            "rejected_count": self.rejected_count,
            "mutation_count": self.mutation_count,
            "subscription_count": subscriptions,
            "notification_count": self.notification_count,
            "maintain_count": maintain,
            "full_rederive_count": rederive,
            "per_worker": per_worker,
            "executor": getattr(self._executor, "name", type(self._executor).__name__),
            "shared": self._shared.stats(),
        }

    # -- test hooks ----------------------------------------------------------

    def _pause_worker(self, index: int, timeout: float = 5.0) -> threading.Event:
        """TEST HOOK: park worker ``index`` until the returned event is set.

        Blocks until the worker has actually picked the barrier up, so the
        caller knows later submissions will queue behind it.
        """
        ready = threading.Event()
        release = threading.Event()

        def barrier() -> None:
            ready.set()
            release.wait(timeout)

        self._workers[index].queue.put(barrier)
        if not ready.wait(timeout):
            release.set()
            raise RuntimeError(f"worker {index} did not reach the barrier")
        return release

    # -- lifecycle -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RaqletError("serving pool is closed")

    def close(self) -> None:
        """Stop the workers and release sessions, views and (when owned)
        the shared store.  Idempotent; pending requests are drained first
        (each worker processes its queue up to the stop marker)."""
        if self._closed:
            return
        self._closed = True
        if self._ticker is not None:
            self._ticker.stop()
            self._ticker = None
        with self._dispatch_lock:
            self._subscriptions.clear()
        for worker in self._workers:
            worker.queue.put(_STOP)
        for worker in self._workers:
            worker.thread.join(timeout=30)
        for worker in self._workers:
            worker.session.close()
            worker.view.close()
        if self._owns_shared:
            self._shared.close()

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
