"""The asyncio front door: a JSON prepared-statement protocol over a pool.

Wire format: newline-delimited JSON objects over TCP, one request → one
response, pipelining allowed.  Operations:

``{"op": "prepare", "name": ..., "query": ..., "language"?: ...}``
    Compile and register a named statement; answers its parameter names.
``{"op": "run", "name": ..., "params"?: {...}}``
    Execute a prepared statement.  Answers ``columns``/``rows`` (the
    :meth:`QueryResult.to_jsonable` shape) plus the serving ``epoch`` and
    ``worker``.  Identical concurrent runs coalesce in the pool; a
    saturated pool answers ``{"ok": false, "code": "saturated"}`` — a
    retryable backpressure signal, which is the admission-control story.
``{"op": "mutate", "insert"?: {rel: [row, ...]}, "retract"?: {...}}``
    Apply one EDB mutation batch; answers effective counts and the new
    epoch.
``{"op": "subscribe", "name": ..., "params"?: {...}}``
    Register a standing query on a prepared statement; answers
    ``{"ok": true, "sid": ...}``.  From then on the connection receives
    **pushed** notification frames — ``{"event": "notification", "sid",
    "name", "epoch", "columns", "added", "removed"}`` — after every
    mutation batch that changes the statement's result for this binding
    (the result-row delta, maintained incrementally server-side, never by
    re-running the query).  Frames interleave with responses on the same
    newline-delimited stream; clients discriminate by the ``event`` key.
``{"op": "unsubscribe", "sid": ...}``
    Stop the named subscription; remaining subscriptions are torn down
    when the connection closes.
``{"op": "stats"}``, ``{"op": "ping"}``
    Counters snapshot / liveness.
``{"op": "shutdown"}``
    Acknowledge, then stop the server (used by the CLI smoke and tests).

Blocking pool work never runs on the event loop: ``run`` awaits the pool
future, ``prepare``/``mutate``/``subscribe`` go through the default
thread-pool executor, and notification callbacks (which fire on pool worker
threads) hop back onto the loop via ``run_coroutine_threadsafe``.  A
per-connection lock serialises responses and pushed frames so concurrent
writes never interleave bytes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.common.errors import RaqletError
from repro.serving.pool import PoolSaturatedError, ServingPool

#: requests larger than this are rejected instead of buffered (64 MiB —
#: generous for mutation batches, small enough to bound a bad client)
_LINE_LIMIT = 64 * 1024 * 1024


class _Connection:
    """Per-connection state: the writer, its frame lock, its subscriptions."""

    __slots__ = ("writer", "lock", "sids", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.sids: set = set()
        self.closed = False


class RaqletServer:
    """Serve a :class:`~repro.serving.pool.ServingPool` over TCP."""

    def __init__(
        self,
        pool: ServingPool,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._pool = pool
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        # live handler tasks -> their connection state; stop() closes the
        # transports and awaits the handlers so none dies by cancellation
        # (a cancelled streams handler trips asyncio's done-callback log)
        self._handlers: Dict[asyncio.Task, _Connection] = {}

    @property
    def pool(self) -> ServingPool:
        return self._pool

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; return the actual ``(host, port)``
        (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, limit=_LINE_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the transports feeds EOF to every pending readline, so
        # the handlers drain their cleanup paths and finish on their own.
        for ctx in self._handlers.values():
            ctx.closed = True
            ctx.writer.close()
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
            self._handlers.clear()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        ctx = _Connection(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers[task] = ctx
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(ctx, _error("request too large"))
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._dispatch(ctx, line)
                await self._send(ctx, response)
                if response.get("stopping"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            ctx.closed = True
            if ctx.sids:
                # Tear standing queries down off the loop (unsubscribe
                # round-trips through the owning worker's thread).
                loop = asyncio.get_running_loop()
                for sid in list(ctx.sids):
                    await loop.run_in_executor(None, self._pool.unsubscribe, sid)
                ctx.sids.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if task is not None:
                self._handlers.pop(task, None)

    @staticmethod
    async def _send(ctx: _Connection, payload: Dict) -> None:
        async with ctx.lock:
            ctx.writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await ctx.writer.drain()

    async def _push(self, ctx: _Connection, payload: Dict) -> None:
        """Send an unsolicited frame (notification) to a connection."""
        if ctx.closed:
            return
        try:
            await self._send(ctx, payload)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            ctx.closed = True

    async def _dispatch(self, ctx: _Connection, line: bytes) -> Dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return _error(f"invalid JSON: {exc}", code="bad-request")
        if not isinstance(request, dict) or "op" not in request:
            return _error("request must be an object with an 'op'", code="bad-request")
        op = request["op"]
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if handler is None:
            return _error(f"unknown op {op!r}", code="bad-request")
        try:
            return await handler(ctx, request)
        except PoolSaturatedError as exc:
            return _error(str(exc), code="saturated")
        except RaqletError as exc:
            return _error(str(exc), code="error")
        except Exception as exc:  # a bad request must not kill the server
            return _error(f"{type(exc).__name__}: {exc}", code="error")

    # -- operations ----------------------------------------------------------

    async def _op_ping(self, ctx: _Connection, request: Dict) -> Dict:
        return {"ok": True, "pong": True, "epoch": self._pool.epoch}

    async def _op_prepare(self, ctx: _Connection, request: Dict) -> Dict:
        name = request.get("name")
        query = request.get("query")
        if not isinstance(name, str) or not isinstance(query, str):
            return _error("prepare needs string 'name' and 'query'", code="bad-request")
        loop = asyncio.get_running_loop()
        param_names = await loop.run_in_executor(
            None, lambda: self._pool.prepare(name, query, language=request.get("language"))
        )
        return {"ok": True, "name": name, "params": list(param_names)}

    async def _op_run(self, ctx: _Connection, request: Dict) -> Dict:
        name = request.get("name")
        if not isinstance(name, str):
            return _error("run needs a string 'name'", code="bad-request")
        params = request.get("params")
        if params is None:
            params = {}
        if not isinstance(params, dict):
            return _error("'params' must be an object", code="bad-request")
        future = self._pool.submit(name, params)
        response = await asyncio.wrap_future(future)
        payload = response.result.to_jsonable()
        payload.update(
            {
                "ok": True,
                "name": name,
                "epoch": response.epoch,
                "worker": response.worker,
            }
        )
        return payload

    async def _op_mutate(self, ctx: _Connection, request: Dict) -> Dict:
        insert = _rows_payload(request.get("insert"))
        retract = _rows_payload(request.get("retract"))
        loop = asyncio.get_running_loop()
        outcome = await loop.run_in_executor(
            None, lambda: self._pool.mutate(insert=insert, retract=retract)
        )
        return {"ok": True, **outcome}

    async def _op_subscribe(self, ctx: _Connection, request: Dict) -> Dict:
        name = request.get("name")
        if not isinstance(name, str):
            return _error("subscribe needs a string 'name'", code="bad-request")
        params = request.get("params")
        if params is None:
            params = {}
        if not isinstance(params, dict):
            return _error("'params' must be an object", code="bad-request")
        loop = asyncio.get_running_loop()

        def listener(sid: int, statement: str, delta) -> None:
            # Fires on a pool worker thread; hop onto the loop to write.
            frame = {
                "event": "notification",
                "sid": sid,
                "name": statement,
                "epoch": delta.epoch,
                "columns": list(delta.columns),
                "added": [list(row) for row in delta.added],
                "removed": [list(row) for row in delta.removed],
            }
            asyncio.run_coroutine_threadsafe(self._push(ctx, frame), loop)

        sid = await loop.run_in_executor(
            None, lambda: self._pool.subscribe(name, listener, parameters=params)
        )
        ctx.sids.add(sid)
        return {"ok": True, "sid": sid, "name": name, "epoch": self._pool.epoch}

    async def _op_unsubscribe(self, ctx: _Connection, request: Dict) -> Dict:
        sid = request.get("sid")
        if not isinstance(sid, int):
            return _error("unsubscribe needs an integer 'sid'", code="bad-request")
        loop = asyncio.get_running_loop()
        removed = await loop.run_in_executor(None, self._pool.unsubscribe, sid)
        ctx.sids.discard(sid)
        return {"ok": True, "sid": sid, "removed": removed}

    async def _op_stats(self, ctx: _Connection, request: Dict) -> Dict:
        return {"ok": True, "stats": self._pool.stats()}

    async def _op_shutdown(self, ctx: _Connection, request: Dict) -> Dict:
        return {"ok": True, "stopping": True}


def _rows_payload(payload) -> Optional[Dict[str, list]]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise RaqletError("mutation payload must map relation -> rows")
    return {
        relation: [tuple(row) for row in rows] for relation, rows in payload.items()
    }


def _error(message: str, code: str = "error") -> Dict:
    return {"ok": False, "error": message, "code": code}
