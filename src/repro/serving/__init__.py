"""The concurrent serving layer: worker pool + asyncio front door.

:mod:`repro.serving.pool` — :class:`~repro.serving.pool.ServingPool`, N
worker sessions over one epoch-versioned shared EDB
(:class:`~repro.engines.datalog.storage_shared.SharedEDB`), with
binding-affinity routing, request coalescing and admission control.

:mod:`repro.serving.server` — :class:`~repro.serving.server.RaqletServer`,
an asyncio JSON prepared-statement protocol over the pool (the ``raqlet
serve`` CLI).
"""

from repro.serving.pool import PoolSaturatedError, ServedResponse, ServingPool
from repro.serving.server import RaqletServer

__all__ = [
    "PoolSaturatedError",
    "RaqletServer",
    "ServedResponse",
    "ServingPool",
]
