"""PGIR clause constructs and graph patterns (paper Figure 3b).

A :class:`PGIRQuery` is a sequence of clause constructs.  The paper's running
example lowers to::

    MATCH  { edge pattern IS_LOCATED_IN(x1): (n:Person) -> (p:City) }
    WHERE  { n.id = 42 }
    RETURN { n.firstName AS firstName, p.id AS cityId }  (DISTINCT)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.pgir.expr import PGExpression


class PGDirection(enum.Enum):
    """Direction of an edge pattern."""

    DIRECTED = "directed"
    REVERSED = "reversed"
    UNDIRECTED = "undirected"


@dataclass(frozen=True)
class PGNodePattern:
    """A normalised node pattern: a compiler identifier plus an optional label."""

    identifier: str
    label: Optional[str] = None

    def __str__(self) -> str:
        if self.label:
            return f"({self.identifier}:{self.label})"
        return f"({self.identifier})"


@dataclass(frozen=True)
class PGEdgePattern:
    """A normalised edge pattern between two node patterns.

    ``identifier`` is the (possibly compiler-generated) edge identifier,
    ``label`` the edge label, and ``direction`` records how the pattern was
    written.  Variable-length patterns carry hop bounds; ``max_hops is None``
    with ``var_length`` means unbounded.  ``shortest`` marks patterns wrapped
    in ``shortestPath``.
    """

    identifier: str
    label: Optional[str]
    source: PGNodePattern
    target: PGNodePattern
    direction: PGDirection = PGDirection.DIRECTED
    var_length: bool = False
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None
    shortest: bool = False
    path_variable: Optional[str] = None

    def __str__(self) -> str:
        label = f":{self.label}" if self.label else ""
        star = ""
        if self.var_length:
            low = "" if self.min_hops is None else str(self.min_hops)
            high = "" if self.max_hops is None else str(self.max_hops)
            star = f"*{low}..{high}" if (low or high) else "*"
        arrow = {
            PGDirection.DIRECTED: "->",
            PGDirection.REVERSED: "<-",
            PGDirection.UNDIRECTED: "--",
        }[self.direction]
        body = f"{self.source}-[{self.identifier}{label}{star}]{arrow}{self.target}"
        if self.shortest:
            return f"shortestPath({body})"
        return body


class PGClause:
    """Base class of PGIR clause constructs (marker class)."""


@dataclass(frozen=True)
class PGMatch(PGClause):
    """A MATCH construct holding node and edge patterns.

    ``node_patterns`` lists patterns for nodes that do not participate in any
    edge pattern of this clause (isolated nodes); nodes that appear as an edge
    endpoint are reachable through ``edge_patterns``.
    """

    edge_patterns: Tuple[PGEdgePattern, ...] = ()
    node_patterns: Tuple[PGNodePattern, ...] = ()
    optional: bool = False

    def all_node_patterns(self) -> List[PGNodePattern]:
        """Return every node pattern mentioned by the clause (no duplicates)."""
        result: List[PGNodePattern] = []
        seen = set()
        for edge in self.edge_patterns:
            for node in (edge.source, edge.target):
                if node.identifier not in seen:
                    seen.add(node.identifier)
                    result.append(node)
        for node in self.node_patterns:
            if node.identifier not in seen:
                seen.add(node.identifier)
                result.append(node)
        return result

    def __str__(self) -> str:
        keyword = "OPTIONAL MATCH" if self.optional else "MATCH"
        parts = [str(edge) for edge in self.edge_patterns]
        parts.extend(str(node) for node in self.node_patterns)
        return f"{keyword} {{ " + ", ".join(parts) + " }"


@dataclass(frozen=True)
class PGWhere(PGClause):
    """A WHERE construct holding a single boolean condition."""

    condition: PGExpression

    def __str__(self) -> str:
        return f"WHERE {{ {self.condition} }}"


@dataclass(frozen=True)
class PGProjectionItem:
    """A projection item ``expression AS alias`` used by WITH and RETURN."""

    expression: PGExpression
    alias: str

    def __str__(self) -> str:
        return f"{self.expression} AS {self.alias}"


@dataclass(frozen=True)
class PGWith(PGClause):
    """A WITH construct: projection (possibly aggregating) between stages."""

    items: Tuple[PGProjectionItem, ...]
    distinct: bool = False

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"WITH {distinct}{{ " + ", ".join(str(i) for i in self.items) + " }"


@dataclass(frozen=True)
class PGUnwind(PGClause):
    """An UNWIND construct: expand a list expression into rows."""

    expression: PGExpression
    alias: str

    def __str__(self) -> str:
        return f"UNWIND {{ {self.expression} AS {self.alias} }}"


@dataclass(frozen=True)
class PGReturn(PGClause):
    """A RETURN construct: the final projection of the query."""

    items: Tuple[PGProjectionItem, ...]
    distinct: bool = False

    def output_columns(self) -> List[str]:
        """Return the output column names in order."""
        return [item.alias for item in self.items]

    def __str__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"RETURN {distinct}{{ " + ", ".join(str(i) for i in self.items) + " }"


@dataclass
class PGIRQuery:
    """A PGIR query: an ordered sequence of clause constructs plus warnings.

    ``warnings`` records normalisation decisions the user should know about,
    for example dropped ``ORDER BY`` / ``LIMIT`` clauses (the paper drops them
    to achieve set-semantics equivalence across backends).
    """

    clauses: List[PGClause] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def return_clause(self) -> PGReturn:
        """Return the final RETURN construct."""
        for clause in reversed(self.clauses):
            if isinstance(clause, PGReturn):
                return clause
        raise ValueError("PGIR query has no RETURN construct")

    def match_clauses(self) -> List[PGMatch]:
        """Return every MATCH construct in order."""
        return [clause for clause in self.clauses if isinstance(clause, PGMatch)]

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self.clauses)
