"""Textual rendering of PGIR queries.

The pretty printer produces the boxed, clause-per-line layout used in the
paper's Figure 3b, which the tests and the Figure 3 benchmark compare against.
"""

from __future__ import annotations

from repro.pgir.nodes import (
    PGIRQuery,
    PGMatch,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)


def pgir_to_text(query: PGIRQuery) -> str:
    """Render ``query`` as readable multi-line text, one clause per block."""
    lines = []
    for clause in query.clauses:
        if isinstance(clause, PGMatch):
            keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
            lines.append(keyword)
            for edge in clause.edge_patterns:
                lines.append(f"  edge {edge}")
            for node in clause.node_patterns:
                lines.append(f"  node {node}")
        elif isinstance(clause, PGWhere):
            lines.append("WHERE")
            lines.append(f"  {clause.condition}")
        elif isinstance(clause, PGWith):
            keyword = "WITH DISTINCT" if clause.distinct else "WITH"
            lines.append(keyword)
            for item in clause.items:
                lines.append(f"  {item}")
        elif isinstance(clause, PGUnwind):
            lines.append("UNWIND")
            lines.append(f"  {clause.expression} AS {clause.alias}")
        elif isinstance(clause, PGReturn):
            keyword = "RETURN DISTINCT" if clause.distinct else "RETURN"
            lines.append(keyword)
            for item in clause.items:
                lines.append(f"  {item}")
        else:
            lines.append(str(clause))
    if query.warnings:
        lines.append("-- warnings:")
        for warning in query.warnings:
            lines.append(f"--   {warning}")
    return "\n".join(lines)
