"""Cypher-to-PGIR lowering (the first translation step of the pipeline).

The lowering normalises the query:

* every anonymous node or relationship receives a compiler-generated
  identifier (``x1``, ``x2``, ... for edges, ``n1``, ``n2``, ... for nodes),
* inline property maps such as ``{id: 42}`` become explicit WHERE conditions,
* incoming relationship patterns are normalised to directed patterns by
  swapping their endpoints,
* query parameters with values supplied at compile time are substituted;
  parameters *without* a value stay as late-bound ``PGParam`` placeholders
  (bound per execution through the prepared-query API),
* ``ORDER BY``, ``SKIP`` and ``LIMIT`` are dropped with a warning (the paper
  removes them so that set-semantics backends produce equivalent results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.common.names import NameGenerator
from repro.frontend.cypher import ast as cy
from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGExpression,
    PGFunction,
    PGNot,
    PGParam,
    PGProperty,
    PGVariable,
    conjoin,
)
from repro.pgir.nodes import (
    PGDirection,
    PGEdgePattern,
    PGIRQuery,
    PGMatch,
    PGNodePattern,
    PGProjectionItem,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)

ParamValues = Mapping[str, object]


@dataclass
class LoweringResult:
    """The outcome of lowering: the PGIR query plus bookkeeping.

    ``node_labels`` maps node identifiers to the label they were declared
    with (when any), which the PGIR-to-DLIR translation uses to pick EDBs.
    """

    query: PGIRQuery
    node_labels: Dict[str, Optional[str]] = field(default_factory=dict)
    edge_labels: Dict[str, Optional[str]] = field(default_factory=dict)


class _Lowerer:
    def __init__(self, parameters: Optional[ParamValues] = None) -> None:
        self._parameters = dict(parameters or {})
        self._names = NameGenerator()
        self._node_labels: Dict[str, Optional[str]] = {}
        self._edge_labels: Dict[str, Optional[str]] = {}
        self._warnings: List[str] = []
        self._with_counter = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def lower(self, query: cy.CypherQuery) -> LoweringResult:
        self._reserve_user_names(query)
        clauses: List[object] = []
        for clause in query.clauses:
            clauses.extend(self._lower_clause(clause))
        pgir = PGIRQuery(clauses=list(clauses), warnings=list(self._warnings))
        return LoweringResult(
            query=pgir,
            node_labels=dict(self._node_labels),
            edge_labels=dict(self._edge_labels),
        )

    def _reserve_user_names(self, query: cy.CypherQuery) -> None:
        for clause in query.clauses:
            if isinstance(clause, cy.MatchClause):
                for pattern in clause.patterns:
                    for node in pattern.nodes:
                        if node.variable:
                            self._names.reserve(node.variable)
                    for relationship in pattern.relationships:
                        if relationship.variable:
                            self._names.reserve(relationship.variable)
            elif isinstance(clause, (cy.ReturnClause, cy.WithClause)):
                for item in clause.items:
                    if item.alias:
                        self._names.reserve(item.alias)
            elif isinstance(clause, cy.UnwindClause):
                self._names.reserve(clause.variable)

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------

    def _lower_clause(self, clause: cy.Clause) -> List[object]:
        if isinstance(clause, cy.MatchClause):
            return self._lower_match(clause)
        if isinstance(clause, cy.WhereClause):
            return [PGWhere(condition=self._lower_expression(clause.condition))]
        if isinstance(clause, cy.WithClause):
            return self._lower_with(clause)
        if isinstance(clause, cy.UnwindClause):
            return [
                PGUnwind(
                    expression=self._lower_expression(clause.expression),
                    alias=clause.variable,
                )
            ]
        if isinstance(clause, cy.ReturnClause):
            return self._lower_return(clause)
        raise TranslationError(f"cannot lower Cypher clause {clause!r}")

    def _lower_match(self, clause: cy.MatchClause) -> List[object]:
        edge_patterns: List[PGEdgePattern] = []
        isolated_nodes: List[PGNodePattern] = []
        conditions: List[PGExpression] = []
        for pattern in clause.patterns:
            edges, nodes, pattern_conditions = self._lower_path(pattern)
            edge_patterns.extend(edges)
            isolated_nodes.extend(nodes)
            conditions.extend(pattern_conditions)
        if clause.where is not None:
            conditions.append(self._lower_expression(clause.where))
        result: List[object] = [
            PGMatch(
                edge_patterns=tuple(edge_patterns),
                node_patterns=tuple(isolated_nodes),
                optional=clause.optional,
            )
        ]
        condition = conjoin(tuple(conditions))
        if condition is not None:
            result.append(PGWhere(condition=condition))
        return result

    def _lower_path(
        self, pattern: cy.PathPattern
    ) -> Tuple[List[PGEdgePattern], List[PGNodePattern], List[PGExpression]]:
        conditions: List[PGExpression] = []
        node_patterns: List[PGNodePattern] = []
        for node in pattern.nodes:
            node_patterns.append(self._lower_node(node, conditions))
        edges: List[PGEdgePattern] = []
        for index, relationship in enumerate(pattern.relationships):
            source = node_patterns[index]
            target = node_patterns[index + 1]
            edges.append(
                self._lower_relationship(
                    relationship, source, target, pattern, conditions
                )
            )
        isolated = [] if edges else [node_patterns[0]]
        return edges, isolated, conditions

    def _lower_node(
        self, node: cy.NodePattern, conditions: List[PGExpression]
    ) -> PGNodePattern:
        identifier = node.variable or self._names.fresh("n")
        label = node.labels[0] if node.labels else None
        if len(node.labels) > 1:
            raise UnsupportedFeatureError("multiple node labels in one pattern")
        existing = self._node_labels.get(identifier)
        if existing is None or label is not None:
            self._node_labels[identifier] = label or existing
        for key, value in node.properties:
            conditions.append(
                PGBinary(
                    "=",
                    PGProperty(identifier, key),
                    self._lower_expression(value),
                )
            )
        return PGNodePattern(identifier=identifier, label=self._node_labels[identifier])

    def _lower_relationship(
        self,
        relationship: cy.RelPattern,
        source: PGNodePattern,
        target: PGNodePattern,
        pattern: cy.PathPattern,
        conditions: List[PGExpression],
    ) -> PGEdgePattern:
        identifier = relationship.variable or self._names.fresh("x")
        if len(relationship.types) > 1:
            raise UnsupportedFeatureError("alternative relationship types")
        label = relationship.types[0] if relationship.types else None
        self._edge_labels[identifier] = label
        for key, value in relationship.properties:
            conditions.append(
                PGBinary(
                    "=",
                    PGProperty(identifier, key),
                    self._lower_expression(value),
                )
            )
        if relationship.direction is cy.RelDirection.INCOMING:
            source, target = target, source
            direction = PGDirection.DIRECTED
        elif relationship.direction is cy.RelDirection.OUTGOING:
            direction = PGDirection.DIRECTED
        else:
            direction = PGDirection.UNDIRECTED
        return PGEdgePattern(
            identifier=identifier,
            label=label,
            source=source,
            target=target,
            direction=direction,
            var_length=relationship.var_length,
            min_hops=relationship.min_hops,
            max_hops=relationship.max_hops,
            shortest=pattern.shortest,
            path_variable=pattern.path_variable,
        )

    def _lower_with(self, clause: cy.WithClause) -> List[object]:
        if clause.order_by or clause.skip is not None or clause.limit is not None:
            self._warnings.append(
                "ORDER BY / SKIP / LIMIT in WITH dropped for set-semantics equivalence"
            )
        items = tuple(self._lower_item(item) for item in clause.items)
        result: List[object] = [PGWith(items=items, distinct=clause.distinct)]
        if clause.where is not None:
            result.append(PGWhere(condition=self._lower_expression(clause.where)))
        return result

    def _lower_return(self, clause: cy.ReturnClause) -> List[object]:
        if clause.order_by or clause.skip is not None or clause.limit is not None:
            self._warnings.append(
                "ORDER BY / SKIP / LIMIT in RETURN dropped for set-semantics equivalence"
            )
        items = tuple(self._lower_item(item) for item in clause.items)
        return [PGReturn(items=items, distinct=clause.distinct)]

    def _lower_item(self, item: cy.ReturnItem) -> PGProjectionItem:
        expression = self._lower_expression(item.expression)
        alias = item.alias or self._default_alias(item)
        return PGProjectionItem(expression=expression, alias=alias)

    def _default_alias(self, item: cy.ReturnItem) -> str:
        name = item.output_name()
        if name.isidentifier():
            return name
        self._with_counter += 1
        return f"col{self._with_counter}"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _lower_expression(self, expression: cy.Expression) -> PGExpression:
        if isinstance(expression, cy.Variable):
            return PGVariable(expression.name)
        if isinstance(expression, cy.Literal):
            return PGConst(expression.value)
        if isinstance(expression, cy.Parameter):
            if expression.name not in self._parameters:
                # Late binding: the value arrives at execution time (through
                # a prepared query), so keep the named placeholder.
                return PGParam(expression.name)
            return PGConst(self._parameters[expression.name])  # type: ignore[arg-type]
        if isinstance(expression, cy.PropertyAccess):
            subject = expression.subject
            if not isinstance(subject, cy.Variable):
                raise UnsupportedFeatureError("nested property access")
            return PGProperty(subject.name, expression.property_name)
        if isinstance(expression, cy.BinaryOp):
            op = "<>" if expression.op == "!=" else expression.op
            return PGBinary(
                op,
                self._lower_expression(expression.left),
                self._lower_expression(expression.right),
            )
        if isinstance(expression, cy.UnaryOp):
            return self._lower_unary(expression)
        if isinstance(expression, cy.FunctionCall):
            return PGFunction(
                expression.name,
                tuple(self._lower_expression(arg) for arg in expression.args),
            )
        if isinstance(expression, cy.Aggregate):
            argument = (
                self._lower_expression(expression.argument)
                if expression.argument is not None
                else None
            )
            return PGAggregate(
                func=expression.func, argument=argument, distinct=expression.distinct
            )
        if isinstance(expression, cy.ListLiteral):
            return PGFunction(
                "list", tuple(self._lower_expression(item) for item in expression.items)
            )
        raise TranslationError(f"cannot lower Cypher expression {expression!r}")

    def _lower_unary(self, expression: cy.UnaryOp) -> PGExpression:
        operand = self._lower_expression(expression.operand)
        if expression.op == "NOT":
            return PGNot(operand)
        if expression.op == "-":
            return PGBinary("-", PGConst(0), operand)
        if expression.op == "IS NULL":
            return PGFunction("isNull", (operand,))
        if expression.op == "IS NOT NULL":
            return PGNot(PGFunction("isNull", (operand,)))
        raise TranslationError(f"cannot lower unary operator {expression.op!r}")


def lower_cypher_to_pgir(
    query: cy.CypherQuery, parameters: Optional[ParamValues] = None
) -> LoweringResult:
    """Lower a parsed Cypher query into PGIR.

    ``parameters`` supplies compile-time values for ``$param`` references; a
    reference without a value is kept as a late-bound
    :class:`~repro.pgir.expr.PGParam` placeholder and must be bound at
    execution time (see :class:`repro.session.PreparedQuery`).
    """
    return _Lowerer(parameters).lower(query)
