"""PGIR: the Property Graph intermediate representation (paper Figure 3b).

PGIR is a clause-structured IR inspired by Cypher and the GPC pattern
calculus.  A PGIR query is an ordered sequence of clause constructs (MATCH,
WHERE, WITH, UNWIND, RETURN) whose contents are fully normalised:

* every node and edge pattern carries a compiler-generated identifier,
* inline property maps are rewritten into explicit WHERE conditions,
* expressions use PGIR's own small expression language
  (:mod:`repro.pgir.expr`), independent of the Cypher AST.
"""

from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGExpression,
    PGFunction,
    PGNot,
    PGParam,
    PGProperty,
    PGVariable,
)
from repro.pgir.lower import LoweringResult, lower_cypher_to_pgir
from repro.pgir.nodes import (
    PGEdgePattern,
    PGIRQuery,
    PGMatch,
    PGNodePattern,
    PGProjectionItem,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)
from repro.pgir.printer import pgir_to_text

__all__ = [
    "PGExpression",
    "PGVariable",
    "PGConst",
    "PGParam",
    "PGProperty",
    "PGBinary",
    "PGNot",
    "PGFunction",
    "PGAggregate",
    "PGIRQuery",
    "PGMatch",
    "PGWhere",
    "PGWith",
    "PGUnwind",
    "PGReturn",
    "PGProjectionItem",
    "PGNodePattern",
    "PGEdgePattern",
    "LoweringResult",
    "lower_cypher_to_pgir",
    "pgir_to_text",
]
