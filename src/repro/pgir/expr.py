"""PGIR expression language.

PGIR expressions are a normalised form of Cypher expressions: parameters with
compile-time values have been substituted (the rest stay as late-bound
:class:`PGParam` placeholders), ``!=`` has been rewritten to ``<>``, and
aggregation calls are explicit :class:`PGAggregate` nodes so later stages can
detect them without knowing Cypher's function-name conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

ConstValue = Union[int, float, str, bool, None]


class PGExpression:
    """Base class for PGIR expressions (marker class)."""

    def walk(self) -> Iterator["PGExpression"]:
        """Yield this expression and every sub-expression, depth first."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Tuple["PGExpression", ...]:
        """Return direct sub-expressions."""
        return ()


@dataclass(frozen=True)
class PGVariable(PGExpression):
    """A reference to a pattern identifier or a projected alias."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PGConst(PGExpression):
    """A constant value (int, float, string, bool or null)."""

    value: ConstValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class PGParam(PGExpression):
    """A **late-bound** query parameter reference ``$name``.

    Produced when a ``$param`` has no value at compile time: the value is
    supplied per execution (prepared-query style) instead of being inlined
    as a :class:`PGConst`.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class PGProperty(PGExpression):
    """A property access ``identifier.property``."""

    variable: str
    property_name: str

    def __str__(self) -> str:
        return f"{self.variable}.{self.property_name}"


@dataclass(frozen=True)
class PGBinary(PGExpression):
    """A binary operation (comparison, boolean connective or arithmetic)."""

    op: str
    left: PGExpression
    right: PGExpression

    def children(self) -> Tuple[PGExpression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class PGNot(PGExpression):
    """Logical negation."""

    operand: PGExpression

    def children(self) -> Tuple[PGExpression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class PGFunction(PGExpression):
    """A scalar function call, e.g. ``id(n)`` or ``length(p)``."""

    name: str
    args: Tuple[PGExpression, ...]

    def children(self) -> Tuple[PGExpression, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(arg) for arg in self.args)})"


@dataclass(frozen=True)
class PGAggregate(PGExpression):
    """An aggregation: ``count``, ``sum``, ``avg``, ``min``, ``max``, ``collect``.

    ``argument`` is ``None`` for ``count(*)``.
    """

    func: str
    argument: Optional[PGExpression]
    distinct: bool = False

    def children(self) -> Tuple[PGExpression, ...]:
        return (self.argument,) if self.argument is not None else ()

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func}({distinct}{inner})"


def expression_variables(expression: PGExpression) -> Tuple[str, ...]:
    """Return the names of all identifiers referenced by ``expression``."""
    names = []
    for node in expression.walk():
        if isinstance(node, PGVariable):
            names.append(node.name)
        elif isinstance(node, PGProperty):
            names.append(node.variable)
    seen = set()
    unique = []
    for name in names:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return tuple(unique)


def contains_aggregate(expression: PGExpression) -> bool:
    """Return whether ``expression`` contains an aggregation call."""
    return any(isinstance(node, PGAggregate) for node in expression.walk())


def split_conjunction(expression: PGExpression) -> Tuple[PGExpression, ...]:
    """Split a top-level ``AND`` tree into its conjuncts."""
    if isinstance(expression, PGBinary) and expression.op == "AND":
        return split_conjunction(expression.left) + split_conjunction(expression.right)
    return (expression,)


def conjoin(expressions: Tuple[PGExpression, ...]) -> Optional[PGExpression]:
    """Combine expressions with ``AND``; return ``None`` for an empty tuple."""
    result: Optional[PGExpression] = None
    for expression in expressions:
        result = expression if result is None else PGBinary("AND", result, expression)
    return result
