"""DLIR: the Datalog intermediate representation (paper Figure 3c).

DLIR is Raqlet's core IR.  A program is a set of rules over relations declared
in a :class:`~repro.schema.dl_schema.DLSchema`; its semantics is the least
fixpoint of stratified Datalog with negation and aggregation (Section 6 of the
paper).  All static analyses (:mod:`repro.analysis`) and optimizations
(:mod:`repro.optimize`) operate on this representation.
"""

from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
    bind_parameters,
    program_param_names,
    rename_relations,
    rule_param_names,
)
from repro.dlir.builder import ProgramBuilder
from repro.dlir.from_pgir import PGIRToDLIR, translate_pgir_to_dlir
from repro.dlir.printer import program_to_text
from repro.dlir.types import infer_rule_types

__all__ = [
    "Term",
    "Var",
    "Const",
    "Param",
    "Wildcard",
    "bind_parameters",
    "program_param_names",
    "rename_relations",
    "rule_param_names",
    "ArithExpr",
    "Atom",
    "NegatedAtom",
    "Comparison",
    "Aggregation",
    "Literal",
    "Rule",
    "DLIRProgram",
    "ProgramBuilder",
    "PGIRToDLIR",
    "translate_pgir_to_dlir",
    "program_to_text",
    "infer_rule_types",
]
