"""Type inference for DLIR rules.

IDB relations created during translation need column types (for Soufflé
``.decl`` statements and for SQL casting).  The inference propagates types
from EDB declarations through variable occurrences: a variable bound at a
typed column position takes that column's type; constants carry their own
type; arithmetic yields a number (or float when either side is a float).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Rule,
    Term,
    Var,
)
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType


def _merge(existing: Optional[DLType], new: Optional[DLType]) -> Optional[DLType]:
    if existing is None:
        return new
    if new is None:
        return existing
    if existing == new:
        return existing
    if DLType.FLOAT in (existing, new) and DLType.NUMBER in (existing, new):
        return DLType.FLOAT
    # Conflicting symbol/number assignments: prefer symbol, which is safe for
    # printing and keeps the engines working on strings.
    return DLType.SYMBOL


def term_type(term: Term, env: Dict[str, DLType]) -> Optional[DLType]:
    """Return the inferred type of ``term`` under the variable typing ``env``."""
    if isinstance(term, Const):
        return term.dl_type()
    if isinstance(term, Var):
        return env.get(term.name)
    if isinstance(term, ArithExpr):
        left = term_type(term.left, env)
        right = term_type(term.right, env)
        if DLType.FLOAT in (left, right):
            return DLType.FLOAT
        return DLType.NUMBER
    return None


def infer_variable_types(
    rule: Rule, schema: DLSchema, seed: Optional[Dict[str, DLType]] = None
) -> Dict[str, DLType]:
    """Infer a typing for the variables of ``rule`` from ``schema``.

    ``seed`` provides already-known types (for example from a previously
    typed IDB the rule reads from).  Inference iterates to a fixpoint so that
    types flow through equality comparisons such as ``p = cityId``.
    """
    env: Dict[str, DLType] = dict(seed or {})
    atoms: List[Atom] = rule.body_atoms()
    atoms.extend(negated.atom for negated in rule.negated_atoms())
    changed = True
    while changed:
        changed = False
        for atom in atoms:
            declaration = schema.maybe_get(atom.relation)
            if declaration is None:
                continue
            for term, column in zip(atom.terms, declaration.columns):
                if isinstance(term, Var):
                    merged = _merge(env.get(term.name), column.type)
                    if merged is not None and env.get(term.name) != merged:
                        env[term.name] = merged
                        changed = True
        for comparison in rule.comparisons():
            if comparison.op != "=":
                continue
            left, right = comparison.left, comparison.right
            left_type = term_type(left, env)
            right_type = term_type(right, env)
            if isinstance(left, Var) and right_type is not None:
                merged = _merge(env.get(left.name), right_type)
                if env.get(left.name) != merged and merged is not None:
                    env[left.name] = merged
                    changed = True
            if isinstance(right, Var) and left_type is not None:
                merged = _merge(env.get(right.name), left_type)
                if env.get(right.name) != merged and merged is not None:
                    env[right.name] = merged
                    changed = True
        for aggregation in rule.aggregations:
            inferred = _aggregation_type(aggregation, env)
            if inferred is not None:
                merged = _merge(env.get(aggregation.result.name), inferred)
                if env.get(aggregation.result.name) != merged and merged is not None:
                    env[aggregation.result.name] = merged
                    changed = True
    return env


def _aggregation_type(aggregation: Aggregation, env: Dict[str, DLType]) -> Optional[DLType]:
    if aggregation.func == "count":
        return DLType.NUMBER
    if aggregation.func == "collect":
        return DLType.SYMBOL
    if aggregation.func == "avg":
        return DLType.FLOAT
    if aggregation.argument is None:
        return DLType.NUMBER
    return term_type(aggregation.argument, env)


def infer_rule_types(
    rule: Rule,
    schema: DLSchema,
    column_names: Optional[List[str]] = None,
    seed: Optional[Dict[str, DLType]] = None,
) -> DLRelation:
    """Infer the declaration of the rule's head relation.

    ``column_names`` overrides the generated column names (defaults to the
    head variable names, or ``c0``, ``c1``, ... for non-variable terms).
    """
    env = infer_variable_types(rule, schema, seed)
    columns = []
    for index, term in enumerate(rule.head.terms):
        if column_names is not None and index < len(column_names):
            name = column_names[index]
        elif isinstance(term, Var):
            name = term.name
        else:
            name = f"c{index}"
        inferred = term_type(term, env) or DLType.NUMBER
        columns.append(DLColumn(name, inferred))
    return DLRelation(name=rule.head.relation, columns=tuple(columns), is_edb=False)


def declare_idbs(program: DLIRProgram) -> None:
    """Add inferred declarations for any IDB missing from the program schema.

    Rules are processed in order and re-processed once so that types flow
    through chains of IDBs (``Match1`` feeding ``Where1`` feeding ``Return``).
    """
    for _ in range(2):
        for rule in program.rules:
            existing = program.schema.maybe_get(rule.head.relation)
            declaration = infer_rule_types(rule, program.schema)
            if existing is None:
                program.schema.add(declaration)
            elif existing.is_edb is False and existing.arity == declaration.arity:
                # Refine earlier placeholder declarations when inference finds
                # more precise types on a later pass.
                merged_columns = []
                for old, new in zip(existing.columns, declaration.columns):
                    merged_type = _merge(old.type, new.type) or old.type
                    merged_columns.append(DLColumn(old.name, merged_type))
                program.schema.relations[rule.head.relation] = DLRelation(
                    name=rule.head.relation,
                    columns=tuple(merged_columns),
                    is_edb=False,
                )
