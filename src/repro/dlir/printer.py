"""Human-readable rendering of DLIR programs.

This printer is for diagnostics and tests; the Soufflé backend in
:mod:`repro.backends.souffle` produces executable Soufflé syntax instead.
"""

from __future__ import annotations

from repro.dlir.core import DLIRProgram


def program_to_text(program: DLIRProgram, include_schema: bool = True) -> str:
    """Render ``program`` with one declaration / rule / output per line."""
    lines = []
    if include_schema:
        for relation in program.schema:
            kind = "edb" if relation.is_edb else "idb"
            lines.append(f"// {kind} {relation}")
    for relation, rows in sorted(program.facts.items()):
        for row in rows:
            values = ", ".join(
                f'"{value}"' if isinstance(value, str) else str(value) for value in row
            )
            lines.append(f"{relation}({values}).")
    for rule in program.rules:
        lines.append(str(rule))
    for name in program.outputs:
        lines.append(f".output {name}")
    return "\n".join(lines)
