"""Fluent construction helpers for DLIR programs.

The builder is used by tests, examples and the Datalog frontend to assemble
programs without spelling out every dataclass, e.g.::

    builder = ProgramBuilder()
    builder.edb("edge", [("src", "number"), ("dst", "number")])
    builder.idb("tc", [("src", "number"), ("dst", "number")])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "y"])])
    builder.rule("tc", ["x", "y"], [("edge", ["x", "z"]), ("tc", ["z", "y"])])
    builder.output("tc")
    program = builder.build()
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.dlir.core import (
    Aggregation,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.schema.dl_schema import DLColumn, DLRelation, DLType

TermSpec = Union[Term, str, int, float, bool]
AtomSpec = Tuple[str, Sequence[TermSpec]]


def as_term(spec: TermSpec) -> Term:
    """Coerce a term specification into a :class:`Term`.

    Strings become variables, except ``"_"`` which becomes a wildcard and
    strings wrapped in double quotes which become symbol constants.  Numbers
    and booleans become constants.
    """
    if isinstance(spec, Term):
        return spec
    if isinstance(spec, bool):
        return Const(spec)
    if isinstance(spec, (int, float)):
        return Const(spec)
    if spec == "_":
        return Wildcard()
    if spec.startswith('"') and spec.endswith('"') and len(spec) >= 2:
        return Const(spec[1:-1])
    return Var(spec)


def atom(relation: str, terms: Sequence[TermSpec]) -> Atom:
    """Build an :class:`Atom` from a relation name and term specifications."""
    return Atom(relation, tuple(as_term(term) for term in terms))


class ProgramBuilder:
    """Incrementally assemble a :class:`DLIRProgram`."""

    def __init__(self) -> None:
        self._program = DLIRProgram()

    # -- declarations ----------------------------------------------------

    def edb(self, name: str, columns: Sequence[Tuple[str, str]]) -> "ProgramBuilder":
        """Declare an extensional relation with ``(column, type_name)`` pairs."""
        self._program.declare(
            DLRelation(
                name=name,
                columns=tuple(
                    DLColumn(column, DLType(type_name)) for column, type_name in columns
                ),
                is_edb=True,
            )
        )
        return self

    def idb(self, name: str, columns: Sequence[Tuple[str, str]]) -> "ProgramBuilder":
        """Declare an intensional relation with ``(column, type_name)`` pairs."""
        self._program.declare(
            DLRelation(
                name=name,
                columns=tuple(
                    DLColumn(column, DLType(type_name)) for column, type_name in columns
                ),
                is_edb=False,
            )
        )
        return self

    # -- rules -----------------------------------------------------------

    def rule(
        self,
        head_relation: str,
        head_terms: Sequence[TermSpec],
        body_atoms: Iterable[AtomSpec] = (),
        negated: Iterable[AtomSpec] = (),
        comparisons: Iterable[Tuple[str, TermSpec, TermSpec]] = (),
        aggregations: Iterable[Aggregation] = (),
        subsume_min: Optional[int] = None,
        subsume_max: Optional[int] = None,
    ) -> "ProgramBuilder":
        """Add a rule; see the module docstring for an example."""
        body: List[Literal] = [atom(name, terms) for name, terms in body_atoms]
        body.extend(NegatedAtom(atom(name, terms)) for name, terms in negated)
        body.extend(
            Comparison(op, as_term(left), as_term(right))
            for op, left, right in comparisons
        )
        self._program.add_rule(
            Rule(
                head=atom(head_relation, head_terms),
                body=tuple(body),
                aggregations=tuple(aggregations),
                subsume_min=subsume_min,
                subsume_max=subsume_max,
            )
        )
        return self

    def fact(self, relation: str, values: Sequence[Union[int, float, str, bool]]) -> "ProgramBuilder":
        """Add a ground fact for an EDB relation."""
        self._program.add_fact(relation, tuple(values))
        return self

    def output(self, relation: str) -> "ProgramBuilder":
        """Mark ``relation`` as a program output."""
        self._program.add_output(relation)
        return self

    def input(self, relation: str) -> "ProgramBuilder":
        """Mark ``relation`` as an input (EDB loaded from the environment)."""
        if relation not in self._program.inputs:
            self._program.inputs.append(relation)
        return self

    # -- finalisation ----------------------------------------------------

    def build(self, validate: bool = True) -> DLIRProgram:
        """Return the assembled program, optionally validating its structure."""
        if validate:
            problems = self._program.validate()
            if problems:
                raise ValueError("invalid DLIR program: " + "; ".join(problems))
        return self._program
