"""PGIR-to-DLIR translation (paper Section 3, Figure 3c).

Each PGIR clause construct becomes one (or, for disjunctive conditions,
several) DLIR rule(s):

* ``MATCH``  -> ``Match<k>``  rules joining the EDBs of its node and edge
  patterns (variable-length and shortest-path patterns introduce recursive
  helper IDBs),
* ``WHERE``  -> ``Where<k>``  rules filtering the previous view,
* ``WITH``   -> ``With<k>``   projection / aggregation rules,
* ``RETURN`` -> the final ``Return`` rule, which is the program output.

The translation keeps a *scope*: the ordered list of variables carried by the
current view, with enough provenance (node label, edge relation) to resolve
property accesses into EDB atoms, exactly as the running example resolves
``n.firstName`` by adding a ``Person(n, firstName, _, ...)`` atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.common.names import NameGenerator
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.dlir.types import declare_idbs
from repro.pgir.expr import (
    PGAggregate,
    PGBinary,
    PGConst,
    PGExpression,
    PGFunction,
    PGNot,
    PGParam,
    PGProperty,
    PGVariable,
    split_conjunction,
)
from repro.pgir.lower import LoweringResult
from repro.pgir.nodes import (
    PGDirection,
    PGEdgePattern,
    PGIRQuery,
    PGMatch,
    PGNodePattern,
    PGProjectionItem,
    PGReturn,
    PGUnwind,
    PGWhere,
    PGWith,
)
from repro.schema.dl_schema import DLColumn, DLRelation, DLType
from repro.schema.translate import SchemaMapping

_MAX_UNROLLED_HOPS = 16


@dataclass
class VarInfo:
    """Provenance of a scope variable.

    ``node_label`` is set when the variable holds a node id (so property
    accesses can be resolved); ``edge_relation`` when it holds an edge's id
    property.  ``dl_type`` is the best-known column type.
    """

    name: str
    dl_type: DLType = DLType.NUMBER
    node_label: Optional[str] = None
    edge_relation: Optional[str] = None


@dataclass
class Scope:
    """The ordered set of variables carried by the current view."""

    variables: List[VarInfo] = field(default_factory=list)

    def names(self) -> List[str]:
        """Return variable names in order."""
        return [info.name for info in self.variables]

    def get(self, name: str) -> Optional[VarInfo]:
        """Return the :class:`VarInfo` for ``name`` if present."""
        for info in self.variables:
            if info.name == name:
                return info
        return None

    def add(self, info: VarInfo) -> None:
        """Add a variable unless already present (first declaration wins)."""
        if self.get(info.name) is None:
            self.variables.append(info)

    def copy(self) -> "Scope":
        """Return an independent copy."""
        return Scope(variables=[replace(info) for info in self.variables])


class _RuleBody:
    """Accumulates the body of a single DLIR rule under construction.

    Property accesses share one EDB atom per (variable, relation) pair whose
    terms start as wildcards and get filled in as properties are requested --
    this reproduces the paper's ``Person(n, firstName, _, _, ...)`` shape.
    """

    def __init__(self, translator: "PGIRToDLIR", scope: Scope) -> None:
        self._translator = translator
        self.scope = scope
        self.literals: List[Literal] = []
        self._property_atoms: Dict[Tuple[str, str], List[Term]] = {}
        self._property_atom_order: List[Tuple[str, str]] = []
        self._names = translator.names

    def add_literal(self, literal: Literal) -> None:
        """Append a literal that is already fully built."""
        self.literals.append(literal)

    def property_term(
        self, variable: str, property_name: str, preferred_name: Optional[str] = None
    ) -> Term:
        """Return a term holding ``variable.property_name``, adding atoms as needed."""
        info = self.scope.get(variable)
        if info is None:
            raise TranslationError(f"variable {variable!r} is not in scope")
        if info.node_label is not None:
            relation = self._translator.mapping.node_relation(info.node_label)
            if property_name == "id":
                # The node id *is* the variable, but the paper still adds the
                # label atom to record the membership check.
                self._ensure_property_atom(variable, relation)
                return Var(variable)
            index = relation.column_index(property_name)
            terms = self._ensure_property_atom(variable, relation)
            if isinstance(terms[index], Wildcard):
                name = preferred_name or self._names.fresh(f"{variable}_{property_name}_")
                terms[index] = Var(name)
            return terms[index]
        if info.edge_relation is not None:
            relation = self._translator.program.schema.get(info.edge_relation)
            if property_name == "id" and relation.has_column("id"):
                return Var(variable)
            raise UnsupportedFeatureError(
                f"property access {variable}.{property_name} on an edge variable"
            )
        raise TranslationError(
            f"cannot access property {property_name!r} of value variable {variable!r}"
        )

    def _ensure_property_atom(self, variable: str, relation: DLRelation) -> List[Term]:
        key = (variable, relation.name)
        if key not in self._property_atoms:
            terms: List[Term] = [Wildcard() for _ in range(relation.arity)]
            terms[0] = Var(variable)
            self._property_atoms[key] = terms
            self._property_atom_order.append(key)
        return self._property_atoms[key]

    def finish(self) -> Tuple[Literal, ...]:
        """Return the final literal tuple: property atoms come before comparisons."""
        atoms: List[Literal] = []
        others: List[Literal] = []
        for literal in self.literals:
            if isinstance(literal, Atom):
                atoms.append(literal)
            else:
                others.append(literal)
        for key in self._property_atom_order:
            variable, relation_name = key
            terms = self._property_atoms[key]
            atom = Atom(relation_name, tuple(terms))
            if not self._is_duplicate(atoms, atom):
                atoms.append(atom)
        return tuple(atoms + others)

    @staticmethod
    def _is_duplicate(existing: Sequence[Literal], candidate: Atom) -> bool:
        for literal in existing:
            if isinstance(literal, Atom) and literal == candidate:
                return True
        return False


class PGIRToDLIR:
    """Translate a lowered PGIR query into a DLIR program."""

    def __init__(self, mapping: SchemaMapping, lowering: LoweringResult) -> None:
        self.mapping = mapping
        self.lowering = lowering
        self.program = DLIRProgram(schema=mapping.dl_schema.copy())
        self.names = NameGenerator(reserved=self._reserved_names())
        self._scope = Scope()
        self._current_relation: Optional[str] = None
        self._match_counter = 0
        self._where_counter = 0
        self._with_counter = 0
        self._undirected_cache: Dict[str, str] = {}
        self._varlen_counter = 0

    def _reserved_names(self) -> List[str]:
        names = list(self.lowering.node_labels.keys())
        names.extend(self.lowering.edge_labels.keys())
        return names

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def translate(self) -> DLIRProgram:
        """Run the translation and return the resulting program."""
        query = self.lowering.query
        for clause in query.clauses:
            if isinstance(clause, PGMatch):
                self._translate_match(clause)
            elif isinstance(clause, PGWhere):
                self._translate_where(clause)
            elif isinstance(clause, PGWith):
                self._translate_projection(clause.items, relation=self._next_with_name())
            elif isinstance(clause, PGReturn):
                self._translate_projection(clause.items, relation="Return")
            elif isinstance(clause, PGUnwind):
                raise UnsupportedFeatureError("UNWIND", backend="DLIR translation")
            else:
                raise TranslationError(f"unknown PGIR clause {clause!r}")
        if "Return" not in {rule.head.relation for rule in self.program.rules}:
            raise TranslationError("PGIR query has no RETURN construct")
        self.program.add_output("Return")
        declare_idbs(self.program)
        problems = self.program.validate()
        if problems:
            raise TranslationError("invalid DLIR program: " + "; ".join(problems))
        return self.program

    # ------------------------------------------------------------------
    # Clause translation
    # ------------------------------------------------------------------

    def _next_match_name(self) -> str:
        self._match_counter += 1
        return f"Match{self._match_counter}"

    def _next_where_name(self) -> str:
        self._where_counter += 1
        return f"Where{self._where_counter}"

    def _next_with_name(self) -> str:
        self._with_counter += 1
        return f"With{self._with_counter}"

    def _previous_view_atom(self, scope: Scope) -> Optional[Atom]:
        if self._current_relation is None:
            return None
        return Atom(
            self._current_relation, tuple(Var(name) for name in scope.names())
        )

    def _translate_match(self, clause: PGMatch) -> None:
        if clause.optional:
            raise UnsupportedFeatureError("OPTIONAL MATCH", backend="DLIR translation")
        previous_scope = self._scope.copy()
        new_scope = previous_scope.copy()
        body = _RuleBody(self, new_scope)
        previous_atom = self._previous_view_atom(previous_scope)
        if previous_atom is not None:
            body.add_literal(previous_atom)
        for edge in clause.edge_patterns:
            self._translate_edge_pattern(edge, body, new_scope)
        for node in clause.node_patterns:
            self._bind_node(node, body, new_scope)
        relation = self._next_match_name()
        head = Atom(relation, tuple(Var(name) for name in new_scope.names()))
        self.program.add_rule(Rule(head=head, body=body.finish()))
        self._scope = new_scope
        self._current_relation = relation

    def _bind_node(self, node: PGNodePattern, body: _RuleBody, scope: Scope) -> None:
        label = node.label or self.lowering.node_labels.get(node.identifier)
        info = scope.get(node.identifier)
        if info is None:
            info = VarInfo(name=node.identifier, node_label=label)
            scope.add(info)
        elif info.node_label is None and label is not None:
            info.node_label = label
        if info.node_label is not None:
            relation = self.mapping.node_relation(info.node_label)
            terms: List[Term] = [Wildcard() for _ in range(relation.arity)]
            terms[0] = Var(node.identifier)
            body.add_literal(Atom(relation.name, tuple(terms)))

    def _translate_edge_pattern(
        self, edge: PGEdgePattern, body: _RuleBody, scope: Scope
    ) -> None:
        source_label, target_label = self._resolve_endpoint_labels(edge)
        source = PGNodePattern(edge.source.identifier, source_label)
        target = PGNodePattern(edge.target.identifier, target_label)
        self._bind_node(source, body, scope)
        self._bind_node(target, body, scope)
        if edge.var_length or edge.shortest:
            self._translate_var_length_edge(edge, source_label, target_label, body, scope)
            return
        relation = self._edge_relation(edge, source_label, target_label)
        if edge.direction is PGDirection.UNDIRECTED:
            relation_name = self._undirected_relation(relation.name)
            terms: List[Term] = [Var(source.identifier), Var(target.identifier)]
            body.add_literal(Atom(relation_name, tuple(terms)))
            return
        terms = [Wildcard() for _ in range(relation.arity)]
        terms[0] = Var(source.identifier)
        terms[1] = Var(target.identifier)
        if relation.has_column("id"):
            index = relation.column_index("id")
            terms[index] = Var(edge.identifier)
            scope.add(
                VarInfo(
                    name=edge.identifier,
                    dl_type=DLType.NUMBER,
                    edge_relation=relation.name,
                )
            )
        body.add_literal(Atom(relation.name, tuple(terms)))

    def _resolve_endpoint_labels(
        self, edge: PGEdgePattern
    ) -> Tuple[Optional[str], Optional[str]]:
        source_label = edge.source.label or self.lowering.node_labels.get(
            edge.source.identifier
        )
        target_label = edge.target.label or self.lowering.node_labels.get(
            edge.target.identifier
        )
        source_label = source_label or self._scope_label(edge.source.identifier)
        target_label = target_label or self._scope_label(edge.target.identifier)
        if edge.label is not None and (source_label is None or target_label is None):
            candidates = self.mapping.pg_schema.edge_types_by_label(edge.label)
            filtered = []
            for edge_type in candidates:
                schema = self.mapping.pg_schema
                src = schema.resolve_node_label(edge_type.source)
                dst = schema.resolve_node_label(edge_type.target)
                if source_label is not None and src != source_label:
                    continue
                if target_label is not None and dst != target_label:
                    continue
                filtered.append((src, dst))
            if edge.direction is PGDirection.UNDIRECTED and not filtered:
                for edge_type in candidates:
                    schema = self.mapping.pg_schema
                    src = schema.resolve_node_label(edge_type.source)
                    dst = schema.resolve_node_label(edge_type.target)
                    if source_label is not None and dst != source_label:
                        continue
                    if target_label is not None and src != target_label:
                        continue
                    filtered.append((dst, src))
            if len(filtered) == 1:
                inferred_source, inferred_target = filtered[0]
                source_label = source_label or inferred_source
                target_label = target_label or inferred_target
        return source_label, target_label

    def _scope_label(self, identifier: str) -> Optional[str]:
        info = self._scope.get(identifier)
        return info.node_label if info is not None else None

    def _edge_relation(
        self,
        edge: PGEdgePattern,
        source_label: Optional[str],
        target_label: Optional[str],
    ) -> DLRelation:
        if edge.label is None:
            raise UnsupportedFeatureError("relationship pattern without a type")
        if edge.direction is PGDirection.UNDIRECTED:
            try:
                return self.mapping.edge_relation(edge.label, source_label, target_label)
            except Exception:  # noqa: BLE001 - fall back to the flipped direction
                return self.mapping.edge_relation(edge.label, target_label, source_label)
        return self.mapping.edge_relation(edge.label, source_label, target_label)

    def _undirected_relation(self, relation_name: str) -> str:
        """Return (creating on demand) the symmetric-closure helper IDB."""
        if relation_name in self._undirected_cache:
            return self._undirected_cache[relation_name]
        relation = self.program.schema.get(relation_name)
        helper_name = f"Undirected_{relation_name}"
        helper = DLRelation(
            name=helper_name,
            columns=(relation.columns[0], relation.columns[1]),
            is_edb=False,
        )
        self.program.declare(helper)
        forward_terms: List[Term] = [Var("u"), Var("v")]
        forward_terms.extend(Wildcard() for _ in range(relation.arity - 2))
        backward_terms: List[Term] = [Var("v"), Var("u")]
        backward_terms.extend(Wildcard() for _ in range(relation.arity - 2))
        head = Atom(helper_name, (Var("u"), Var("v")))
        self.program.add_rule(Rule(head=head, body=(Atom(relation_name, tuple(forward_terms)),)))
        self.program.add_rule(Rule(head=head, body=(Atom(relation_name, tuple(backward_terms)),)))
        self._undirected_cache[relation_name] = helper_name
        return helper_name

    # -- variable-length and shortest-path patterns ----------------------

    def _translate_var_length_edge(
        self,
        edge: PGEdgePattern,
        source_label: Optional[str],
        target_label: Optional[str],
        body: _RuleBody,
        scope: Scope,
    ) -> None:
        relation = self._edge_relation(edge, source_label, target_label)
        if edge.direction is PGDirection.UNDIRECTED:
            base_relation = self._undirected_relation(relation.name)
            base_arity = 2
        else:
            base_relation = relation.name
            base_arity = relation.arity
        self._varlen_counter += 1
        if edge.shortest:
            helper = self._build_shortest_path_idb(base_relation, base_arity)
            distance_var = f"{edge.identifier}_len"
            body.add_literal(
                Atom(
                    helper,
                    (
                        Var(edge.source.identifier),
                        Var(edge.target.identifier),
                        Var(distance_var),
                    ),
                )
            )
            scope.add(VarInfo(name=distance_var, dl_type=DLType.NUMBER))
            if edge.path_variable:
                scope.add(VarInfo(name=edge.path_variable, dl_type=DLType.NUMBER))
                body.add_literal(
                    Comparison("=", Var(edge.path_variable), Var(distance_var))
                )
            return
        helper = self._build_var_length_idb(
            base_relation, base_arity, edge.min_hops, edge.max_hops, source_label
        )
        body.add_literal(
            Atom(helper, (Var(edge.source.identifier), Var(edge.target.identifier)))
        )

    def _base_edge_atom(self, relation: str, arity: int, source: str, target: str) -> Atom:
        terms: List[Term] = [Var(source), Var(target)]
        terms.extend(Wildcard() for _ in range(arity - 2))
        return Atom(relation, tuple(terms))

    def _build_shortest_path_idb(self, base_relation: str, base_arity: int) -> str:
        name = f"ShortestPath{self._varlen_counter}"
        base_columns = self.program.schema.get(base_relation).columns
        self.program.declare(
            DLRelation(
                name=name,
                columns=(
                    base_columns[0],
                    base_columns[1],
                    DLColumn("dist", DLType.NUMBER),
                ),
                is_edb=False,
            )
        )
        head_base = Atom(name, (Var("a"), Var("b"), Const(1)))
        self.program.add_rule(
            Rule(
                head=head_base,
                body=(self._base_edge_atom(base_relation, base_arity, "a", "b"),),
                subsume_min=2,
            )
        )
        head_step = Atom(name, (Var("a"), Var("b"), ArithExpr("+", Var("d"), Const(1))))
        self.program.add_rule(
            Rule(
                head=head_step,
                body=(
                    Atom(name, (Var("a"), Var("z"), Var("d"))),
                    self._base_edge_atom(base_relation, base_arity, "z", "b"),
                ),
                subsume_min=2,
            )
        )
        return name

    def _build_var_length_idb(
        self,
        base_relation: str,
        base_arity: int,
        min_hops: Optional[int],
        max_hops: Optional[int],
        source_label: Optional[str],
    ) -> str:
        name = f"VarLength{self._varlen_counter}"
        columns = (
            self.program.schema.get(base_relation).columns[0],
            self.program.schema.get(base_relation).columns[1],
        )
        self.program.declare(DLRelation(name=name, columns=columns, is_edb=False))
        low = 1 if min_hops is None else min_hops
        head = Atom(name, (Var("a"), Var("b")))
        if max_hops is not None:
            if max_hops > _MAX_UNROLLED_HOPS:
                raise UnsupportedFeatureError(
                    f"variable-length pattern with more than {_MAX_UNROLLED_HOPS} hops"
                )
            for hops in range(max(low, 1), max_hops + 1):
                body = self._chain_body(base_relation, base_arity, hops)
                self.program.add_rule(Rule(head=head, body=tuple(body)))
            if low == 0:
                self._add_zero_hop_rule(name, source_label)
            return name
        # Unbounded: plain transitive closure (with a zero-hop rule if needed).
        if low not in (0, 1):
            raise UnsupportedFeatureError(
                "unbounded variable-length pattern with a minimum above 1"
            )
        self.program.add_rule(
            Rule(head=head, body=(self._base_edge_atom(base_relation, base_arity, "a", "b"),))
        )
        self.program.add_rule(
            Rule(
                head=head,
                body=(
                    Atom(name, (Var("a"), Var("z"))),
                    self._base_edge_atom(base_relation, base_arity, "z", "b"),
                ),
            )
        )
        if low == 0:
            self._add_zero_hop_rule(name, source_label)
        return name

    def _chain_body(self, base_relation: str, base_arity: int, hops: int) -> List[Literal]:
        body: List[Literal] = []
        previous = "a"
        for step in range(hops):
            nxt = "b" if step == hops - 1 else f"h{step + 1}"
            body.append(self._base_edge_atom(base_relation, base_arity, previous, nxt))
            previous = nxt
        if hops == 0:
            body.append(Comparison("=", Var("a"), Var("b")))
        return body

    def _add_zero_hop_rule(self, name: str, source_label: Optional[str]) -> None:
        if source_label is None:
            raise UnsupportedFeatureError(
                "zero-length variable pattern on an unlabelled node"
            )
        node_relation = self.mapping.node_relation(source_label)
        terms: List[Term] = [Var("a")]
        terms.extend(Wildcard() for _ in range(node_relation.arity - 1))
        self.program.add_rule(
            Rule(
                head=Atom(name, (Var("a"), Var("a"))),
                body=(Atom(node_relation.name, tuple(terms)),),
            )
        )

    # -- WHERE ------------------------------------------------------------

    def _translate_where(self, clause: PGWhere) -> None:
        disjuncts = _to_disjunctive_normal_form(clause.condition)
        relation = self._next_where_name()
        scope = self._scope.copy()
        head = Atom(relation, tuple(Var(name) for name in scope.names()))
        for conjuncts in disjuncts:
            body = _RuleBody(self, scope.copy())
            previous_atom = self._previous_view_atom(scope)
            if previous_atom is not None:
                body.add_literal(previous_atom)
            for conjunct in conjuncts:
                for literal in self._translate_condition(conjunct, body):
                    body.add_literal(literal)
            self.program.add_rule(Rule(head=head, body=body.finish()))
        self._current_relation = relation
        self._scope = scope

    def _translate_condition(
        self, condition: PGExpression, body: _RuleBody
    ) -> List[Literal]:
        if isinstance(condition, PGBinary) and condition.op in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            left = self._translate_value(condition.left, body)
            right = self._translate_value(condition.right, body)
            return [Comparison(condition.op, left, right)]
        if isinstance(condition, PGBinary) and condition.op == "IN":
            raise UnsupportedFeatureError("IN over non-literal lists")
        if isinstance(condition, PGNot):
            inner = condition.operand
            if isinstance(inner, PGBinary) and inner.op in ("=", "<>", "<", "<=", ">", ">="):
                negated_op = _NEGATED_COMPARISON[inner.op]
                left = self._translate_value(inner.left, body)
                right = self._translate_value(inner.right, body)
                return [Comparison(negated_op, left, right)]
            raise UnsupportedFeatureError(f"negation of {inner!r} in WHERE")
        if isinstance(condition, PGBinary) and condition.op in (
            "STARTS WITH",
            "ENDS WITH",
            "CONTAINS",
        ):
            raise UnsupportedFeatureError(f"string predicate {condition.op!r}")
        raise UnsupportedFeatureError(f"WHERE condition {condition!r}")

    # -- WITH / RETURN ------------------------------------------------------

    def _translate_projection(
        self, items: Tuple[PGProjectionItem, ...], relation: str
    ) -> None:
        scope = self._scope.copy()
        body = _RuleBody(self, scope)
        previous_atom = self._previous_view_atom(scope)
        if previous_atom is not None:
            body.add_literal(previous_atom)
        head_terms: List[Term] = []
        aggregations: List[Aggregation] = []
        new_scope = Scope()
        for item in items:
            expression = item.expression
            alias = item.alias
            if isinstance(expression, PGAggregate):
                argument = (
                    self._translate_value(expression.argument, body)
                    if expression.argument is not None
                    else None
                )
                aggregations.append(
                    Aggregation(
                        func=expression.func,
                        result=Var(alias),
                        argument=argument,
                        distinct=expression.distinct,
                    )
                )
                head_terms.append(Var(alias))
                new_scope.add(VarInfo(name=alias, dl_type=DLType.NUMBER))
                continue
            term, info = self._translate_projection_item(expression, alias, body)
            head_terms.append(term)
            new_scope.add(info)
        head = Atom(relation, tuple(head_terms))
        self.program.add_rule(
            Rule(head=head, body=body.finish(), aggregations=tuple(aggregations))
        )
        self._current_relation = relation
        self._scope = new_scope

    def _translate_projection_item(
        self, expression: PGExpression, alias: str, body: _RuleBody
    ) -> Tuple[Term, VarInfo]:
        if isinstance(expression, PGVariable):
            source = body.scope.get(expression.name)
            if source is None:
                raise TranslationError(f"variable {expression.name!r} is not in scope")
            if alias == expression.name:
                return Var(alias), replace(source, name=alias)
            # The paper expresses renaming as an explicit binding (p = cityId).
            body.add_literal(Comparison("=", Var(expression.name), Var(alias)))
            return Var(alias), replace(source, name=alias)
        if isinstance(expression, PGProperty):
            term = body.property_term(expression.variable, expression.property_name, alias)
            info = body.scope.get(expression.variable)
            if (
                expression.property_name == "id"
                and info is not None
                and info.node_label is not None
            ):
                if isinstance(term, Var) and term.name != alias:
                    body.add_literal(Comparison("=", term, Var(alias)))
                return Var(alias), VarInfo(
                    name=alias, dl_type=DLType.NUMBER, node_label=info.node_label
                )
            if isinstance(term, Var) and term.name != alias:
                body.add_literal(Comparison("=", term, Var(alias)))
                return Var(alias), VarInfo(name=alias, dl_type=DLType.SYMBOL)
            dl_type = self._property_type(expression)
            return Var(alias), VarInfo(name=alias, dl_type=dl_type)
        # General expressions: bind the alias to the translated value.
        term = self._translate_value(expression, body)
        body.add_literal(Comparison("=", Var(alias), term))
        return Var(alias), VarInfo(name=alias, dl_type=DLType.NUMBER)

    def _property_type(self, expression: PGProperty) -> DLType:
        info = self._scope.get(expression.variable)
        if info is not None and info.node_label is not None:
            relation = self.mapping.node_relation(info.node_label)
            if relation.has_column(expression.property_name):
                return relation.columns[
                    relation.column_index(expression.property_name)
                ].type
        return DLType.NUMBER

    # -- expression values -------------------------------------------------

    def _translate_value(self, expression: PGExpression, body: _RuleBody) -> Term:
        if isinstance(expression, PGConst):
            if expression.value is None:
                raise UnsupportedFeatureError("null literals")
            return Const(expression.value)  # type: ignore[arg-type]
        if isinstance(expression, PGParam):
            return Param(expression.name)
        if isinstance(expression, PGVariable):
            info = body.scope.get(expression.name)
            if info is None:
                raise TranslationError(f"variable {expression.name!r} is not in scope")
            return Var(expression.name)
        if isinstance(expression, PGProperty):
            return body.property_term(expression.variable, expression.property_name)
        if isinstance(expression, PGFunction):
            return self._translate_function(expression, body)
        if isinstance(expression, PGBinary) and expression.op in ("+", "-", "*", "/", "%"):
            return ArithExpr(
                expression.op,
                self._translate_value(expression.left, body),
                self._translate_value(expression.right, body),
            )
        raise UnsupportedFeatureError(f"expression {expression!r} in value position")

    def _translate_function(self, expression: PGFunction, body: _RuleBody) -> Term:
        name = expression.name.lower()
        if name == "id" and len(expression.args) == 1:
            argument = expression.args[0]
            if isinstance(argument, PGVariable):
                return Var(argument.name)
        if name == "length" and len(expression.args) == 1:
            argument = expression.args[0]
            if isinstance(argument, PGVariable):
                info = body.scope.get(argument.name)
                if info is not None:
                    return Var(argument.name)
        raise UnsupportedFeatureError(f"function {expression.name!r}")


_NEGATED_COMPARISON = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def _to_disjunctive_normal_form(
    expression: PGExpression,
) -> List[List[PGExpression]]:
    """Convert a boolean PGIR expression into a list of conjunct lists (DNF).

    ``IN`` over list literals is expanded to a disjunction of equalities.
    """
    if isinstance(expression, PGBinary) and expression.op == "OR":
        return _to_disjunctive_normal_form(expression.left) + _to_disjunctive_normal_form(
            expression.right
        )
    if isinstance(expression, PGBinary) and expression.op == "AND":
        left = _to_disjunctive_normal_form(expression.left)
        right = _to_disjunctive_normal_form(expression.right)
        return [l_conj + r_conj for l_conj in left for r_conj in right]
    if (
        isinstance(expression, PGBinary)
        and expression.op == "IN"
        and isinstance(expression.right, PGFunction)
        and expression.right.name == "list"
    ):
        disjuncts = []
        for item in expression.right.args:
            disjuncts.append([PGBinary("=", expression.left, item)])
        return disjuncts or [[PGConst(False)]]
    conjuncts = list(split_conjunction(expression))
    return [conjuncts]


def translate_pgir_to_dlir(
    lowering: LoweringResult, mapping: SchemaMapping
) -> DLIRProgram:
    """Translate ``lowering`` (a PGIR query) into a DLIR program over ``mapping``."""
    return PGIRToDLIR(mapping, lowering).translate()
