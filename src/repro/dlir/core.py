"""Core DLIR data structures: terms, literals, rules and programs.

A DLIR program is a list of rules over relations declared in a
:class:`~repro.schema.dl_schema.DLSchema`.  Rules have the shape::

    Head(t1, ..., tn) :- L1, L2, ..., Lm.

where each body literal ``Li`` is a positive relational atom, a negated atom,
or a comparison between arithmetic expressions.  Rules may additionally carry
aggregations (``count``, ``sum``, ``min``, ``max``, ``avg``, ``collect``)
whose grouping keys are the non-aggregated head variables, and an optional
*subsumption* marker used for monotone min/max recursion (the Datalog^o-style
semantics the paper cites for shortest paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.errors import TranslationError
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType

ConstValue = Union[int, float, str, bool]


# ---------------------------------------------------------------------------
# Terms and arithmetic expressions
# ---------------------------------------------------------------------------


class Term:
    """Base class of DLIR terms (marker class)."""


@dataclass(frozen=True)
class Var(Term):
    """A logic variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A constant value (number, float or symbol)."""

    value: ConstValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if isinstance(self.value, bool):
            return "1" if self.value else "0"
        return str(self.value)

    def dl_type(self) -> DLType:
        """Return the DL-Schema type this constant carries."""
        if isinstance(self.value, bool):
            return DLType.NUMBER
        if isinstance(self.value, int):
            return DLType.NUMBER
        if isinstance(self.value, float):
            return DLType.FLOAT
        return DLType.SYMBOL


@dataclass(frozen=True)
class Wildcard(Term):
    """An anonymous "don't care" term, printed as ``_``."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class Param(Term):
    """A **late-bound** query parameter, printed as ``$name``.

    A parameter is a ground value whose *identity* is known at compile time
    but whose *value* is only supplied at execution time (one binding per
    run).  Structurally it behaves like :class:`Const` — it carries no
    variables, counts as a bound position for planning and safety, and can
    be propagated into atom argument positions — which is what lets one
    compiled plan (and its generated closure) serve every binding of a
    prepared query without recompilation.  Text backends keep the named
    placeholder: Soufflé prints ``$name``, SQL prints ``:name``.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class ArithExpr(Term):
    """An arithmetic expression over terms: ``left op right``.

    Supported operators: ``+``, ``-``, ``*``, ``/``, ``%``.
    """

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def term_variables(term: Term) -> Iterator[str]:
    """Yield the variable names occurring in ``term``."""
    if isinstance(term, Var):
        yield term.name
    elif isinstance(term, ArithExpr):
        yield from term_variables(term.left)
        yield from term_variables(term.right)


def substitute_term(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Replace variables in ``term`` according to ``mapping``."""
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, ArithExpr):
        return ArithExpr(
            term.op,
            substitute_term(term.left, mapping),
            substitute_term(term.right, mapping),
        )
    return term


# ---------------------------------------------------------------------------
# Body literals
# ---------------------------------------------------------------------------


class Literal:
    """Base class of body literals (marker class)."""


@dataclass(frozen=True)
class Atom(Literal):
    """A positive relational atom ``Relation(t1, ..., tn)``."""

    relation: str
    terms: Tuple[Term, ...]

    @property
    def arity(self) -> int:
        """Number of argument terms."""
        return len(self.terms)

    def variables(self) -> List[str]:
        """Return variable names in argument order (with duplicates)."""
        names: List[str] = []
        for term in self.terms:
            names.extend(term_variables(term))
        return names

    def substitute(self, mapping: Mapping[str, Term]) -> "Atom":
        """Return a copy with variables replaced according to ``mapping``."""
        return Atom(self.relation, tuple(substitute_term(t, mapping) for t in self.terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(term) for term in self.terms)})"


@dataclass(frozen=True)
class NegatedAtom(Literal):
    """A negated atom ``!Relation(t1, ..., tn)`` (stratified negation)."""

    atom: Atom

    def variables(self) -> List[str]:
        """Return variable names used by the inner atom."""
        return self.atom.variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "NegatedAtom":
        """Return a copy with variables replaced according to ``mapping``."""
        return NegatedAtom(self.atom.substitute(mapping))

    def __str__(self) -> str:
        return f"!{self.atom}"


COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison(Literal):
    """A comparison ``left op right`` between arithmetic expressions.

    ``=`` doubles as variable binding (``p = cityId`` in the paper's example).
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise TranslationError(f"unsupported comparison operator {self.op!r}")

    def variables(self) -> List[str]:
        """Return variable names used on either side."""
        return list(term_variables(self.left)) + list(term_variables(self.right))

    def substitute(self, mapping: Mapping[str, Term]) -> "Comparison":
        """Return a copy with variables replaced according to ``mapping``."""
        return Comparison(
            self.op,
            substitute_term(self.left, mapping),
            substitute_term(self.right, mapping),
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg", "collect")


@dataclass(frozen=True)
class Aggregation:
    """An aggregation attached to a rule.

    The rule's non-aggregated head variables act as grouping keys.
    ``argument`` is the aggregated expression (``None`` for ``count(*)``) and
    ``result`` is the head variable receiving the aggregate value.
    """

    func: str
    result: Var
    argument: Optional[Term] = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise TranslationError(f"unsupported aggregate function {self.func!r}")

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        distinct = "distinct " if self.distinct else ""
        return f"{self.result} = {self.func}({distinct}{inner})"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A DLIR rule ``head :- body`` with optional aggregations and subsumption.

    ``subsume_min`` (or ``subsume_max``) names a head column index; during
    fixpoint evaluation only the minimal (maximal) value of that column is
    kept per combination of the remaining columns.  This encodes monotone
    aggregation inside recursion (shortest paths) without leaving Datalog's
    fixpoint semantics.
    """

    head: Atom
    body: Tuple[Literal, ...]
    aggregations: Tuple[Aggregation, ...] = ()
    subsume_min: Optional[int] = None
    subsume_max: Optional[int] = None

    # -- accessors -------------------------------------------------------

    def head_variables(self) -> List[str]:
        """Return head variable names in argument order."""
        return self.head.variables()

    def body_atoms(self) -> List[Atom]:
        """Return the positive relational atoms of the body, in order."""
        return [literal for literal in self.body if isinstance(literal, Atom)]

    def negated_atoms(self) -> List[NegatedAtom]:
        """Return the negated atoms of the body, in order."""
        return [literal for literal in self.body if isinstance(literal, NegatedAtom)]

    def comparisons(self) -> List[Comparison]:
        """Return the comparisons of the body, in order."""
        return [literal for literal in self.body if isinstance(literal, Comparison)]

    def body_relations(self) -> List[str]:
        """Return relation names referenced positively by the body."""
        return [atom.relation for atom in self.body_atoms()]

    def referenced_relations(self) -> List[str]:
        """Return every relation referenced by the body (positive or negated)."""
        names = [atom.relation for atom in self.body_atoms()]
        names.extend(negated.atom.relation for negated in self.negated_atoms())
        return names

    def aggregate_result_names(self) -> List[str]:
        """Return the head variables bound by aggregations."""
        return [aggregation.result.name for aggregation in self.aggregations]

    def group_by_variables(self) -> List[str]:
        """Return head variables that act as grouping keys (non-aggregated)."""
        aggregated = set(self.aggregate_result_names())
        keys = []
        for term in self.head.terms:
            for name in term_variables(term):
                if name not in aggregated and name not in keys:
                    keys.append(name)
        return keys

    def has_aggregation(self) -> bool:
        """Return whether the rule computes any aggregate."""
        return bool(self.aggregations)

    def has_negation(self) -> bool:
        """Return whether the rule's body contains a negated atom."""
        return bool(self.negated_atoms())

    def is_fact(self) -> bool:
        """Return whether the rule has an empty body (a ground fact rule)."""
        return not self.body

    def variables(self) -> List[str]:
        """Return every variable of the rule (head + body), without duplicates."""
        seen: List[str] = []
        for name in self.head.variables():
            if name not in seen:
                seen.append(name)
        for literal in self.body:
            names: Iterable[str]
            if isinstance(literal, (Atom, NegatedAtom, Comparison)):
                names = literal.variables()
            else:
                names = ()
            for name in names:
                if name not in seen:
                    seen.append(name)
        for aggregation in self.aggregations:
            if aggregation.argument is not None:
                for name in term_variables(aggregation.argument):
                    if name not in seen:
                        seen.append(name)
        return seen

    # -- transformation helpers -----------------------------------------

    def substitute(self, mapping: Mapping[str, Term]) -> "Rule":
        """Return a copy of the rule with variables substituted everywhere."""
        new_body: List[Literal] = []
        for literal in self.body:
            if isinstance(literal, (Atom, NegatedAtom, Comparison)):
                new_body.append(literal.substitute(mapping))
            else:
                new_body.append(literal)
        new_aggregations = tuple(
            Aggregation(
                func=aggregation.func,
                result=Var(
                    mapping.get(aggregation.result.name, aggregation.result).name
                    if isinstance(mapping.get(aggregation.result.name), Var)
                    else aggregation.result.name
                ),
                argument=(
                    substitute_term(aggregation.argument, mapping)
                    if aggregation.argument is not None
                    else None
                ),
                distinct=aggregation.distinct,
            )
            for aggregation in self.aggregations
        )
        return Rule(
            head=self.head.substitute(mapping),
            body=tuple(new_body),
            aggregations=new_aggregations,
            subsume_min=self.subsume_min,
            subsume_max=self.subsume_max,
        )

    def with_body(self, body: Sequence[Literal]) -> "Rule":
        """Return a copy with a replaced body."""
        return replace(self, body=tuple(body))

    def __str__(self) -> str:
        if self.is_fact() and not self.aggregations:
            return f"{self.head}."
        parts = [str(literal) for literal in self.body]
        parts.extend(str(aggregation) for aggregation in self.aggregations)
        suffix = ""
        if self.subsume_min is not None:
            suffix = f"  [min over column {self.subsume_min}]"
        if self.subsume_max is not None:
            suffix = f"  [max over column {self.subsume_max}]"
        return f"{self.head} :- {', '.join(parts)}.{suffix}"


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class DLIRProgram:
    """A DLIR program: schema (EDB + IDB declarations), rules and outputs.

    ``facts`` may hold ground tuples for EDB relations that were provided
    inline (used by the Datalog frontend which accepts fact clauses).
    """

    schema: DLSchema = field(default_factory=DLSchema)
    rules: List[Rule] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)
    facts: Dict[str, List[Tuple[ConstValue, ...]]] = field(default_factory=dict)

    # -- structure -------------------------------------------------------

    def idb_names(self) -> List[str]:
        """Return names of relations defined by at least one rule."""
        seen: List[str] = []
        for rule in self.rules:
            if rule.head.relation not in seen:
                seen.append(rule.head.relation)
        return seen

    def edb_names(self) -> List[str]:
        """Return names of relations never defined by a rule (extensional)."""
        idbs = set(self.idb_names())
        return [relation.name for relation in self.schema if relation.name not in idbs]

    def rules_for(self, relation: str) -> List[Rule]:
        """Return the rules whose head is ``relation``, in program order."""
        return [rule for rule in self.rules if rule.head.relation == relation]

    def relation_names(self) -> List[str]:
        """Return every relation name referenced by the program."""
        names: List[str] = []
        for relation in self.schema:
            names.append(relation.name)
        for rule in self.rules:
            for name in [rule.head.relation] + rule.referenced_relations():
                if name not in names:
                    names.append(name)
        return names

    def declaration(self, relation: str) -> Optional[DLRelation]:
        """Return the declaration of ``relation`` if the schema has one."""
        return self.schema.maybe_get(relation)

    # -- construction ----------------------------------------------------

    def declare(self, relation: DLRelation) -> None:
        """Add a relation declaration (idempotent if identical)."""
        existing = self.schema.maybe_get(relation.name)
        if existing is None:
            self.schema.add(relation)
        elif existing != relation:
            raise TranslationError(
                f"conflicting declarations for relation {relation.name!r}"
            )

    def add_rule(self, rule: Rule) -> None:
        """Append ``rule`` to the program."""
        self.rules.append(rule)

    def add_output(self, relation: str) -> None:
        """Mark ``relation`` as an output of the program."""
        if relation not in self.outputs:
            self.outputs.append(relation)

    def add_fact(self, relation: str, values: Tuple[ConstValue, ...]) -> None:
        """Add a ground fact for an EDB relation."""
        self.facts.setdefault(relation, []).append(values)

    def copy(self) -> "DLIRProgram":
        """Return a structural copy safe to mutate independently."""
        return DLIRProgram(
            schema=self.schema.copy(),
            rules=list(self.rules),
            outputs=list(self.outputs),
            inputs=list(self.inputs),
            facts={name: list(rows) for name, rows in self.facts.items()},
        )

    # -- validation ------------------------------------------------------

    def validate(self) -> List[str]:
        """Return a list of structural problems (empty when well formed).

        Checks performed: every referenced relation is declared, atom arities
        match their declarations, and output relations exist.
        """
        problems: List[str] = []
        for rule in self.rules:
            atoms = [rule.head] + rule.body_atoms()
            atoms.extend(negated.atom for negated in rule.negated_atoms())
            for atom in atoms:
                declaration = self.schema.maybe_get(atom.relation)
                if declaration is None:
                    problems.append(f"relation {atom.relation!r} is not declared")
                elif declaration.arity != atom.arity:
                    problems.append(
                        f"atom {atom} has arity {atom.arity} but relation "
                        f"{atom.relation!r} is declared with arity {declaration.arity}"
                    )
        for output in self.outputs:
            if self.schema.maybe_get(output) is None:
                problems.append(f"output relation {output!r} is not declared")
        return problems

    def __str__(self) -> str:
        lines = [str(relation) for relation in self.schema]
        lines.extend(str(rule) for rule in self.rules)
        lines.extend(f".output {name}" for name in self.outputs)
        return "\n".join(lines)


def make_columns(names_and_types: Sequence[Tuple[str, DLType]]) -> Tuple[DLColumn, ...]:
    """Build a tuple of :class:`DLColumn` from ``(name, type)`` pairs."""
    return tuple(DLColumn(name, dl_type) for name, dl_type in names_and_types)


def rename_relations(
    program: DLIRProgram, mapping: Mapping[str, str]
) -> DLIRProgram:
    """Return a copy of ``program`` with relations renamed per ``mapping``.

    Every occurrence is rewritten: schema declarations, rule heads, positive
    and negated body atoms, outputs, inputs and inline fact keys.  Names
    absent from ``mapping`` are kept.  Used by the session layer to give
    each prepared query a private namespace for its generated IDB relations
    (``Return`` → ``Return__q1``), so queries sharing one store can never
    collide on generated names (or, worse, on their arities).
    """
    renamed = DLIRProgram(
        schema=DLSchema(),
        outputs=[mapping.get(name, name) for name in program.outputs],
        inputs=[mapping.get(name, name) for name in program.inputs],
        facts={
            mapping.get(name, name): list(rows)
            for name, rows in program.facts.items()
        },
    )
    for relation in program.schema:
        new_name = mapping.get(relation.name, relation.name)
        renamed.schema.add(
            relation if new_name == relation.name else replace(relation, name=new_name)
        )

    def rename_atom(atom: Atom) -> Atom:
        new_name = mapping.get(atom.relation, atom.relation)
        return atom if new_name == atom.relation else Atom(new_name, atom.terms)

    for rule in program.rules:
        body: List[Literal] = []
        for literal in rule.body:
            if isinstance(literal, Atom):
                body.append(rename_atom(literal))
            elif isinstance(literal, NegatedAtom):
                body.append(NegatedAtom(rename_atom(literal.atom)))
            else:
                body.append(literal)
        renamed.rules.append(
            Rule(
                head=rename_atom(rule.head),
                body=tuple(body),
                aggregations=rule.aggregations,
                subsume_min=rule.subsume_min,
                subsume_max=rule.subsume_max,
            )
        )
    return renamed


# ---------------------------------------------------------------------------
# Late-bound parameters
# ---------------------------------------------------------------------------


def term_params(term: Term) -> Iterator[str]:
    """Yield the parameter names occurring in ``term``."""
    if isinstance(term, Param):
        yield term.name
    elif isinstance(term, ArithExpr):
        yield from term_params(term.left)
        yield from term_params(term.right)


def rule_param_names(rule: Rule) -> List[str]:
    """Return the parameter names referenced by ``rule``, without duplicates."""
    names: List[str] = []

    def collect(term: Term) -> None:
        for name in term_params(term):
            if name not in names:
                names.append(name)

    for term in rule.head.terms:
        collect(term)
    for literal in rule.body:
        if isinstance(literal, Atom):
            for term in literal.terms:
                collect(term)
        elif isinstance(literal, NegatedAtom):
            for term in literal.atom.terms:
                collect(term)
        elif isinstance(literal, Comparison):
            collect(literal.left)
            collect(literal.right)
    for aggregation in rule.aggregations:
        if aggregation.argument is not None:
            collect(aggregation.argument)
    return names


def program_param_names(program: DLIRProgram) -> List[str]:
    """Return every parameter name referenced by ``program``, in rule order."""
    names: List[str] = []
    for rule in program.rules:
        for name in rule_param_names(rule):
            if name not in names:
                names.append(name)
    return names


def _bind_term(term: Term, values: Mapping[str, ConstValue]) -> Term:
    if isinstance(term, Param):
        if term.name not in values:
            raise TranslationError(
                f"no value supplied for query parameter ${term.name}"
            )
        return Const(values[term.name])
    if isinstance(term, ArithExpr):
        return ArithExpr(
            term.op, _bind_term(term.left, values), _bind_term(term.right, values)
        )
    return term


def bind_parameters(
    program: DLIRProgram, values: Mapping[str, ConstValue]
) -> DLIRProgram:
    """Return a copy of ``program`` with every :class:`Param` replaced by the
    :class:`Const` it is bound to in ``values``.

    This is the *early-binding* escape hatch for backends that cannot accept
    named placeholders at execution time (the in-repo relational engine); the
    Datalog engine instead keeps the parameters late-bound and resolves them
    per run.  A parameter without a value raises
    :class:`~repro.common.errors.TranslationError`.
    """
    bound = program.copy()
    new_rules: List[Rule] = []
    for rule in bound.rules:
        body: List[Literal] = []
        for literal in rule.body:
            if isinstance(literal, Atom):
                body.append(
                    Atom(
                        literal.relation,
                        tuple(_bind_term(term, values) for term in literal.terms),
                    )
                )
            elif isinstance(literal, NegatedAtom):
                body.append(
                    NegatedAtom(
                        Atom(
                            literal.atom.relation,
                            tuple(
                                _bind_term(term, values)
                                for term in literal.atom.terms
                            ),
                        )
                    )
                )
            elif isinstance(literal, Comparison):
                body.append(
                    Comparison(
                        literal.op,
                        _bind_term(literal.left, values),
                        _bind_term(literal.right, values),
                    )
                )
            else:  # pragma: no cover - defensive
                body.append(literal)
        aggregations = tuple(
            Aggregation(
                func=aggregation.func,
                result=aggregation.result,
                argument=(
                    _bind_term(aggregation.argument, values)
                    if aggregation.argument is not None
                    else None
                ),
                distinct=aggregation.distinct,
            )
            for aggregation in rule.aggregations
        )
        new_rules.append(
            Rule(
                head=Atom(
                    rule.head.relation,
                    tuple(_bind_term(term, values) for term in rule.head.terms),
                ),
                body=tuple(body),
                aggregations=aggregations,
                subsume_min=rule.subsume_min,
                subsume_max=rule.subsume_max,
            )
        )
    bound.rules = new_rules
    return bound
