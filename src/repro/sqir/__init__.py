"""SQIR: the SQL intermediate representation (paper Figure 3e).

SQIR models a query as a chain of common table expressions (CTEs) -- one per
DLIR relation -- followed by a final ``SELECT`` from the output relation.
Non-recursive DLIR relations become plain CTEs; recursive relations become
``WITH RECURSIVE`` CTEs whose base members come from the non-recursive rules
and whose recursive members come from the rules that reference the relation
itself.
"""

from repro.sqir.nodes import (
    CTE,
    ColumnRef,
    NotExists,
    SQLBinary,
    SQLExpr,
    SQLFunction,
    SQLLiteral,
    SQLParam,
    SQIRQuery,
    SelectItem,
    SelectQuery,
    TableRef,
)
from repro.sqir.from_dlir import DLIRToSQIR, translate_dlir_to_sqir
from repro.sqir.to_dlir import SQIRToDLIR, translate_sqir_to_dlir

__all__ = [
    "SQIRToDLIR",
    "translate_sqir_to_dlir",
    "SQLExpr",
    "SQLLiteral",
    "SQLParam",
    "ColumnRef",
    "SQLBinary",
    "SQLFunction",
    "NotExists",
    "SelectItem",
    "TableRef",
    "SelectQuery",
    "CTE",
    "SQIRQuery",
    "DLIRToSQIR",
    "translate_dlir_to_sqir",
]
