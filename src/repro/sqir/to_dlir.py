"""SQIR-to-DLIR translation (the reverse of :mod:`repro.sqir.from_dlir`).

This is what makes SQL a Raqlet *frontend*: recursive SQL parsed into SQIR is
turned into DLIR rules, after which all analyses, optimizations and backends
(including regenerating SQL) apply.

Each CTE member becomes one rule:

* every FROM table contributes a positive atom whose arguments are fresh
  variables, one per column of the table (base tables use the supplied
  DL-Schema; earlier CTEs use their declared column lists),
* WHERE conjuncts become comparisons over those variables,
* ``NOT EXISTS`` subqueries over a single table become negated atoms,
* aggregate select items become rule aggregations,
* the final SELECT becomes a ``Result`` rule (unless it is a trivial
  pass-through of a single CTE, which is then simply marked as the output).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.common.names import NameGenerator
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    Literal,
    NegatedAtom,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.dlir.types import declare_idbs
from repro.schema.dl_schema import DLColumn, DLRelation, DLSchema, DLType
from repro.sqir.nodes import (
    CTE,
    ColumnRef,
    NotExists,
    SelectQuery,
    SQLBinary,
    SQLExpr,
    SQLFunction,
    SQLLiteral,
    SQIRQuery,
)

_AGG_BY_SQL = {
    "COUNT": "count",
    "SUM": "sum",
    "MIN": "min",
    "MAX": "max",
    "AVG": "avg",
    "GROUP_CONCAT": "collect",
}


class _MemberTranslator:
    """Translate one SELECT member into one DLIR rule."""

    def __init__(
        self,
        translator: "SQIRToDLIR",
        select: SelectQuery,
        head_relation: str,
        head_columns: List[str],
    ) -> None:
        self._translator = translator
        self._select = select
        self._head_relation = head_relation
        self._head_columns = head_columns
        self._names = NameGenerator()
        self._column_vars: Dict[Tuple[str, str], Var] = {}
        self._body: List[Literal] = []

    # -- binding -----------------------------------------------------------

    def _table_columns(self, table_name: str) -> List[str]:
        return self._translator.table_columns(table_name)

    def _bind_tables(self) -> None:
        for table in self._select.from_tables:
            columns = self._table_columns(table.name)
            terms: List[Term] = []
            for column in columns:
                variable = Var(self._names.fresh(f"{table.alias}_{column}_"))
                self._column_vars[(table.alias, column)] = variable
                terms.append(variable)
            self._body.append(Atom(table.name, tuple(terms)))

    def _resolve_column(self, reference: ColumnRef) -> Var:
        if reference.table:
            key = (reference.table, reference.column)
            if key not in self._column_vars:
                raise TranslationError(
                    f"unknown column reference {reference.table}.{reference.column}"
                )
            return self._column_vars[key]
        candidates = [
            variable
            for (alias, column), variable in self._column_vars.items()
            if column == reference.column
        ]
        if len(candidates) != 1:
            raise TranslationError(
                f"ambiguous or unknown bare column {reference.column!r}"
            )
        return candidates[0]

    # -- expressions ---------------------------------------------------------

    def _translate_expression(self, expression: SQLExpr) -> Term:
        if isinstance(expression, SQLLiteral):
            if expression.value is None:
                raise UnsupportedFeatureError("NULL literals", backend="DLIR")
            return Const(expression.value)
        if isinstance(expression, ColumnRef):
            return self._resolve_column(expression)
        if isinstance(expression, SQLBinary) and expression.op in ("+", "-", "*", "/", "%"):
            return ArithExpr(
                expression.op,
                self._translate_expression(expression.left),
                self._translate_expression(expression.right),
            )
        raise UnsupportedFeatureError(f"SQL expression {expression}", backend="DLIR")

    def _translate_condition(self, condition: SQLExpr) -> None:
        if isinstance(condition, NotExists):
            self._body.append(self._translate_not_exists(condition))
            return
        if isinstance(condition, SQLBinary) and condition.op.upper() == "AND":
            self._translate_condition(condition.left)
            self._translate_condition(condition.right)
            return
        if isinstance(condition, SQLBinary) and condition.op in ("=", "<>", "<", "<=", ">", ">="):
            self._body.append(
                Comparison(
                    condition.op,
                    self._translate_expression(condition.left),
                    self._translate_expression(condition.right),
                )
            )
            return
        raise UnsupportedFeatureError(f"SQL condition {condition}", backend="DLIR")

    def _translate_not_exists(self, predicate: NotExists) -> NegatedAtom:
        subquery = predicate.subquery
        if len(subquery.from_tables) != 1:
            raise UnsupportedFeatureError(
                "NOT EXISTS over more than one table", backend="DLIR"
            )
        table = subquery.from_tables[0]
        columns = self._table_columns(table.name)
        terms: List[Term] = [Wildcard() for _ in columns]
        for condition in subquery.where:
            if not (
                isinstance(condition, SQLBinary)
                and condition.op == "="
                and isinstance(condition.left, ColumnRef)
            ):
                raise UnsupportedFeatureError(
                    "NOT EXISTS with non-equality correlation", backend="DLIR"
                )
            if condition.left.table not in ("", table.alias):
                raise UnsupportedFeatureError(
                    "NOT EXISTS correlating on outer columns on the left side",
                    backend="DLIR",
                )
            index = columns.index(condition.left.column)
            if isinstance(condition.right, SQLLiteral):
                terms[index] = Const(condition.right.value)  # type: ignore[arg-type]
            elif isinstance(condition.right, ColumnRef):
                terms[index] = self._resolve_column(condition.right)
            else:
                raise UnsupportedFeatureError(
                    "NOT EXISTS with computed correlation", backend="DLIR"
                )
        return NegatedAtom(Atom(table.name, tuple(terms)))

    # -- entry point -----------------------------------------------------------

    def translate(self) -> Rule:
        self._bind_tables()
        for condition in self._select.where:
            self._translate_condition(condition)
        head_terms: List[Term] = []
        aggregations: List[Aggregation] = []
        for index, item in enumerate(self._select.items):
            column_name = (
                self._head_columns[index] if index < len(self._head_columns) else item.alias
            )
            expression = item.expression
            if isinstance(expression, SQLFunction) and expression.name.upper() in _AGG_BY_SQL:
                result_var = Var(self._names.fresh(f"{column_name}_agg_"))
                argument = (
                    self._translate_expression(expression.args[0])
                    if expression.args
                    else None
                )
                aggregations.append(
                    Aggregation(
                        func=_AGG_BY_SQL[expression.name.upper()],
                        result=result_var,
                        argument=None if expression.star else argument,
                        distinct=expression.distinct,
                    )
                )
                head_terms.append(result_var)
                continue
            head_terms.append(self._translate_expression(expression))
        return Rule(
            head=Atom(self._head_relation, tuple(head_terms)),
            body=tuple(self._body),
            aggregations=tuple(aggregations),
        )


class SQIRToDLIR:
    """Translate a SQIR query into a DLIR program over a base-table schema."""

    def __init__(self, query: SQIRQuery, schema: DLSchema, result_name: str = "Result") -> None:
        self._query = query
        self._base_schema = schema
        self._result_name = result_name
        self._cte_columns: Dict[str, List[str]] = {}

    def table_columns(self, table_name: str) -> List[str]:
        """Return the column names of a base table or an earlier CTE."""
        if table_name in self._cte_columns:
            return self._cte_columns[table_name]
        declaration = self._base_schema.maybe_get(table_name)
        if declaration is None:
            raise TranslationError(f"unknown table {table_name!r}")
        return declaration.column_names()

    def translate(self) -> DLIRProgram:
        """Run the translation and return a validated DLIR program."""
        program = DLIRProgram(schema=self._base_schema.copy())
        for cte in self._query.ctes:
            self._cte_columns[cte.name] = list(cte.columns)
            for member in cte.all_members():
                rule = _MemberTranslator(self, member, cte.name, list(cte.columns)).translate()
                program.add_rule(rule)
        output = self._translate_final(program)
        program.add_output(output)
        declare_idbs(program)
        problems = program.validate()
        if problems:
            raise TranslationError("invalid DLIR program from SQL: " + "; ".join(problems))
        return program

    def _translate_final(self, program: DLIRProgram) -> str:
        final = self._query.final
        if self._is_passthrough(final):
            return final.from_tables[0].name
        columns = [item.alias for item in final.items]
        self._cte_columns[self._result_name] = columns
        rule = _MemberTranslator(self, final, self._result_name, columns).translate()
        program.add_rule(rule)
        return self._result_name

    def _is_passthrough(self, final: SelectQuery) -> bool:
        if len(final.from_tables) != 1 or final.where or final.group_by:
            return False
        table = final.from_tables[0]
        if table.name not in self._cte_columns:
            return False
        columns = self._cte_columns[table.name]
        if len(final.items) != len(columns):
            return False
        for item, column in zip(final.items, columns):
            expression = item.expression
            if not isinstance(expression, ColumnRef):
                return False
            if expression.column != column:
                return False
        return True


def translate_sqir_to_dlir(
    query: SQIRQuery, schema: DLSchema, result_name: str = "Result"
) -> DLIRProgram:
    """Translate ``query`` into DLIR over the base tables declared in ``schema``."""
    return SQIRToDLIR(query, schema, result_name).translate()
