"""DLIR-to-SQIR translation (paper Figure 3e).

Every IDB relation becomes a CTE (recursive relations become ``WITH
RECURSIVE`` CTEs); each of its rules becomes one SELECT member of that CTE:

* every positive body atom contributes a FROM table with a fresh alias,
* join conditions come from shared variables and constants in atom arguments,
* comparisons become WHERE conjuncts,
* negated atoms become ``NOT EXISTS`` subqueries,
* aggregations become ``GROUP BY`` queries.

Restrictions follow SQL's recursion model and are reported as
:class:`~repro.common.errors.UnsupportedFeatureError`: mutual recursion,
non-linear recursive rules, aggregation or negation inside recursion, and
min/max subsumption cannot be expressed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dependencies import build_dependency_graph
from repro.common.errors import TranslationError, UnsupportedFeatureError
from repro.dlir.core import (
    Aggregation,
    ArithExpr,
    Atom,
    Comparison,
    Const,
    DLIRProgram,
    NegatedAtom,
    Param,
    Rule,
    Term,
    Var,
    Wildcard,
)
from repro.sqir.nodes import (
    CTE,
    ColumnRef,
    NotExists,
    SQLBinary,
    SQLExpr,
    SQLFunction,
    SQLLiteral,
    SQLParam,
    SQIRQuery,
    SelectItem,
    SelectQuery,
    TableRef,
)

_SQL_COMPARISON = {"=": "=", "<>": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_AGGREGATE_SQL = {
    "count": "COUNT",
    "sum": "SUM",
    "min": "MIN",
    "max": "MAX",
    "avg": "AVG",
    "collect": "GROUP_CONCAT",
}


class _RuleTranslator:
    """Translate one DLIR rule into one SELECT member."""

    def __init__(self, program: DLIRProgram, rule: Rule) -> None:
        self._program = program
        self._rule = rule
        self._bindings: Dict[str, SQLExpr] = {}
        self._tables: List[TableRef] = []
        self._where: List[SQLExpr] = []
        self._alias_counter = 0

    # -- helpers ----------------------------------------------------------

    def _fresh_alias(self) -> str:
        self._alias_counter += 1
        return f"R{self._alias_counter}"

    def _column_name(self, relation: str, index: int) -> str:
        declaration = self._program.schema.maybe_get(relation)
        if declaration is not None and index < declaration.arity:
            return declaration.columns[index].name
        return f"c{index}"

    def _bind_atom(self, atom: Atom) -> None:
        alias = self._fresh_alias()
        self._tables.append(TableRef(atom.relation, alias))
        for index, term in enumerate(atom.terms):
            column = ColumnRef(alias, self._column_name(atom.relation, index))
            if isinstance(term, Wildcard):
                continue
            if isinstance(term, Const):
                self._where.append(SQLBinary("=", column, SQLLiteral(term.value)))
            elif isinstance(term, Param):
                self._where.append(SQLBinary("=", column, SQLParam(term.name)))
            elif isinstance(term, Var):
                if term.name in self._bindings:
                    self._where.append(SQLBinary("=", self._bindings[term.name], column))
                else:
                    self._bindings[term.name] = column
            else:
                raise TranslationError(
                    f"arithmetic term {term} not supported in body atom arguments"
                )

    def _translate_term(self, term: Term) -> Optional[SQLExpr]:
        """Translate a term; returns ``None`` when a variable is not yet bound."""
        if isinstance(term, Const):
            return SQLLiteral(term.value)
        if isinstance(term, Param):
            return SQLParam(term.name)
        if isinstance(term, Var):
            return self._bindings.get(term.name)
        if isinstance(term, ArithExpr):
            left = self._translate_term(term.left)
            right = self._translate_term(term.right)
            if left is None or right is None:
                return None
            return SQLBinary(term.op, left, right)
        if isinstance(term, Wildcard):
            raise TranslationError("wildcard in an expression position")
        raise TranslationError(f"cannot translate term {term!r}")

    def _process_comparisons(self, comparisons: List[Comparison]) -> None:
        pending = list(comparisons)
        progress = True
        while pending and progress:
            progress = False
            remaining: List[Comparison] = []
            for comparison in pending:
                left = self._translate_term(comparison.left)
                right = self._translate_term(comparison.right)
                if comparison.op == "=" and left is not None and right is None and isinstance(
                    comparison.right, Var
                ):
                    self._bindings[comparison.right.name] = left
                    progress = True
                    continue
                if comparison.op == "=" and right is not None and left is None and isinstance(
                    comparison.left, Var
                ):
                    self._bindings[comparison.left.name] = right
                    progress = True
                    continue
                if left is not None and right is not None:
                    self._where.append(
                        SQLBinary(_SQL_COMPARISON[comparison.op], left, right)
                    )
                    progress = True
                    continue
                remaining.append(comparison)
            pending = remaining
        if pending:
            raise TranslationError(
                "comparisons with unbound variables: "
                + "; ".join(str(comparison) for comparison in pending)
            )

    def _translate_negated(self, negated: NegatedAtom) -> None:
        atom = negated.atom
        alias = self._fresh_alias()
        conditions: List[SQLExpr] = []
        for index, term in enumerate(atom.terms):
            column = ColumnRef(alias, self._column_name(atom.relation, index))
            if isinstance(term, Wildcard):
                continue
            if isinstance(term, Const):
                conditions.append(SQLBinary("=", column, SQLLiteral(term.value)))
            elif isinstance(term, Param):
                conditions.append(SQLBinary("=", column, SQLParam(term.name)))
            elif isinstance(term, Var):
                outer = self._bindings.get(term.name)
                if outer is None:
                    # Existential variable local to the negated atom.
                    continue
                conditions.append(SQLBinary("=", column, outer))
            else:
                raise TranslationError("arithmetic inside a negated atom")
        subquery = SelectQuery(
            items=[SelectItem(SQLLiteral(1), "one")],
            from_tables=[TableRef(atom.relation, alias)],
            where=conditions,
            distinct=False,
        )
        self._where.append(NotExists(subquery))

    def _aggregate_expr(self, aggregation: Aggregation) -> SQLExpr:
        function = _AGGREGATE_SQL[aggregation.func]
        if aggregation.argument is None:
            return SQLFunction(function, (), star=True)
        argument = self._translate_term(aggregation.argument)
        if argument is None:
            raise TranslationError(
                f"aggregation argument {aggregation.argument} is not bound"
            )
        if aggregation.func == "avg":
            # Average over integers should not truncate: promote to float.
            argument = SQLBinary("*", argument, SQLLiteral(1.0))
        return SQLFunction(function, (argument,), distinct=aggregation.distinct)

    # -- entry point ------------------------------------------------------

    def translate(self) -> SelectQuery:
        rule = self._rule
        for atom in rule.body_atoms():
            self._bind_atom(atom)
        self._process_comparisons(rule.comparisons())
        for negated in rule.negated_atoms():
            self._translate_negated(negated)

        aggregate_results = {
            aggregation.result.name: aggregation for aggregation in rule.aggregations
        }
        head_columns = [
            self._column_name(rule.head.relation, index)
            for index in range(rule.head.arity)
        ]
        items: List[SelectItem] = []
        group_by: List[SQLExpr] = []
        for index, term in enumerate(rule.head.terms):
            column_name = head_columns[index]
            if isinstance(term, Var) and term.name in aggregate_results:
                items.append(
                    SelectItem(self._aggregate_expr(aggregate_results[term.name]), column_name)
                )
                continue
            expression = self._translate_term(term)
            if expression is None:
                raise TranslationError(
                    f"head term {term} of rule {rule} is not bound by the body"
                )
            items.append(SelectItem(expression, column_name))
            if rule.aggregations:
                group_by.append(expression)
        if not rule.body_atoms() and not rule.comparisons():
            # Ground fact rule: SELECT constants without a FROM clause.
            return SelectQuery(items=items, from_tables=[], where=[], distinct=True)
        return SelectQuery(
            items=items,
            from_tables=self._tables,
            where=self._where,
            group_by=group_by,
            distinct=True,
        )


class DLIRToSQIR:
    """Translate a DLIR program into a SQIR query."""

    def __init__(self, program: DLIRProgram, output: Optional[str] = None) -> None:
        self._program = program
        if output is None:
            if not program.outputs:
                raise TranslationError("DLIR program has no output relation")
            output = program.outputs[0]
        self._output = output

    def translate(self) -> SQIRQuery:
        program = self._program
        graph = build_dependency_graph(program)
        idb_names = set(program.idb_names())
        ctes: List[CTE] = []
        for component in graph.condensation_order():
            members = [name for name in component if name in idb_names]
            if not members:
                continue
            if len(members) > 1:
                raise UnsupportedFeatureError("mutual recursion", backend="sql")
            ctes.append(self._build_cte(members[0], graph))
        final = SelectQuery(
            items=[SelectItem(ColumnRef(self._output, column), column) for column in self._columns(self._output)],
            from_tables=[TableRef(self._output, self._output)],
            where=[],
            distinct=True,
        )
        return SQIRQuery(ctes=ctes, final=final)

    def _columns(self, relation: str) -> List[str]:
        declaration = self._program.schema.maybe_get(relation)
        if declaration is not None:
            return declaration.column_names()
        rules = self._program.rules_for(relation)
        if rules:
            return [f"c{index}" for index in range(rules[0].head.arity)]
        raise TranslationError(f"unknown relation {relation!r}")

    def _build_cte(self, relation: str, graph) -> CTE:
        rules = self._program.rules_for(relation)
        if not rules:
            raise TranslationError(f"IDB relation {relation!r} has no rules")
        recursive = graph.is_recursive(relation)
        base_members: List[SelectQuery] = []
        recursive_members: List[SelectQuery] = []
        for rule in rules:
            if rule.subsume_min is not None or rule.subsume_max is not None:
                raise UnsupportedFeatureError(
                    "min/max subsumption (shortest-path recursion)", backend="sql"
                )
            is_recursive_rule = relation in rule.body_relations()
            if recursive and is_recursive_rule:
                if rule.has_aggregation():
                    raise UnsupportedFeatureError(
                        "aggregation inside recursion", backend="sql"
                    )
                if any(
                    negated.atom.relation == relation for negated in rule.negated_atoms()
                ):
                    raise UnsupportedFeatureError(
                        "negation inside recursion", backend="sql"
                    )
                if sum(1 for name in rule.body_relations() if name == relation) > 1:
                    raise UnsupportedFeatureError(
                        "non-linear recursion", backend="sql"
                    )
                recursive_members.append(_RuleTranslator(self._program, rule).translate())
            else:
                base_members.append(_RuleTranslator(self._program, rule).translate())
        if recursive and not base_members:
            raise TranslationError(
                f"recursive relation {relation!r} has no non-recursive base rule"
            )
        return CTE(
            name=relation,
            columns=self._columns(relation),
            base_members=base_members,
            recursive_members=recursive_members,
        )


def translate_dlir_to_sqir(program: DLIRProgram, output: Optional[str] = None) -> SQIRQuery:
    """Translate ``program`` into SQIR, selecting from ``output`` (default: first output)."""
    return DLIRToSQIR(program, output).translate()
