"""SQIR node types: SQL expressions, SELECT blocks, CTEs and full queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

ConstValue = Union[int, float, str, bool, None]


class SQLExpr:
    """Base class of SQIR expressions (marker class)."""


@dataclass(frozen=True)
class SQLLiteral(SQLExpr):
    """A literal value."""

    value: ConstValue

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class SQLParam(SQLExpr):
    """A named placeholder ``:name`` bound at execution time.

    SQLite binds these natively (``cursor.execute(sql, {"name": value})``);
    other consumers substitute values before execution.
    """

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class ColumnRef(SQLExpr):
    """A column reference ``alias.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class SQLBinary(SQLExpr):
    """A binary expression (comparison, arithmetic or boolean connective)."""

    op: str
    left: SQLExpr
    right: SQLExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class SQLFunction(SQLExpr):
    """A function or aggregate call; ``distinct`` applies to aggregates."""

    name: str
    args: Tuple[SQLExpr, ...]
    distinct: bool = False
    star: bool = False

    def __str__(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(str(arg) for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class NotExists(SQLExpr):
    """A ``NOT EXISTS (subquery)`` predicate used for negated atoms."""

    subquery: "SelectQuery"

    def __str__(self) -> str:
        return f"NOT EXISTS ({self.subquery})"


@dataclass(frozen=True)
class SelectItem:
    """A projection item ``expression AS alias``."""

    expression: SQLExpr
    alias: str

    def __str__(self) -> str:
        return f"{self.expression} AS {self.alias}"


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table reference ``name AS alias``."""

    name: str
    alias: str

    def __str__(self) -> str:
        if self.name == self.alias:
            return self.name
        return f"{self.name} AS {self.alias}"


@dataclass
class SelectQuery:
    """A single SELECT block.

    ``where`` holds conjuncts (joined with ``AND`` when unparsed); an empty
    list means no WHERE clause.  ``group_by`` triggers a ``GROUP BY``.
    """

    items: List[SelectItem]
    from_tables: List[TableRef] = field(default_factory=list)
    where: List[SQLExpr] = field(default_factory=list)
    group_by: List[SQLExpr] = field(default_factory=list)
    distinct: bool = True

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct and not self.group_by:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.items))
        if self.from_tables:
            parts.append("FROM " + ", ".join(str(table) for table in self.from_tables))
        if self.where:
            parts.append("WHERE " + " AND ".join(f"({cond})" for cond in self.where))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(expr) for expr in self.group_by))
        return " ".join(parts)


@dataclass
class CTE:
    """A common table expression: one or more UNIONed SELECT members.

    For recursive CTEs the ``base_members`` come first, then the
    ``recursive_members``; non-recursive CTEs keep everything in
    ``base_members``.
    """

    name: str
    columns: List[str]
    base_members: List[SelectQuery]
    recursive_members: List[SelectQuery] = field(default_factory=list)

    @property
    def is_recursive(self) -> bool:
        """Return whether this CTE has recursive members."""
        return bool(self.recursive_members)

    def all_members(self) -> List[SelectQuery]:
        """Return base then recursive members."""
        return list(self.base_members) + list(self.recursive_members)


@dataclass
class SQIRQuery:
    """A full SQIR query: ordered CTEs plus the final SELECT."""

    ctes: List[CTE]
    final: SelectQuery

    @property
    def is_recursive(self) -> bool:
        """Return whether any CTE is recursive."""
        return any(cte.is_recursive for cte in self.ctes)

    def cte(self, name: str) -> CTE:
        """Return the CTE called ``name``."""
        for cte in self.ctes:
            if cte.name == name:
                return cte
        raise KeyError(name)
