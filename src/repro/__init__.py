"""Raqlet: cross-paradigm compilation for recursive queries (reproduction).

The public API is re-exported here.  For serving workloads the entry point
is a persistent session — compile once, bind per request, keep the store
hot::

    from repro import Raqlet
    raqlet = Raqlet(schema_text)
    session = raqlet.session(facts)
    prepared = session.prepare("MATCH (n:Person {id: $personId}) ... ")
    prepared.run(personId=42)
    prepared.run(personId=99)     # warm: zero re-ingest, zero recompiles

For one-off compilation the classic pipeline remains::

    compiled = raqlet.compile_cypher("MATCH (n:Person {id: 42}) ... ")
    print(compiled.datalog_text())
    print(compiled.sql_text())
"""

from repro.pipeline import CompiledQuery, Raqlet
from repro.session import PreparedQuery, Session
from repro.engines.result import QueryResult
from repro.schema import PGSchema, SchemaMapping, parse_pg_schema, pg_to_dl_schema

__version__ = "0.2.0"

__all__ = [
    "Raqlet",
    "CompiledQuery",
    "Session",
    "PreparedQuery",
    "QueryResult",
    "PGSchema",
    "SchemaMapping",
    "parse_pg_schema",
    "pg_to_dl_schema",
    "__version__",
]
