"""Raqlet: cross-paradigm compilation for recursive queries (reproduction).

The public API is re-exported here; the typical entry point is
:class:`repro.Raqlet`::

    from repro import Raqlet
    raqlet = Raqlet(schema_text)
    compiled = raqlet.compile_cypher("MATCH (n:Person {id: 42}) ... ")
    print(compiled.datalog_text())
    print(compiled.sql_text())
"""

from repro.pipeline import CompiledQuery, Raqlet
from repro.engines.result import QueryResult
from repro.schema import PGSchema, SchemaMapping, parse_pg_schema, pg_to_dl_schema

__version__ = "0.1.0"

__all__ = [
    "Raqlet",
    "CompiledQuery",
    "QueryResult",
    "PGSchema",
    "SchemaMapping",
    "parse_pg_schema",
    "pg_to_dl_schema",
    "__version__",
]
