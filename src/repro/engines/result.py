"""A common result type shared by all execution engines."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple


@dataclass
class QueryResult:
    """Column names plus result rows.

    All Raqlet backends use set semantics (``RETURN DISTINCT`` /
    ``SELECT DISTINCT`` / Datalog sets), so equality between results from
    different engines is defined on the *set* of rows; ordering is
    irrelevant.
    """

    columns: List[str]
    rows: List[Tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        """A stable one-line summary: column names plus the row count.

        Deliberately row-free so a REPL (or log line) never dumps a
        million-row result; use :meth:`to_dicts` / :meth:`sorted_rows` for
        the data itself.
        """
        row_word = "row" if len(self.rows) == 1 else "rows"
        return (
            f"QueryResult(columns=[{', '.join(self.columns)}], "
            f"{len(self.rows)} {row_word})"
        )

    def row_set(self) -> FrozenSet[Tuple]:
        """Return the rows as a frozen set (set-semantics view)."""
        return frozenset(self.rows)

    def sorted_rows(self) -> List[Tuple]:
        """Return rows sorted lexicographically (stringified for mixed types)."""
        return sorted(self.rows, key=lambda row: tuple(str(value) for value in row))

    def same_rows(self, other: "QueryResult") -> bool:
        """Return whether two results contain exactly the same row set."""
        return self.row_set() == other.row_set()

    def to_dicts(self) -> List[dict]:
        """Return rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_jsonable(self) -> Dict[str, list]:
        """Return the result as a JSON-compatible dict.

        Rows become lists (JSON has no tuples); values must already be
        JSON-representable, which holds for everything the engines derive
        (scalars only).  This is the payload shape the serving protocol
        puts on the wire.
        """
        return {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def to_json(self) -> str:
        """Serialize to a JSON string; inverse of :meth:`from_json`."""
        return json.dumps(self.to_jsonable())

    @staticmethod
    def from_jsonable(payload: Dict[str, list]) -> "QueryResult":
        """Rebuild a result from :meth:`to_jsonable` output (rows become
        tuples again, so set-semantics comparisons keep working)."""
        return QueryResult(
            columns=list(payload["columns"]),
            rows=[tuple(row) for row in payload["rows"]],
        )

    @staticmethod
    def from_json(text: str) -> "QueryResult":
        """Rebuild a result from a :meth:`to_json` string."""
        return QueryResult.from_jsonable(json.loads(text))

    @staticmethod
    def from_rows(columns: Sequence[str], rows: Sequence[Sequence]) -> "QueryResult":
        """Build a result, normalising rows to tuples and deduplicating."""
        seen = set()
        unique: List[Tuple] = []
        for row in rows:
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                unique.append(key)
        return QueryResult(columns=list(columns), rows=unique)
