"""Execute Raqlet-generated SQL on SQLite (a real external SQL system).

The executor creates one table per EDB relation of a DL-Schema, bulk-loads the
facts, and runs the SQL text produced by :func:`repro.backends.sql.sqir_to_sql`.
It is the "runs on a real RDBMS" leg of the evaluation, complementing the
in-repo relational engine.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.engines.result import QueryResult
from repro.schema.dl_schema import DLSchema

FactsInput = Mapping[str, Iterable[Tuple]]


class SQLiteExecutor:
    """Hold a SQLite connection loaded with a DL-Schema dataset."""

    def __init__(self, schema: DLSchema, facts: Optional[FactsInput] = None) -> None:
        self._schema = schema
        self._connection = sqlite3.connect(":memory:")
        self._create_tables()
        if facts:
            self.load_facts(facts)

    # -- loading ------------------------------------------------------------

    def _create_tables(self) -> None:
        cursor = self._connection.cursor()
        for relation in self._schema.edb_relations():
            columns = ", ".join(
                f'"{column.name}" {column.type.sql_type()}' for column in relation.columns
            )
            cursor.execute(f'CREATE TABLE "{relation.name}" ({columns})')
        self._connection.commit()

    def load_facts(self, facts: FactsInput) -> None:
        """Bulk-insert ``facts`` into the corresponding tables."""
        cursor = self._connection.cursor()
        for relation_name, rows in facts.items():
            relation = self._schema.maybe_get(relation_name)
            if relation is None or not relation.is_edb:
                continue
            placeholders = ", ".join("?" for _ in relation.columns)
            cursor.executemany(
                f'INSERT INTO "{relation_name}" VALUES ({placeholders})',
                [tuple(row) for row in rows],
            )
        self._connection.commit()

    def create_indexes(self) -> None:
        """Create single-column indexes on the first two columns of every table.

        Mirrors the primary-key / adjacency indexes a production deployment
        would have; the benchmarks call this before timing queries.
        """
        cursor = self._connection.cursor()
        for relation in self._schema.edb_relations():
            for column in relation.columns[:2]:
                cursor.execute(
                    f'CREATE INDEX IF NOT EXISTS "idx_{relation.name}_{column.name}" '
                    f'ON "{relation.name}" ("{column.name}")'
                )
        self._connection.commit()

    # -- execution ------------------------------------------------------------

    def execute_sql(
        self, sql: str, parameters: Optional[Mapping[str, object]] = None
    ) -> QueryResult:
        """Run ``sql`` (a single statement) and return its result rows.

        ``parameters`` binds named ``:name`` placeholders (the form the SQL
        backend emits for late-bound query parameters) through SQLite's own
        parameter binding.
        """
        try:
            cursor = self._connection.execute(sql, dict(parameters or {}))
        except sqlite3.Error as exc:
            raise ExecutionError(f"SQLite error: {exc}\nSQL was:\n{sql}") from exc
        columns = [description[0] for description in cursor.description or []]
        rows: List[Tuple] = [tuple(row) for row in cursor.fetchall()]
        return QueryResult.from_rows(columns, rows)

    def table_count(self, name: str) -> int:
        """Return ``SELECT COUNT(*)`` of a table."""
        cursor = self._connection.execute(f'SELECT COUNT(*) FROM "{name}"')
        return int(cursor.fetchone()[0])

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SQLiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_sql_on_sqlite(
    schema: DLSchema, facts: FactsInput, sql: str, with_indexes: bool = True
) -> QueryResult:
    """One-shot helper: load ``facts`` into SQLite and run ``sql``."""
    with SQLiteExecutor(schema, facts) as executor:
        if with_indexes:
            executor.create_indexes()
        return executor.execute_sql(sql)
