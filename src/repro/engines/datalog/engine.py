"""Stratified semi-naive evaluation of DLIR programs.

The engine evaluates strata bottom-up.  Within a stratum it runs the standard
semi-naive loop: an initial full round, then iterations in which each rule is
re-evaluated once per recursive body atom with that atom restricted to the
facts newly derived in the previous iteration.

Each ``(rule, delta position)`` pair is compiled once into a
:class:`~repro.engines.datalog.planner.RulePlan` (join order, index
positions, guard placement) and the plan is reused across every fixpoint
iteration; the fact store's hash indexes are maintained incrementally as
facts are inserted, so no index is ever rebuilt inside the loop.  Plans run
through a pluggable :class:`~repro.engines.datalog.executor_compiled.RuleExecutor`
— by default the compiled executor, which source-generates one specialised
closure per plan and batches each join step's index probes through
``StoreBackend.lookup_many`` (select ``executor="interpreted"`` for the
plan interpreter or ``executor="columnar"`` for the NumPy column-array
executor, or set the ``REPRO_EXECUTOR`` environment variable).

Min/max subsumption (``Rule.subsume_min`` / ``subsume_max``) is honoured
during insertion: for a relation with a subsumption spec only the best value
of the designated column is kept per combination of the remaining columns,
and a fact only counts as "new" when it improves on the incumbent.  This is
what keeps shortest-path recursion finite on cyclic graphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.stratification import stratify
from repro.common.errors import ExecutionError
from repro.dlir.core import Atom, DLIRProgram, Rule
from repro.engines.datalog.executor_compiled import (
    ExecutorSpec,
    RuleExecutor,
    create_executor,
)
from repro.engines.datalog.planner import PlanCache, RulePlan, plan_rule
from repro.engines.datalog.statistics import RelationStats, resolve_replan_threshold
from repro.engines.datalog.storage import (
    DeltaView,
    StoreBackend,
    StoreSpec,
    create_store,
)
from repro.engines.result import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ivm imports us)
    from repro.engines.datalog.ivm import MaintenanceReport

FactsInput = Mapping[str, Iterable[Tuple]]


class _SubsumptionSpec:
    """Keep only the min (or max) value of one column per key of the others."""

    def __init__(self, column: int, minimize: bool, arity: int) -> None:
        self.column = column
        self.minimize = minimize
        self.key_positions = [index for index in range(arity) if index != column]
        self._best: Dict[Tuple, Tuple] = {}

    def admit(self, row: Tuple) -> Tuple[bool, Optional[Tuple]]:
        """Return ``(is_new_or_better, replaced_row)`` for ``row``."""
        key = tuple(row[index] for index in self.key_positions)
        incumbent = self._best.get(key)
        if incumbent is None:
            self._best[key] = row
            return True, None
        if incumbent == row:
            return False, None
        better = (
            row[self.column] < incumbent[self.column]
            if self.minimize
            else row[self.column] > incumbent[self.column]
        )
        if better:
            self._best[key] = row
            return True, incumbent
        return False, None


class DatalogEngine:
    """Evaluate a DLIR program bottom-up over a set of EDB facts."""

    def __init__(
        self,
        program: DLIRProgram,
        facts: Optional[FactsInput] = None,
        *,
        incremental_indexes: bool = True,
        reuse_plans: bool = True,
        store: StoreSpec = None,
        executor: ExecutorSpec = None,
        replan_threshold: Optional[float] = None,
        parameters: Optional[Mapping[str, object]] = None,
        ivm: bool = False,
    ) -> None:
        problems = program.validate()
        if problems:
            raise ExecutionError("invalid DLIR program: " + "; ".join(problems))
        self._program = program
        # ``store`` selects the backend: ``"memory"`` (default), ``"sqlite"``
        # / ``"sqlite:PATH"``, a StoreBackend instance, or None to honour the
        # REPRO_STORE environment variable.  ``executor`` selects how plans
        # run: ``"compiled"`` (default; source-generated closures with
        # batched index probes), ``"interpreted"`` (the plan walker), or
        # ``"columnar"`` (NumPy column arrays with vectorised kernels,
        # falling back per-plan to compiled), with None honouring
        # REPRO_EXECUTOR.  ``replan_threshold`` is the
        # cardinality drift factor that triggers adaptive re-planning
        # (default 10, env REPRO_REPLAN_THRESHOLD; 1 = re-plan every
        # iteration, float("inf") = freeze first plans).  ``parameters``
        # binds the program's late-bound ``$name`` placeholders for this
        # evaluation (rebind with ``reset(parameters=...)``).
        self._store = create_store(store, maintain_indexes=incremental_indexes)
        self._executor = create_executor(executor)
        self._replan_threshold = resolve_replan_threshold(replan_threshold)
        self._plans: Optional[PlanCache] = (
            PlanCache(replan_threshold=self._replan_threshold)
            if reuse_plans
            else None
        )
        self._params: Dict[str, object] = dict(parameters or {})
        self._evaluated = False
        self._iterations: Dict[str, int] = {}
        self._strata: Optional[List[Sequence[str]]] = None
        self.stats_snapshot_count = 0
        #: how many times :meth:`reset` cleared the IDB for re-derivation
        self.reset_count = 0
        # ``ivm`` keeps the incremental maintainer primed after every full
        # derivation so EDB deltas can be applied via :meth:`maintain`
        # without re-deriving; see repro.engines.datalog.ivm.
        self._ivm = bool(ivm)
        self._maintainer = None
        #: how many delta batches the incremental maintainer applied
        self.maintain_count = 0
        #: how many :meth:`maintain` calls fell back to full re-derivation
        self.full_rederive_count = 0
        self._idb_relations = set(program.idb_names())
        self._store.mark_idb(self._idb_relations)
        # Constructor-supplied facts landing on *derived* relations (a
        # relation may have both rules and externally supplied seed rows)
        # are remembered: reset() clears the whole IDB and must restore
        # them alongside the program's own fact clauses.
        self._seed_idb_facts: Dict[str, List[Tuple]] = {}
        with self._store.batch():
            for relation, rows in program.facts.items():
                self._store.add_many(relation, (tuple(row) for row in rows))
            if facts:
                for relation, rows in facts.items():
                    materialised = [tuple(row) for row in rows]
                    if relation in self._idb_relations:
                        self._seed_idb_facts[relation] = materialised
                    self._store.add_many(relation, materialised)
        self._subsumption = self._collect_subsumption_specs()

    # -- public API --------------------------------------------------------

    @property
    def store(self) -> StoreBackend:
        """Return the underlying fact store (facts are available after :meth:`run`)."""
        return self._store

    @property
    def executor(self) -> RuleExecutor:
        """Return the rule executor evaluating this engine's plans."""
        return self._executor

    @property
    def executor_fallback_count(self) -> int:
        """Return how many times the executor fell back to a slower strategy.

        Mirrors ``full_rederive_count`` for incremental maintenance: the
        compiled executor counts plans it could not compile (handed to the
        interpreter), the columnar executor counts both plans it could not
        lower and rule applications whose data defeated the vectorised
        kernels (both re-run on the compiled executor).  Zero for executors
        without a fallback path.
        """
        executor = self._executor
        return int(getattr(executor, "fallback_count", 0)) + int(
            getattr(executor, "runtime_fallback_count", 0)
        )

    @property
    def replan_threshold(self) -> float:
        """Return the cardinality drift factor that triggers re-planning."""
        return self._replan_threshold

    @property
    def replan_count(self) -> int:
        """Return how many cached plans were rebuilt because their
        statistics basis drifted (0 with ``reuse_plans=False``)."""
        return self._plans.replan_count if self._plans is not None else 0

    @property
    def plan_build_count(self) -> int:
        """Return how many plans were built from scratch (first builds plus
        re-plans; 0 with ``reuse_plans=False``)."""
        return self._plans.plan_build_count if self._plans is not None else 0

    @property
    def stats_epoch(self) -> int:
        """Return the plan cache's statistics epoch (bumped per re-plan)."""
        return self._plans.stats_epoch if self._plans is not None else 0

    @property
    def parameters(self) -> Dict[str, object]:
        """Return the late-bound parameter values of the current evaluation."""
        return dict(self._params)

    def run(self) -> StoreBackend:
        """Evaluate the whole program; idempotent."""
        if self._evaluated:
            return self._store
        if self._strata is None:
            # Stratification depends only on the (immutable) program, so
            # warm re-runs after reset() reuse it.
            self._strata = stratify(self._program)
        for stratum in self._strata:
            self._evaluate_stratum(stratum)
        self._evaluated = True
        if self._ivm:
            # Prime right after derivation, while the store holds exactly
            # the derived state (counts and aggregate snapshots are exact).
            maintainer = self._ensure_maintainer()
            if maintainer.maintainable:
                maintainer.prime()
        return self._store

    def reset(self, parameters: Optional[Mapping[str, object]] = None) -> None:
        """Clear every derived (IDB) fact so the next :meth:`run` re-derives.

        The expensive state survives: the EDB stays ingested, every index
        stays registered (and is emptied in place, so ``index_build_count``
        does not move), the :class:`PlanCache` keeps its plans and the
        compiled executor its closures.  ``parameters`` optionally rebinds
        the late-bound parameter values for the next evaluation — the warm
        path of a :class:`~repro.session.PreparedQuery`.
        """
        with self._store.batch():
            self._store.clear_idb(self._idb_relations)
            for relation, rows in self._program.facts.items():
                # Ground facts attached to derived relations (a relation can
                # have both fact clauses and rules) were cleared with the
                # IDB; restore them.
                if relation in self._idb_relations:
                    self._store.add_many(relation, (tuple(row) for row in rows))
            for relation, rows in self._seed_idb_facts.items():
                # Likewise for constructor-supplied seed rows on derived
                # relations.
                self._store.add_many(relation, rows)
        self._subsumption = self._collect_subsumption_specs()
        self._iterations = {}
        self._evaluated = False
        self.reset_count += 1
        if self._maintainer is not None:
            # The sidecar counts describe the cleared derivation; the next
            # run() re-primes them.
            self._maintainer.invalidate()
        if parameters is not None:
            self._params = dict(parameters)

    @property
    def ivm(self) -> bool:
        """Whether incremental view maintenance is enabled."""
        return self._ivm

    @property
    def maintainer(self):
        """Return the incremental maintainer (``None`` until first used)."""
        return self._maintainer

    def _ensure_maintainer(self):
        if self._maintainer is None:
            # Imported lazily: ivm.py imports evaluation/storage, and
            # eager import here would cost every non-IVM engine the load.
            from repro.engines.datalog.ivm import IncrementalMaintainer

            self._maintainer = IncrementalMaintainer(self)
        return self._maintainer

    def maintain(
        self,
        added: Mapping[str, Set[Tuple]],
        removed: Mapping[str, Set[Tuple]],
    ) -> "MaintenanceReport":
        """Fold one EDB delta batch into the derived store.

        ``added``/``removed`` map extensional relations to the *effective*
        row deltas the caller already applied to the store (added rows are
        present, removed rows are gone).  On return the store again holds
        the program's full derivation.  Always succeeds — when the program
        is unmaintainable or maintenance errors out, the engine falls back
        to a full ``reset()`` + ``run()`` and bumps ``full_rederive_count``
        (the incremental path bumps ``maintain_count`` instead, which is
        how tests prove IVM actually ran).

        Either way the returned
        :class:`~repro.engines.datalog.ivm.MaintenanceReport` carries the
        **exact** per-relation ``(added, removed)`` row delta of the whole
        batch — the incremental path reads it off the maintenance pass for
        free, the fallback path snapshots the IDB relations before the
        reset and diffs after re-derivation (a failed pass rolls its
        partial writes back first, so the snapshot really is the old
        state).  Subscriptions rely on this: no fallback ever loses a
        notification.
        """
        if not self._evaluated:
            # Nothing derived yet: derive now and report everything that
            # appears relative to the store's current (underived) state.
            return self._rederive_with_report(added, removed, fallback=False)
        maintainer = self._ensure_maintainer() if self._ivm else self._maintainer
        if maintainer is not None and maintainer.maintainable and maintainer.primed:
            try:
                report = maintainer.maintain(added, removed)
            except Exception:
                # The maintainer rolled back its partial writes: the EDB is
                # at the new state, the IDB exactly at the old one — the
                # snapshot-and-diff below therefore reports the true delta.
                pass
            else:
                self.maintain_count += 1
                return report
        return self._rederive_with_report(added, removed, fallback=True)

    def rederive(
        self,
        parameters: Optional[Mapping[str, object]] = None,
        *,
        fallback: bool = False,
    ) -> "MaintenanceReport":
        """Re-derive from scratch and report the resulting IDB row delta.

        The delta-tracking counterpart of ``reset()`` + ``run()``: the IDB
        relations are snapshotted first and diffed after, so callers that
        must observe changes (standing queries crossing a bulk-ingest
        sentinel or a parameter rebind) get the same exact
        :class:`~repro.engines.datalog.ivm.MaintenanceReport` the
        incremental path produces.  ``fallback=True`` counts the event in
        ``full_rederive_count`` — pass it when this re-derivation replaces
        a derivation that should have been maintainable (a bulk-ingest
        sentinel crossed a standing query); a chosen cold path (first
        derivation, binding change) leaves the counter untouched.
        """
        return self._rederive_with_report(
            {}, {}, fallback=fallback, parameters=parameters
        )

    def _rederive_with_report(
        self,
        added: Mapping[str, Set[Tuple]],
        removed: Mapping[str, Set[Tuple]],
        *,
        fallback: bool,
        parameters: Optional[Mapping[str, object]] = None,
    ) -> "MaintenanceReport":
        """Full re-derivation bracketed by an IDB snapshot/diff.

        O(|IDB|) — the price of exact deltas on the paths incremental
        maintenance cannot serve.  The EDB input delta (``added`` /
        ``removed``) is merged into the report so consumers see one
        coherent change set whichever path produced it.
        """
        from repro.engines.datalog.ivm import MaintenanceReport

        before = {
            relation: set(self._store.scan(relation))
            for relation in self._idb_relations
        }
        if fallback:
            self.full_rederive_count += 1
        if self._evaluated:
            self.reset(parameters=parameters)
        elif parameters is not None:
            self._params = dict(parameters)
        self.run()
        report = MaintenanceReport(full_rederive=True)
        for relation in self._idb_relations:
            after = set(self._store.scan(relation))
            prior = before.get(relation, set())
            grew = after - prior
            shrank = prior - after
            if grew:
                report.added[relation] = grew
            if shrank:
                report.removed[relation] = shrank
        for relation, rows in added.items():
            if rows:
                report.added.setdefault(relation, set()).update(
                    tuple(row) for row in rows
                )
        for relation, rows in removed.items():
            if rows:
                report.removed.setdefault(relation, set()).update(
                    tuple(row) for row in rows
                )
        return report

    def set_parameters(self, parameters: Mapping[str, object]) -> None:
        """Bind parameter values for the next evaluation.

        Rebinding after an evaluation requires :meth:`reset` first — the
        derived facts in the store reflect the old binding.
        """
        if self._evaluated:
            raise ExecutionError(
                "engine already evaluated — call reset() before re-binding "
                "parameters"
            )
        self._params = dict(parameters)

    def query(self, relation: Optional[str] = None) -> QueryResult:
        """Run the program (if needed) and return the rows of ``relation``.

        ``relation`` defaults to the program's first output.
        """
        self.run()
        if relation is None:
            if not self._program.outputs:
                raise ExecutionError("program has no output relation")
            relation = self._program.outputs[0]
        declaration = self._program.schema.maybe_get(relation)
        if declaration is not None:
            columns = declaration.column_names()
        else:
            columns = []
        rows = sorted(self._store.scan(relation), key=lambda row: tuple(str(v) for v in row))
        if not columns and rows:
            columns = [f"c{index}" for index in range(len(rows[0]))]
        return QueryResult(columns=columns, rows=rows)

    def fact_count(self, relation: str) -> int:
        """Return how many facts ``relation`` holds (after :meth:`run`)."""
        self.run()
        return self._store.count(relation)

    def iteration_count(self, relation: str) -> int:
        """Return how many semi-naive iterations the relation's stratum took."""
        self.run()
        return self._iterations.get(relation, 0)

    # -- explain -------------------------------------------------------------

    def plan_report(self) -> List[Dict[str, object]]:
        """Run the program and return one dict per cached plan.

        Each entry describes a ``(rule, delta position)`` plan as it stood
        at the end of evaluation: the join order actually executed
        (``join_order`` — ``(relation, body position)`` pairs), the
        statistics the cost model consumed (``stats_basis``), the epoch the
        plan was (re)built in, its per-step fan-out estimates and total cost
        estimate.  Machine-readable counterpart of :meth:`explain`; empty
        with ``reuse_plans=False``.
        """
        self.run()
        if self._plans is None:
            return []
        report = []
        for plan in self._plans.plans():
            report.append(
                {
                    "rule": str(plan.rule),
                    "head": plan.rule.head.relation,
                    "delta_index": plan.delta_index,
                    "join_order": [
                        (step.relation, step.body_index) for step in plan.steps
                    ],
                    "stats_epoch": plan.stats_epoch,
                    "stats_basis": dict(plan.stats_basis or ()),
                    "step_fanouts": list(plan.step_fanouts or ()),
                    "cost_estimate": plan.cost_estimate,
                }
            )
        report.sort(
            key=lambda entry: (
                entry["head"],
                entry["rule"],
                -1 if entry["delta_index"] is None else entry["delta_index"],
            )
        )
        return report

    def explain(self) -> str:
        """Run the program and render the plan report as text.

        Shows the planner/statistics counters (plans built, re-plans,
        stats epoch, snapshots, index builds) followed by every cached
        plan's join order, cost estimate and statistics basis — the
        observable surface for "which join order ran, and why".
        """
        report = self.plan_report()  # runs the program
        store = self._store
        lines = ["datalog plan report"]
        lines.append(
            f"  executor={self._executor.name} store={type(store).__name__} "
            f"replan_threshold={self._replan_threshold:g}"
        )
        lines.append(
            f"  plans_built={self.plan_build_count} replans={self.replan_count} "
            f"stats_epoch={self.stats_epoch} "
            f"stats_snapshots={self.stats_snapshot_count}"
        )
        lines.append(
            f"  index_builds={store.index_build_count} indexes={store.index_count}"
        )
        if not report:
            lines.append("  (no cached plans: engine ran with reuse_plans=False)")
        for entry in report:
            delta = entry["delta_index"]
            delta_text = "full" if delta is None else f"delta@{delta}"
            lines.append(f"  rule {entry['rule']}  [{delta_text}]")
            fanouts = entry["step_fanouts"]
            for position, (relation, body_index) in enumerate(entry["join_order"]):
                fanout_text = (
                    f"  est_fanout={fanouts[position]:g}"
                    if fanouts and position < len(fanouts)
                    else ""
                )
                lines.append(
                    f"    step {position}: {relation} (body {body_index})"
                    f"{fanout_text}"
                )
            cost = entry["cost_estimate"]
            basis = entry["stats_basis"]
            if cost is not None:
                basis_text = ", ".join(
                    f"{name}={cardinality}" for name, cardinality in basis.items()
                )
                lines.append(
                    f"    epoch={entry['stats_epoch']} est_cost={cost:g} "
                    f"basis[{basis_text}]"
                )
        return "\n".join(lines)

    # -- evaluation ----------------------------------------------------------

    def _plan(
        self,
        rule: Rule,
        delta_index: Optional[int] = None,
        delta_size: int = 0,
        stats: Optional[Dict[str, RelationStats]] = None,
    ) -> RulePlan:
        """Return the (cached) compiled plan for ``(rule, delta_index)``.

        ``stats`` is the iteration's statistics snapshot: it drives the
        cost-based join order and, through :class:`PlanCache`, the drift
        check that re-plans a rule whose basis cardinalities moved.  With
        ``reuse_plans=False`` every application plans afresh against current
        statistics, so that mode is adaptive by construction.
        """
        if self._plans is None:
            return plan_rule(rule, self._store, delta_index, delta_size, stats=stats)
        return self._plans.plan_for(
            rule, self._store, delta_index, delta_size, stats=stats
        )

    def _stats_snapshot(self, relations: Sequence[str]) -> Dict[str, RelationStats]:
        """Snapshot cardinality/distinct statistics for ``relations``.

        With ``replan_threshold=inf`` and a plan cache, drift checks never
        read the snapshot and only first builds consume statistics — and
        those backfill per-relation stats from the store on demand (see
        ``_atom_cost``).  Returning an empty snapshot there avoids paying a
        per-iteration aggregate scan per relation on the SQLite backend for
        numbers nothing would read.
        """
        if self._plans is not None and self._replan_threshold == float("inf"):
            return {}
        self.stats_snapshot_count += 1
        return self._store.stats_snapshot(relations)

    def _collect_subsumption_specs(self) -> Dict[str, _SubsumptionSpec]:
        specs: Dict[str, _SubsumptionSpec] = {}
        for rule in self._program.rules:
            relation = rule.head.relation
            column: Optional[int] = None
            minimize = True
            if rule.subsume_min is not None:
                column, minimize = rule.subsume_min, True
            elif rule.subsume_max is not None:
                column, minimize = rule.subsume_max, False
            if column is None:
                continue
            existing = specs.get(relation)
            if existing is not None:
                if existing.column != column or existing.minimize != minimize:
                    raise ExecutionError(
                        f"conflicting subsumption specifications for {relation!r}"
                    )
                continue
            specs[relation] = _SubsumptionSpec(column, minimize, rule.head.arity)
        return specs

    def _insert(self, relation: str, rows: Set[Tuple]) -> Set[Tuple]:
        """Insert rows honouring subsumption; return the rows that are new."""
        spec = self._subsumption.get(relation)
        fresh: Set[Tuple] = set()
        if spec is None:
            for row in rows:
                if self._store.add(relation, row):
                    fresh.add(row)
            return fresh
        for row in rows:
            admitted, replaced = spec.admit(row)
            if not admitted:
                continue
            if replaced is not None:
                self._store.remove(relation, replaced)
            if self._store.add(relation, row):
                fresh.add(row)
        return fresh

    def _evaluate_stratum(self, stratum: Sequence[str]) -> None:
        stratum_set = set(stratum)
        rules = [
            rule for rule in self._program.rules if rule.head.relation in stratum_set
        ]
        if not rules:
            return
        # Any relation *defined* in this stratum can feed other rules of the
        # same stratum, so the semi-naive loop must track deltas for all of
        # them (not only the truly recursive ones): a non-recursive rule such
        # as the translation's ``Match``/``Where`` views still has to be
        # re-evaluated when the recursive relation it reads grows.
        defined_here = {
            rule.head.relation for rule in rules if rule.head.relation in stratum_set
        }
        recursive_relations = defined_here
        # The relations whose statistics matter to this stratum's plans: one
        # snapshot per iteration covers every positive body atom.
        body_relations = sorted(
            {
                literal.relation
                for rule in rules
                for literal in rule.body
                if isinstance(literal, Atom)
            }
        )
        # Initial full round.  Each round's inserts run as one store batch
        # (one transaction on transactional backends).
        delta: Dict[str, Set[Tuple]] = defaultdict(set)
        stats = self._stats_snapshot(body_relations)
        with self._store.batch():
            for rule in rules:
                derived = self._executor.evaluate_rule(
                    rule,
                    self._store,
                    plan=self._plan(rule, stats=stats),
                    params=self._params,
                )
                fresh = self._insert(rule.head.relation, derived)
                delta[rule.head.relation].update(fresh)
        iterations = 1
        # Semi-naive loop.  Delta views are shared per relation per iteration
        # so their mini-indexes amortise across rules and delta positions.
        # Statistics are re-snapshotted each iteration; a rule whose plan was
        # costed on cardinalities that have since drifted past the re-plan
        # threshold is re-planned before it runs (see PlanCache.drifted).
        while any(delta.values()):
            delta_views = {
                relation: DeltaView(rows) for relation, rows in delta.items() if rows
            }
            new_delta: Dict[str, Set[Tuple]] = defaultdict(set)
            stats = self._stats_snapshot(body_relations)
            with self._store.batch():
                for rule in rules:
                    recursive_positions = [
                        index
                        for index, literal in enumerate(rule.body)
                        if isinstance(literal, Atom)
                        and literal.relation in recursive_relations
                        and delta.get(literal.relation)
                    ]
                    if not recursive_positions:
                        continue
                    for position in recursive_positions:
                        literal = rule.body[position]
                        assert isinstance(literal, Atom)
                        view = delta_views[literal.relation]
                        derived = self._executor.evaluate_rule(
                            rule,
                            self._store,
                            delta_index=position,
                            delta_rows=view,
                            plan=self._plan(rule, position, len(view), stats=stats),
                            params=self._params,
                        )
                        fresh = self._insert(rule.head.relation, derived)
                        new_delta[rule.head.relation].update(fresh)
            delta = new_delta
            iterations += 1
            if iterations > 1_000_000:  # pragma: no cover - safety net
                raise ExecutionError("semi-naive evaluation did not converge")
        for relation in stratum_set:
            self._iterations[relation] = iterations


def evaluate_program(
    program: DLIRProgram,
    facts: Optional[FactsInput] = None,
    relation: Optional[str] = None,
    store: StoreSpec = None,
    executor: ExecutorSpec = None,
    parameters: Optional[Mapping[str, object]] = None,
) -> QueryResult:
    """Convenience wrapper: evaluate ``program`` and return one relation's rows."""
    engine = DatalogEngine(
        program, facts, store=store, executor=executor, parameters=parameters
    )
    return engine.query(relation)
