"""Stratified semi-naive evaluation of DLIR programs.

The engine evaluates strata bottom-up.  Within a stratum it runs the standard
semi-naive loop: an initial full round, then iterations in which each rule is
re-evaluated once per recursive body atom with that atom restricted to the
facts newly derived in the previous iteration.

Each ``(rule, delta position)`` pair is compiled once into a
:class:`~repro.engines.datalog.planner.RulePlan` (join order, index
positions, guard placement) and the plan is reused across every fixpoint
iteration; the fact store's hash indexes are maintained incrementally as
facts are inserted, so no index is ever rebuilt inside the loop.  Plans run
through a pluggable :class:`~repro.engines.datalog.executor_compiled.RuleExecutor`
— by default the compiled executor, which source-generates one specialised
closure per plan and batches each join step's index probes through
``StoreBackend.lookup_many`` (select with ``executor="interpreted"`` or the
``REPRO_EXECUTOR`` environment variable to run the plan interpreter
instead).

Min/max subsumption (``Rule.subsume_min`` / ``subsume_max``) is honoured
during insertion: for a relation with a subsumption spec only the best value
of the designated column is kept per combination of the remaining columns,
and a fact only counts as "new" when it improves on the incumbent.  This is
what keeps shortest-path recursion finite on cyclic graphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.dependencies import build_dependency_graph
from repro.analysis.stratification import stratify
from repro.common.errors import ExecutionError
from repro.dlir.core import Atom, DLIRProgram, Rule
from repro.engines.datalog.executor_compiled import (
    ExecutorSpec,
    RuleExecutor,
    create_executor,
)
from repro.engines.datalog.planner import PlanCache, RulePlan, plan_rule
from repro.engines.datalog.storage import (
    DeltaView,
    StoreBackend,
    StoreSpec,
    create_store,
)
from repro.engines.result import QueryResult

FactsInput = Mapping[str, Iterable[Tuple]]


class _SubsumptionSpec:
    """Keep only the min (or max) value of one column per key of the others."""

    def __init__(self, column: int, minimize: bool, arity: int) -> None:
        self.column = column
        self.minimize = minimize
        self.key_positions = [index for index in range(arity) if index != column]
        self._best: Dict[Tuple, Tuple] = {}

    def admit(self, row: Tuple) -> Tuple[bool, Optional[Tuple]]:
        """Return ``(is_new_or_better, replaced_row)`` for ``row``."""
        key = tuple(row[index] for index in self.key_positions)
        incumbent = self._best.get(key)
        if incumbent is None:
            self._best[key] = row
            return True, None
        if incumbent == row:
            return False, None
        better = (
            row[self.column] < incumbent[self.column]
            if self.minimize
            else row[self.column] > incumbent[self.column]
        )
        if better:
            self._best[key] = row
            return True, incumbent
        return False, None


class DatalogEngine:
    """Evaluate a DLIR program bottom-up over a set of EDB facts."""

    def __init__(
        self,
        program: DLIRProgram,
        facts: Optional[FactsInput] = None,
        *,
        incremental_indexes: bool = True,
        reuse_plans: bool = True,
        store: StoreSpec = None,
        executor: ExecutorSpec = None,
    ) -> None:
        problems = program.validate()
        if problems:
            raise ExecutionError("invalid DLIR program: " + "; ".join(problems))
        self._program = program
        # ``store`` selects the backend: ``"memory"`` (default), ``"sqlite"``
        # / ``"sqlite:PATH"``, a StoreBackend instance, or None to honour the
        # REPRO_STORE environment variable.  ``executor`` selects how plans
        # run: ``"compiled"`` (default; source-generated closures with
        # batched index probes) or ``"interpreted"`` (the plan walker), with
        # None honouring REPRO_EXECUTOR.
        self._store = create_store(store, maintain_indexes=incremental_indexes)
        self._executor = create_executor(executor)
        self._plans: Optional[PlanCache] = PlanCache() if reuse_plans else None
        self._evaluated = False
        self._iterations: Dict[str, int] = {}
        with self._store.batch():
            for relation, rows in program.facts.items():
                self._store.add_many(relation, (tuple(row) for row in rows))
            if facts:
                for relation, rows in facts.items():
                    self._store.add_many(relation, (tuple(row) for row in rows))
        self._subsumption = self._collect_subsumption_specs()

    # -- public API --------------------------------------------------------

    @property
    def store(self) -> StoreBackend:
        """Return the underlying fact store (facts are available after :meth:`run`)."""
        return self._store

    @property
    def executor(self) -> RuleExecutor:
        """Return the rule executor evaluating this engine's plans."""
        return self._executor

    def run(self) -> StoreBackend:
        """Evaluate the whole program; idempotent."""
        if self._evaluated:
            return self._store
        graph = build_dependency_graph(self._program)
        strata = stratify(self._program)
        for stratum in strata:
            self._evaluate_stratum(stratum, graph)
        self._evaluated = True
        return self._store

    def query(self, relation: Optional[str] = None) -> QueryResult:
        """Run the program (if needed) and return the rows of ``relation``.

        ``relation`` defaults to the program's first output.
        """
        self.run()
        if relation is None:
            if not self._program.outputs:
                raise ExecutionError("program has no output relation")
            relation = self._program.outputs[0]
        declaration = self._program.schema.maybe_get(relation)
        if declaration is not None:
            columns = declaration.column_names()
        else:
            columns = []
        rows = sorted(self._store.scan(relation), key=lambda row: tuple(str(v) for v in row))
        if not columns and rows:
            columns = [f"c{index}" for index in range(len(rows[0]))]
        return QueryResult(columns=columns, rows=rows)

    def fact_count(self, relation: str) -> int:
        """Return how many facts ``relation`` holds (after :meth:`run`)."""
        self.run()
        return self._store.count(relation)

    def iteration_count(self, relation: str) -> int:
        """Return how many semi-naive iterations the relation's stratum took."""
        self.run()
        return self._iterations.get(relation, 0)

    # -- evaluation ----------------------------------------------------------

    def _plan(
        self, rule: Rule, delta_index: Optional[int] = None, delta_size: int = 0
    ) -> RulePlan:
        """Return the (cached) compiled plan for ``(rule, delta_index)``."""
        if self._plans is None:
            return plan_rule(rule, self._store, delta_index, delta_size)
        return self._plans.plan_for(rule, self._store, delta_index, delta_size)

    def _collect_subsumption_specs(self) -> Dict[str, _SubsumptionSpec]:
        specs: Dict[str, _SubsumptionSpec] = {}
        for rule in self._program.rules:
            relation = rule.head.relation
            column: Optional[int] = None
            minimize = True
            if rule.subsume_min is not None:
                column, minimize = rule.subsume_min, True
            elif rule.subsume_max is not None:
                column, minimize = rule.subsume_max, False
            if column is None:
                continue
            existing = specs.get(relation)
            if existing is not None:
                if existing.column != column or existing.minimize != minimize:
                    raise ExecutionError(
                        f"conflicting subsumption specifications for {relation!r}"
                    )
                continue
            specs[relation] = _SubsumptionSpec(column, minimize, rule.head.arity)
        return specs

    def _insert(self, relation: str, rows: Set[Tuple]) -> Set[Tuple]:
        """Insert rows honouring subsumption; return the rows that are new."""
        spec = self._subsumption.get(relation)
        fresh: Set[Tuple] = set()
        if spec is None:
            for row in rows:
                if self._store.add(relation, row):
                    fresh.add(row)
            return fresh
        for row in rows:
            admitted, replaced = spec.admit(row)
            if not admitted:
                continue
            if replaced is not None:
                self._store.remove(relation, replaced)
            if self._store.add(relation, row):
                fresh.add(row)
        return fresh

    def _evaluate_stratum(self, stratum: Sequence[str], graph) -> None:
        stratum_set = set(stratum)
        rules = [
            rule for rule in self._program.rules if rule.head.relation in stratum_set
        ]
        if not rules:
            return
        # Any relation *defined* in this stratum can feed other rules of the
        # same stratum, so the semi-naive loop must track deltas for all of
        # them (not only the truly recursive ones): a non-recursive rule such
        # as the translation's ``Match``/``Where`` views still has to be
        # re-evaluated when the recursive relation it reads grows.
        defined_here = {
            rule.head.relation for rule in rules if rule.head.relation in stratum_set
        }
        del graph  # the dependency graph is only needed for stratification
        recursive_relations = defined_here
        # Initial full round.  Each round's inserts run as one store batch
        # (one transaction on transactional backends).
        delta: Dict[str, Set[Tuple]] = defaultdict(set)
        with self._store.batch():
            for rule in rules:
                derived = self._executor.evaluate_rule(
                    rule, self._store, plan=self._plan(rule)
                )
                fresh = self._insert(rule.head.relation, derived)
                delta[rule.head.relation].update(fresh)
        iterations = 1
        # Semi-naive loop.  Delta views are shared per relation per iteration
        # so their mini-indexes amortise across rules and delta positions.
        while any(delta.values()):
            delta_views = {
                relation: DeltaView(rows) for relation, rows in delta.items() if rows
            }
            new_delta: Dict[str, Set[Tuple]] = defaultdict(set)
            with self._store.batch():
                for rule in rules:
                    recursive_positions = [
                        index
                        for index, literal in enumerate(rule.body)
                        if isinstance(literal, Atom)
                        and literal.relation in recursive_relations
                        and delta.get(literal.relation)
                    ]
                    if not recursive_positions:
                        continue
                    for position in recursive_positions:
                        literal = rule.body[position]
                        assert isinstance(literal, Atom)
                        view = delta_views[literal.relation]
                        derived = self._executor.evaluate_rule(
                            rule,
                            self._store,
                            delta_index=position,
                            delta_rows=view,
                            plan=self._plan(rule, position, len(view)),
                        )
                        fresh = self._insert(rule.head.relation, derived)
                        new_delta[rule.head.relation].update(fresh)
            delta = new_delta
            iterations += 1
            if iterations > 1_000_000:  # pragma: no cover - safety net
                raise ExecutionError("semi-naive evaluation did not converge")
        for relation in stratum_set:
            self._iterations[relation] = iterations


def evaluate_program(
    program: DLIRProgram,
    facts: Optional[FactsInput] = None,
    relation: Optional[str] = None,
    store: StoreSpec = None,
    executor: ExecutorSpec = None,
) -> QueryResult:
    """Convenience wrapper: evaluate ``program`` and return one relation's rows."""
    engine = DatalogEngine(program, facts, store=store, executor=executor)
    return engine.query(relation)
