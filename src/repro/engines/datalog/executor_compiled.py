"""Compiled closure execution of :class:`RulePlan`\\ s.

The interpreted executor (`evaluation.py`) walks a plan step by step: every
row pays a dict copy, a per-step dispatch, and a per-element branch while
assembling probe keys.  This module removes that interpretive overhead the
same way the paper compiles declarative queries down to specialised code:
each plan is **source-generated** into one plain Python function — the join
loop nest, key assembly, equality checks, comparison guards, negation probes
and head projection are all inlined — then ``compile``\\ d + ``exec``\\ 'd once
and cached per plan.

Execution is *level at a time*: the partial solutions after each join step
are materialised as tuples of bound-variable values, and the next step's
probe keys for **all** of them are handed to the store in one
:meth:`~repro.engines.datalog.storage.StoreBackend.lookup_many` call — one
dict sweep on the in-memory store, one SQL query on the SQLite store —
instead of one ``lookup`` per row.  A generated function looks like::

    def _compiled_rule(store, delta):
        # tc(x, y) :- tc(x, z), edge(z, y).  [delta at body position 0]
        lookup = store.lookup
        lookup_many = store.lookup_many
        out = set()
        # step 0: tc(x, z)  [delta]
        if delta is None:
            rows_0 = lookup('tc', (), ())
        else:
            rows_0 = delta.lookup((), ())
        sols = []
        for row in rows_0:
            v_x = row[0]
            v_z = row[1]
            sols.append((v_x, v_z))
        ...
        # step 1: edge(z, y)  [batched probe on positions (0,)]
        keys_1 = [(v_z,) for (v_x, v_z) in sols]
        probe_1 = lookup_many('edge', (0,), keys_1)
        ...

Semantics are identical to the interpreter (the differential suite in
``tests/engines/test_store_differential.py`` checks all executor × store
combinations against a naive oracle); aggregate rules reuse the shared
grouping logic via :func:`~repro.engines.datalog.evaluation.aggregate_solutions`.

**Fallback.**  A plan the generator cannot compile (an unexpected term shape,
or a delta step the planner did not place first) silently falls back to the
interpreted executor — correctness never depends on codegen coverage.
Executor selection threads ``DatalogEngine(..., executor=...)`` →
``Raqlet`` → the CLI's ``--executor`` → the ``REPRO_EXECUTOR`` environment
variable, defaulting to ``"compiled"``.
"""

from __future__ import annotations

import math
import os
import re
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import ExecutionError
from repro.dlir.core import (
    ArithExpr,
    Const,
    Param,
    Rule,
    Term,
    Var,
    rule_param_names,
    term_variables,
)
from repro.engines.datalog.evaluation import (
    COMPARISON_TYPE_ERROR_FMT,
    _apply_arith,
    aggregate_solutions,
    evaluate_rule,
    resolve_delta_view,
)
from repro.engines.datalog.planner import Guard, RulePlan, plan_rule
from repro.engines.datalog.storage import StoreBackend


class CodegenError(Exception):
    """Raised when a plan cannot be turned into a closure (triggers fallback)."""


# -- helpers referenced by the generated code --------------------------------


def _div(left, right):
    """``/`` with the interpreter's own semantics (int//int, error on zero)."""
    return _apply_arith("/", left, right)


def _unbound(name):
    """Raise the interpreter's unbound-variable error (scheduled statically)."""
    raise ExecutionError(f"variable {name!r} is not bound")


def _param(params, name):
    """Resolve one late-bound parameter (the interpreter's error on a miss)."""
    if params is None or name not in params:
        raise ExecutionError(f"no value bound for query parameter ${name}")
    return params[name]


#: the globals every generated closure runs with
_CLOSURE_GLOBALS = {
    "ExecutionError": ExecutionError,
    "_div": _div,
    "_unbound": _unbound,
    "_param": _param,
    "_cmp_error": COMPARISON_TYPE_ERROR_FMT,
}


# -- the code generator ------------------------------------------------------


class _PlanCompiler:
    """Generates the Python source of one plan's closure.

    Variable naming: every rule variable gets a ``v_``-prefixed Python
    identifier (sanitised, deduplicated), so generated scaffolding names
    (``row``, ``sols``, ``keys_N``, ``_l``/``_r``/``_ok``) can never
    collide.  Variables bound during join steps travel in the per-solution
    tuples (``slots``); variables bound by the prelude stay plain function
    locals.  Generation is deterministic — the golden tests diff the source.
    """

    def __init__(self, plan: RulePlan, function_name: str = "_compiled_rule") -> None:
        self.plan = plan
        self.rule = plan.rule
        self.function_name = function_name
        self.lines: List[str] = []
        self.env: Dict[str, str] = {}  # rule variable -> python identifier
        self.used: Set[str] = set()
        self.slots: List[str] = []  # identifiers carried in solution tuples
        self.slot_idents: Set[str] = set()
        self.in_steps = False
        # Late-bound parameters: hoisted into locals once per call, so the
        # closure's signature (and source) only changes for parameterised
        # rules — parameter-free plans generate byte-identical code.
        self.param_names: Tuple[str, ...] = tuple(rule_param_names(self.rule))

    # -- small emission helpers ------------------------------------------

    def emit(self, line: str, indent: int) -> None:
        self.lines.append("    " * indent + line)

    @staticmethod
    def _tuple(parts: Sequence[str]) -> str:
        parts = list(parts)
        if not parts:
            return "()"
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    def _fresh(self, name: str) -> str:
        base = "v_" + (re.sub(r"\W", "_", name) or "_")
        candidate = base
        serial = 2
        while candidate in self.used:
            candidate = f"{base}_{serial}"
            serial += 1
        self.used.add(candidate)
        return candidate

    def _bind(self, name: str) -> str:
        """Allocate the identifier binding ``name`` from here on."""
        ident = self._fresh(name)
        self.env[name] = ident
        if self.in_steps:
            self.slots.append(ident)
            self.slot_idents.add(ident)
        return ident

    def _pattern(self) -> str:
        """The unpack target for one solution tuple (``_`` when empty)."""
        return self._tuple(self.slots) if self.slots else "_"

    # -- expression compilation ------------------------------------------

    @staticmethod
    def _literal(value) -> str:
        """A source literal evaluating to ``value``.

        ``repr`` round-trips every supported constant except non-finite
        floats, whose repr (``inf``/``nan``) is a bare undefined name.
        """
        if isinstance(value, float) and not math.isfinite(value):
            return f"float({str(value)!r})"
        return repr(value)

    def _term(self, term: Term) -> str:
        if isinstance(term, Const):
            return self._literal(term.value)
        if isinstance(term, Param):
            ident = self.env.get(f"${term.name}")
            if ident is None:  # pragma: no cover - hoist covers every rule param
                raise CodegenError(f"parameter ${term.name} was not hoisted")
            return ident
        if isinstance(term, Var):
            ident = self.env.get(term.name)
            if ident is None:
                # Statically known to be unbound when this point runs: the
                # planner's fallback scheduling for never-bound negation
                # terms.  Raise the interpreter's error at run time.
                return f"_unbound({term.name!r})"
            return ident
        if isinstance(term, ArithExpr):
            left = self._term(term.left)
            right = self._term(term.right)
            if term.op in ("+", "-", "*", "%"):
                return f"({left} {term.op} {right})"
            if term.op == "/":
                return f"_div({left}, {right})"
            raise CodegenError(f"unknown arithmetic operator {term.op!r}")
        raise CodegenError(f"cannot compile term {term!r}")

    # -- guard emission ---------------------------------------------------

    def _step_negations_batchable(self, step) -> bool:
        """Whether the step's negation probes can be batched per level.

        Batching evaluates every candidate row's negation keys before any
        check runs, so it is only safe when that pre-evaluation cannot be
        observed: every variable a negation mentions must be bound by the
        time the step's guard runs (the planner's never-bound fallback
        scheduling routes through ``_unbound``, whose raise the interpreter
        only reaches for rows that survive the preceding negations), and no
        negation after the first may have a key term that can itself raise
        (arithmetic — division by zero, mixed types), because the
        interpreter never evaluates negation *j*'s key for a row negation
        *j-1* already rejected.  The first negation's keys are computed for
        exactly the rows that pass the guard ops on both paths, so it may
        use arithmetic freely.
        """
        guard = step.guard
        if not guard.negations:
            return False
        known = set(self.env)
        known.update(name for _, name in step.bind_positions)
        known.update(op[1] for op in guard.ops if op[0] == "assign")
        if not all(
            all(variable in known for variable in term_variables(term))
            for negation in guard.negations
            for term in negation.terms
        ):
            return False
        return all(
            isinstance(term, (Const, Var, Param))
            for negation in guard.negations[1:]
            for term in negation.terms
        )

    def _emit_negation_buffers(self, index: int, guard: Guard, indent: int) -> None:
        """Declare the per-level candidate and negation-key buffers."""
        self.emit(f"cand_{index} = []", indent)
        for j in range(len(guard.negations)):
            self.emit(f"negkeys_{index}_{j} = []", indent)

    def _emit_negation_collect(self, index: int, guard: Guard, indent: int) -> None:
        """Append the row's negation keys and candidate slots (one level)."""
        for j, negation in enumerate(guard.negations):
            key = self._tuple([self._term(term) for term in negation.terms])
            self.emit(f"negkeys_{index}_{j}.append({key})", indent)
        self.emit(f"cand_{index}.append({self._tuple(self.slots)})", indent)

    def _emit_negation_filter_header(self, index: int, guard: Guard) -> None:
        """Probe each negated relation once for the whole level, then open
        the loop over surviving candidates (bodies emitted by the caller at
        indent 2)."""
        for j, negation in enumerate(guard.negations):
            self.emit(
                f"negmap_{index}_{j} = lookup_many("
                f"{negation.relation!r}, {negation.positions!r}, "
                f"negkeys_{index}_{j})",
                1,
            )
        zip_sources = ", ".join(
            [f"cand_{index}"]
            + [f"negkeys_{index}_{j}" for j in range(len(guard.negations))]
        )
        targets = ", ".join(
            [self._pattern()]
            + [f"negk_{index}_{j}" for j in range(len(guard.negations))]
        )
        self.emit(f"for {targets} in zip({zip_sources}):", 1)
        for j in range(len(guard.negations)):
            self.emit(f"if negmap_{index}_{j}[negk_{index}_{j}]:", 2)
            self.emit("continue", 3)

    def _emit_guard(self, guard: Guard, indent: int, fail: str) -> None:
        self._emit_guard_ops(guard, indent, fail)
        self._emit_negation_probes(guard, indent, fail)

    def _emit_guard_ops(self, guard: Guard, indent: int, fail: str) -> None:
        for op in guard.ops:
            if op[0] == "assign":
                expr = self._term(op[2])
                ident = self._bind(op[1])
                self.emit(f"{ident} = {expr}", indent)
            else:
                comparison = op[1]
                left = self._term(comparison.left)
                right = self._term(comparison.right)
                if comparison.op in ("=", "<>"):
                    py_op = "==" if comparison.op == "=" else "!="
                    self.emit(f"if not ({left} {py_op} {right}):", indent)
                    self.emit(fail, indent + 1)
                else:
                    # Ordering comparisons can raise TypeError on mixed
                    # types; surface the interpreter's ExecutionError.
                    self.emit(f"_l = {left}", indent)
                    self.emit(f"_r = {right}", indent)
                    self.emit("try:", indent)
                    self.emit(f"_ok = _l {comparison.op} _r", indent + 1)
                    self.emit("except TypeError as exc:", indent)
                    self.emit(
                        "raise ExecutionError(_cmp_error % "
                        f"(_l, _r, {comparison.op!r})) from exc",
                        indent + 1,
                    )
                    self.emit("if not _ok:", indent)
                    self.emit(fail, indent + 1)

    def _emit_negation_probes(self, guard: Guard, indent: int, fail: str) -> None:
        """One ``lookup`` per row per negation (prelude and fallback path)."""
        for negation in guard.negations:
            key = self._tuple([self._term(term) for term in negation.terms])
            self.emit(
                f"if lookup({negation.relation!r}, {negation.positions!r}, {key}):",
                indent,
            )
            self.emit(fail, indent + 1)

    # -- whole-plan generation --------------------------------------------

    def generate(self) -> str:
        plan, rule = self.plan, self.rule
        is_aggregate = bool(rule.aggregations)
        if plan.delta_index is not None and (
            not plan.steps or plan.steps[0].body_index != plan.delta_index
        ):
            raise CodegenError(
                "compiled execution requires the delta atom at step 0"
            )
        signature = "store, delta, params" if self.param_names else "store, delta"
        self.emit(f"def {self.function_name}({signature}):", 0)
        delta_note = (
            f"  [delta at body position {plan.delta_index}]"
            if plan.delta_index is not None
            else ""
        )
        self.emit(f"# {rule}{delta_note}", 1)
        self.emit("lookup = store.lookup", 1)
        self.emit("lookup_many = store.lookup_many", 1)
        for name in self.param_names:
            ident = self._fresh(name)
            self.env[f"${name}"] = ident
            self.emit(f"{ident} = _param(params, {name!r})", 1)
        self.emit("out = []" if is_aggregate else "out = set()", 1)
        self._emit_guard(plan.prelude, 1, "return out")
        self.in_steps = True

        last_index = len(plan.steps) - 1
        for index, step in enumerate(plan.steps):
            atom = rule.body[step.body_index]
            is_last = index == last_index
            # Negation probes whose keys are fully bound are *batched*: the
            # level's keys are collected into one lookup_many per negated
            # relation, then candidates are filtered — instead of one lookup
            # per candidate row.
            batch_negations = self._step_negations_batchable(step)
            is_delta = (
                plan.delta_index is not None
                and step.body_index == plan.delta_index
            )
            key_parts: List[str] = []
            solution_dependent = False
            for is_var, source in step.key_sources:
                if is_var:
                    ident = self.env.get(source)
                    if ident is None:
                        raise CodegenError(f"key variable {source!r} is unbound")
                    if ident in self.slot_idents:
                        solution_dependent = True
                    key_parts.append(ident)
                else:
                    key_parts.append(self._literal(source))
            key_src = self._tuple(key_parts)
            positions_src = repr(tuple(step.key_positions))
            prev_pattern = self._pattern()

            if index == 0:
                self.emit(f"# step 0: {atom}" + ("  [delta]" if is_delta else ""), 1)
                if is_delta:
                    self.emit("if delta is None:", 1)
                    self.emit(
                        f"rows_0 = lookup({step.relation!r}, {positions_src}, {key_src})",
                        2,
                    )
                    self.emit("else:", 1)
                    self.emit(f"rows_0 = delta.lookup({positions_src}, {key_src})", 2)
                else:
                    self.emit(
                        f"rows_0 = lookup({step.relation!r}, {positions_src}, {key_src})",
                        1,
                    )
                if batch_negations:
                    self._emit_negation_buffers(index, step.guard, 1)
                elif not is_last:
                    self.emit("sols = []", 1)
                self.emit("for row in rows_0:", 1)
                body_indent = 2
                target = "sols"
            else:
                self.emit("if not sols:", 1)
                self.emit("return out", 2)
                if solution_dependent:
                    self.emit(
                        f"# step {index}: {atom}  "
                        f"[batched probe on positions {tuple(step.key_positions)}]",
                        1,
                    )
                    self.emit(
                        f"keys_{index} = [{key_src} for {prev_pattern} in sols]", 1
                    )
                    self.emit(
                        f"probe_{index} = lookup_many("
                        f"{step.relation!r}, {positions_src}, keys_{index})",
                        1,
                    )
                    if batch_negations:
                        self._emit_negation_buffers(index, step.guard, 1)
                    elif not is_last:
                        self.emit("new_sols = []", 1)
                    self.emit(
                        f"for key_{index}, {prev_pattern} in zip(keys_{index}, sols):",
                        1,
                    )
                    self.emit(f"for row in probe_{index}[key_{index}]:", 2)
                else:
                    self.emit(f"# step {index}: {atom}", 1)
                    self.emit(
                        f"rows_{index} = lookup({step.relation!r}, "
                        f"{positions_src}, {key_src})",
                        1,
                    )
                    if batch_negations:
                        self._emit_negation_buffers(index, step.guard, 1)
                    elif not is_last:
                        self.emit("new_sols = []", 1)
                    self.emit(f"for {prev_pattern} in sols:", 1)
                    self.emit(f"for row in rows_{index}:", 2)
                body_indent = 3
                target = "new_sols"

            if step.eq_positions:
                condition = " or ".join(
                    f"row[{a}] != row[{b}]" for a, b in step.eq_positions
                )
                self.emit(f"if {condition}:", body_indent)
                self.emit("continue", body_indent + 1)
            for position, name in step.bind_positions:
                ident = self._bind(name)
                self.emit(f"{ident} = row[{position}]", body_indent)
            if batch_negations:
                # The level's loop only *collects*: run the non-negation
                # guard ops, stash each survivor's negation keys and slots,
                # then probe every negated relation once and filter.
                self._emit_guard_ops(step.guard, body_indent, "continue")
                self._emit_negation_collect(index, step.guard, body_indent)
                if not is_last:
                    self.emit("sols = []", 1)
                self._emit_negation_filter_header(index, step.guard)
                if is_last:
                    self._emit_result(is_aggregate, 2)
                else:
                    self.emit(f"sols.append({self._tuple(self.slots)})", 2)
                continue
            self._emit_guard(step.guard, body_indent, "continue")
            if is_last:
                # The final level projects straight out of the loop — no
                # last round of solution tuples is materialised.
                self._emit_result(is_aggregate, body_indent)
            else:
                self.emit(f"{target}.append({self._tuple(self.slots)})", body_indent)
                if index > 0:
                    self.emit("sols = new_sols", 1)

        if plan.steps:
            self.emit("return out", 1)
        else:
            # No join steps: the prelude admits exactly one (empty) solution.
            self._emit_result(is_aggregate, 1)
            if not plan.unresolved:
                self.emit("return out", 1)
        return "\n".join(self.lines) + "\n"

    def _emit_result(self, is_aggregate: bool, indent: int) -> None:
        """Emit what happens to one completed body solution."""
        plan, rule = self.plan, self.rule
        if plan.unresolved:
            # Reaching the end of the body with unresolved comparisons is
            # the interpreter's unsafe-rule error (empty joins never raise).
            unresolved_text = ", ".join(str(c) for c in plan.unresolved)
            message = (
                f"rule {rule} has comparisons over unbound variables: "
                f"{unresolved_text}"
            )
            self.emit(f"raise ExecutionError({message!r})", indent)
        elif is_aggregate:
            bindings_src = (
                "{"
                + ", ".join(
                    f"{name!r}: {ident}" for name, ident in self.env.items()
                )
                + "}"
            )
            self.emit(f"out.append({bindings_src})", indent)
        else:
            head_src = self._tuple([self._term(term) for term in rule.head.terms])
            self.emit(f"out.add({head_src})", indent)


def generate_plan_source(plan: RulePlan, function_name: str = "_compiled_rule") -> str:
    """Return the Python source of ``plan``'s closure (the golden-test hook)."""
    return _PlanCompiler(plan, function_name).generate()


@dataclass(frozen=True)
class CompiledPlan:
    """A plan, its generated source, and the executable closure.

    ``fn(store, delta)`` returns the derived head-tuple set for plain rules
    and the list of body-solution bindings for aggregate rules (which are
    then grouped by :func:`aggregate_solutions`).  Closures of parameterised
    rules take the extra argument ``fn(store, delta, params)`` — the dict of
    late-bound values, hoisted into locals at the top of the function —
    which is what lets one compiled closure serve every parameter binding.
    """

    plan: RulePlan
    source: str
    fn: Callable
    param_names: Tuple[str, ...] = ()


def compile_plan(plan: RulePlan) -> CompiledPlan:
    """Generate, compile and return the closure for ``plan`` (uncached)."""
    generator = _PlanCompiler(plan)
    source = generator.generate()
    namespace = dict(_CLOSURE_GLOBALS)
    code = compile(source, f"<plan:{plan.rule.head.relation}>", "exec")
    exec(code, namespace)
    return CompiledPlan(
        plan=plan,
        source=source,
        fn=namespace["_compiled_rule"],
        param_names=generator.param_names,
    )


# -- executor objects --------------------------------------------------------


class RuleExecutor:
    """The strategy interface the engine evaluates single rules through."""

    name = "abstract"

    def evaluate_rule(
        self,
        rule: Rule,
        store: StoreBackend,
        delta_index: Optional[int] = None,
        delta_rows: Optional[Sequence[Tuple]] = None,
        plan: Optional[RulePlan] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> Set[Tuple]:
        """Evaluate one rule application; return the derived head tuples.

        ``params`` supplies the run's late-bound parameter values (prepared
        queries); plans and compiled closures are binding-independent, so
        the same plan serves every ``params``.
        """
        raise NotImplementedError


class InterpretedExecutor(RuleExecutor):
    """The plan-walking executor from ``evaluation.py`` (the seed semantics)."""

    name = "interpreted"

    def evaluate_rule(
        self, rule, store, delta_index=None, delta_rows=None, plan=None, params=None
    ):
        return evaluate_rule(rule, store, delta_index, delta_rows, plan, params)


_UNSET = object()


class CompiledExecutor(RuleExecutor):
    """Evaluates rules through cached source-generated closures.

    Closures are cached by plan *structure* (``RulePlan`` is a frozen
    dataclass), so engines that rebuild plans per application
    (``reuse_plans=False``) still reuse compiled code.  The hot path — the
    engine passing the same ``PlanCache``-owned plan object every iteration
    — is served by an identity memo in front of the structural map, so it
    never recomputes a deep plan hash (the reason ``PlanCache`` itself keys
    by ``id``).  Plans the generator rejects are remembered as ``None`` and
    permanently routed to the interpreter; ``fallback_count`` says how many
    distinct plans did.
    """

    name = "compiled"

    #: identity-memo bound: above this the memo is cleared (it only exists
    #: to skip hashing, so dropping it is always safe)
    _ID_MEMO_LIMIT = 4096

    def __init__(self) -> None:
        self._by_structure: Dict[RulePlan, Optional[CompiledPlan]] = {}
        # id -> (plan, compiled); the plan reference keeps the id alive.
        self._by_id: Dict[int, Tuple[RulePlan, Optional[CompiledPlan]]] = {}
        self.fallback_count = 0
        #: closures actually generated+compiled (structural cache misses);
        #: the session tests assert this stays flat across re-binds
        self.compile_count = 0
        # One executor is shared by every worker of a serving pool.  The
        # identity-memo fast path stays lock-free (a single dict read,
        # atomic under the GIL, of an immutable tuple); the slow path —
        # compile + both cache writes — runs under this lock with a
        # double-check so concurrent first-misses of the same plan compile
        # it exactly once.
        self._lock = threading.Lock()

    def compiled_for(self, plan: RulePlan) -> Optional[CompiledPlan]:
        """Return the cached closure for ``plan`` (``None`` = interpreter)."""
        memoised = self._by_id.get(id(plan))
        if memoised is not None and memoised[0] is plan:
            return memoised[1]
        with self._lock:
            compiled = self._by_structure.get(plan, _UNSET)
            if compiled is _UNSET:
                try:
                    compiled = compile_plan(plan)
                    self.compile_count += 1
                except (CodegenError, SyntaxError):
                    compiled = None
                    self.fallback_count += 1
                self._by_structure[plan] = compiled
            if len(self._by_id) >= self._ID_MEMO_LIMIT:
                self._by_id.clear()
            self._by_id[id(plan)] = (plan, compiled)
        return compiled

    def evaluate_rule(
        self, rule, store, delta_index=None, delta_rows=None, plan=None, params=None
    ):
        if plan is None:
            delta_size = len(delta_rows) if delta_rows is not None else 0
            plan = plan_rule(rule, store, delta_index, delta_size)
        compiled = self.compiled_for(plan)
        if compiled is None:
            return evaluate_rule(rule, store, delta_index, delta_rows, plan, params)
        if rule.aggregations:
            # Aggregates always recompute over the full store (a delta row
            # can change any group), exactly like the interpreter — which
            # also never checks them for a delta-position mismatch.
            if compiled.param_names:
                solutions = compiled.fn(store, None, params)
            else:
                solutions = compiled.fn(store, None)
            return aggregate_solutions(rule, solutions, params=params)
        delta = resolve_delta_view(plan, delta_index, delta_rows)
        if compiled.param_names:
            return compiled.fn(store, delta, params)
        return compiled.fn(store, delta)


#: What :func:`create_executor` and the engine accept as an executor selection.
ExecutorSpec = Union[str, RuleExecutor, None]


def create_executor(spec: ExecutorSpec = None) -> RuleExecutor:
    """Resolve an executor specification into a :class:`RuleExecutor`.

    ``spec`` may be an existing executor instance (returned as-is), one of
    the strings ``"interpreted"`` / ``"compiled"`` / ``"columnar"``, or
    ``None`` — which reads the ``REPRO_EXECUTOR`` environment variable and
    defaults to ``"compiled"``.  The environment hook is what lets CI run
    the whole test suite on any executor without touching any call site,
    mirroring ``REPRO_STORE`` for storage backends.  ``"columnar"`` requires
    NumPy (the ``repro[columnar]`` extra) and raises
    :class:`~repro.common.errors.ExecutionError` without it.
    """
    if isinstance(spec, RuleExecutor):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_EXECUTOR") or "compiled"
    if not isinstance(spec, str):
        raise ValueError(f"unsupported executor specification {spec!r}")
    if spec == "interpreted":
        return InterpretedExecutor()
    if spec == "compiled":
        return CompiledExecutor()
    if spec == "columnar":
        # Imported lazily: the columnar module needs NumPy only at
        # construction time, and this module must import without it.
        from repro.engines.datalog.executor_columnar import ColumnarExecutor

        return ColumnarExecutor()
    raise ValueError(
        f"unknown executor {spec!r} "
        "(expected 'interpreted', 'compiled', or 'columnar')"
    )
