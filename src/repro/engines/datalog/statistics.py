"""Relation statistics for cost-based join planning.

The planner's original heuristic ranked candidate atoms by raw relation
size; size alone cannot distinguish "1,000 rows spread over 1,000 keys"
(fan-out 1 per probe) from "1,000 rows under one key" (fan-out 1,000).
This module supplies the signal that distinction needs:

* :class:`RelationStats` — an immutable snapshot of one relation's
  **cardinality** and **per-column distinct-value counts**, with the
  estimators the planner's cost function is built on
  (:meth:`RelationStats.fanout` — estimated rows per probe of a bound
  position set, under the textbook attribute-independence assumption);
* :class:`StatsAccumulator` / :class:`StatsRegistry` — exact,
  **incrementally maintained** counts (one value→multiplicity map per
  column) that the in-memory :class:`~repro.engines.datalog.storage.FactStore`
  feeds from its insert/remove/replace hooks, so taking a snapshot each
  fixpoint iteration is O(arity) instead of O(rows).

The SQLite backend answers the same ``relation_stats`` contract with one
``COUNT(*)`` / ``COUNT(DISTINCT ...)`` aggregate query, cached until its
write hooks dirty the relation.  Both backends are held to ground truth by
the hypothesis contract suite (``tests/engines/test_statistics_contract.py``).

Drift detection (:func:`drift_ratio`) is what turns these snapshots into
adaptive planning: the engine compares the cardinalities a plan was costed
on (``RulePlan.stats_basis``) against the current snapshot and re-plans the
rule when any relation moved by the re-plan threshold (default 10×).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

Row = Tuple

#: default drift factor that triggers a re-plan (see :func:`drift_ratio`)
DEFAULT_REPLAN_THRESHOLD = 10.0

#: environment variable overriding the re-plan threshold (``1`` = re-plan on
#: every snapshot, ``inf`` = never re-plan)
REPLAN_THRESHOLD_ENV = "REPRO_REPLAN_THRESHOLD"


def resolve_replan_threshold(value: Optional[float] = None) -> float:
    """Resolve the drift threshold: explicit value, else env var, else 10.

    ``1`` (the floor) makes every drift check fire — the always-re-plan
    configuration CI exercises; ``float("inf")`` disables re-planning (the
    frozen-plan configuration the adaptive benchmark compares against).
    """
    if value is None:
        raw = os.environ.get(REPLAN_THRESHOLD_ENV) or ""
        value = float(raw) if raw else DEFAULT_REPLAN_THRESHOLD
    value = float(value)
    if value < 1.0:
        raise ValueError(f"re-plan threshold must be >= 1, got {value!r}")
    return value


def drift_ratio(current: int, basis: int) -> float:
    """How far ``current`` cardinality drifted from the ``basis`` it was
    planned at, as a factor >= 1.

    Laplace-smoothed so growth from empty still registers: a relation that
    went 0 -> 9 rows reads as 10×.
    """
    high, low = (current, basis) if current >= basis else (basis, current)
    return (high + 1.0) / (low + 1.0)


@dataclass(frozen=True)
class RelationStats:
    """One relation's cardinality and per-column distinct counts.

    ``distinct[i]`` is the number of distinct values in column ``i``; for
    rows of mixed arity (the in-memory store does not forbid them) the tuple
    is as wide as the widest row and shorter rows simply do not contribute
    to the trailing columns.
    """

    cardinality: int
    distinct: Tuple[int, ...] = ()

    def distinct_at(self, position: int) -> int:
        """Distinct values in ``position`` (never below 1 for a non-empty
        relation, so it is safe as a divisor)."""
        if 0 <= position < len(self.distinct):
            return max(1, self.distinct[position])
        # Unknown column: assume nothing repeats (the conservative choice —
        # it estimates the *lowest* selectivity gain from binding it).
        return max(1, self.cardinality)

    def key_cardinality(self, positions: Sequence[int]) -> int:
        """Estimated number of distinct keys over ``positions``.

        Attribute independence: the product of per-column distinct counts,
        capped at the relation cardinality (there cannot be more keys than
        rows).
        """
        if self.cardinality == 0:
            return 1
        product = 1
        for position in positions:
            product *= self.distinct_at(position)
            if product >= self.cardinality:
                return self.cardinality
        return max(1, product)

    def fanout(self, positions: Sequence[int]) -> float:
        """Estimated rows returned per probe with ``positions`` bound.

        With nothing bound this is the full cardinality (the probe is a
        scan); with bound columns it is ``cardinality / distinct(bound)``
        under independence — the planner's per-join-step cost.
        """
        if not positions:
            return float(self.cardinality)
        return self.cardinality / self.key_cardinality(positions)


#: the shape planners consume: relation name -> stats snapshot
StatsSnapshot = Mapping[str, RelationStats]

EMPTY_STATS = RelationStats(0, ())


def compute_stats(rows: Iterable[Row]) -> RelationStats:
    """Compute exact :class:`RelationStats` from scratch (the generic
    ``StoreBackend.relation_stats`` fallback)."""
    accumulator = StatsAccumulator()
    for row in rows:
        accumulator.add(row)
    return accumulator.stats()


class StatsAccumulator:
    """Exact cardinality and per-column distinct counts, maintained in O(arity)
    per insert/remove via one value→multiplicity map per column."""

    __slots__ = ("row_count", "_column_counts")

    def __init__(self) -> None:
        self.row_count = 0
        self._column_counts: List[Dict[object, int]] = []

    def add(self, row: Row) -> None:
        """Record one (known-new) row."""
        self.row_count += 1
        columns = self._column_counts
        while len(columns) < len(row):
            columns.append({})
        for position, value in enumerate(row):
            counts = columns[position]
            counts[value] = counts.get(value, 0) + 1

    def remove(self, row: Row) -> None:
        """Record the removal of one (known-present) row."""
        self.row_count -= 1
        columns = self._column_counts
        for position, value in enumerate(row):
            if position >= len(columns):
                break
            counts = columns[position]
            remaining = counts.get(value, 0) - 1
            if remaining <= 0:
                counts.pop(value, None)
            else:
                counts[value] = remaining

    def clear(self) -> None:
        """Forget everything (wholesale relation replacement)."""
        self.row_count = 0
        self._column_counts = []

    def stats(self) -> RelationStats:
        """Snapshot the current counts as an immutable :class:`RelationStats`."""
        return RelationStats(
            cardinality=self.row_count,
            distinct=tuple(len(counts) for counts in self._column_counts),
        )


class StatsRegistry:
    """Per-relation :class:`StatsAccumulator` map — the in-memory store's
    statistics sidecar, driven by its write hooks."""

    __slots__ = ("_accumulators",)

    def __init__(self) -> None:
        self._accumulators: Dict[str, StatsAccumulator] = {}

    def _accumulator(self, name: str) -> StatsAccumulator:
        accumulator = self._accumulators.get(name)
        if accumulator is None:
            accumulator = StatsAccumulator()
            self._accumulators[name] = accumulator
        return accumulator

    def record_add(self, name: str, row: Row) -> None:
        self._accumulator(name).add(row)

    def record_remove(self, name: str, row: Row) -> None:
        accumulator = self._accumulators.get(name)
        if accumulator is not None:
            accumulator.remove(row)

    def record_clear(self, name: str) -> None:
        accumulator = self._accumulators.get(name)
        if accumulator is not None:
            accumulator.clear()

    def stats(self, name: str) -> RelationStats:
        accumulator = self._accumulators.get(name)
        return accumulator.stats() if accumulator is not None else EMPTY_STATS
