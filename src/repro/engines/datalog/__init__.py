"""Bottom-up Datalog engine: semi-naive evaluation of DLIR programs.

The engine stands in for Soufflé in the paper's evaluation.  It supports the
full DLIR feature set: stratified negation, stratified aggregation
(count/sum/min/max/avg/collect), arithmetic, and min/max subsumption for
shortest-path style recursion.

Evaluation is plan-driven: each rule is compiled once (per semi-naive delta
position) into a :class:`~repro.engines.datalog.planner.RulePlan`, and the
:class:`~repro.engines.datalog.storage.FactStore` maintains its hash indexes
incrementally so fixpoint iterations never rebuild them.
"""

from repro.engines.datalog.engine import DatalogEngine, evaluate_program
from repro.engines.datalog.planner import PlanCache, RulePlan, plan_rule
from repro.engines.datalog.storage import DeltaView, FactStore

__all__ = [
    "DatalogEngine",
    "evaluate_program",
    "FactStore",
    "DeltaView",
    "PlanCache",
    "RulePlan",
    "plan_rule",
]
