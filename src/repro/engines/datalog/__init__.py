"""Bottom-up Datalog engine: semi-naive evaluation of DLIR programs.

The engine stands in for Soufflé in the paper's evaluation.  It supports the
full DLIR feature set: stratified negation, stratified aggregation
(count/sum/min/max/avg/collect), arithmetic, and min/max subsumption for
shortest-path style recursion.

Evaluation is plan-driven: each rule is compiled once (per semi-naive delta
position) into a :class:`~repro.engines.datalog.planner.RulePlan`, and the
:class:`~repro.engines.datalog.storage.FactStore` maintains its hash indexes
incrementally so fixpoint iterations never rebuild them.

Storage is pluggable behind the
:class:`~repro.engines.datalog.storage.StoreBackend` protocol: the in-memory
:class:`FactStore` is the default, and
:class:`~repro.engines.datalog.storage_sqlite.SQLiteFactStore` stores
relations in SQLite (in-memory or on disk).  Select a backend with
``DatalogEngine(..., store="sqlite")`` or the ``REPRO_STORE`` environment
variable; compiled plans run unchanged on either store.

Plan **execution** is pluggable too: the default
:class:`~repro.engines.datalog.executor_compiled.CompiledExecutor`
source-generates one specialised closure per plan (inlined loop nest,
batched ``lookup_many`` index probes), while
``DatalogEngine(..., executor="interpreted")`` or the ``REPRO_EXECUTOR``
environment variable selects the step-by-step plan interpreter and
``executor="columnar"`` the NumPy column-array executor
(:class:`~repro.engines.datalog.executor_columnar.ColumnarExecutor`;
requires the ``repro[columnar]`` extra, falls back per-plan to compiled).
"""

from repro.engines.datalog.engine import DatalogEngine, evaluate_program
from repro.engines.datalog.executor_columnar import (
    ColumnarExecutor,
    describe_columnar_plan,
)
from repro.engines.datalog.executor_compiled import (
    CompiledExecutor,
    InterpretedExecutor,
    RuleExecutor,
    compile_plan,
    create_executor,
    generate_plan_source,
)
from repro.engines.datalog.planner import PlanCache, RulePlan, plan_rule
from repro.engines.datalog.statistics import (
    RelationStats,
    StatsAccumulator,
    StatsRegistry,
    drift_ratio,
    resolve_replan_threshold,
)
from repro.engines.datalog.storage import (
    DeltaView,
    FactStore,
    StoreBackend,
    create_store,
)
from repro.engines.datalog.storage_sqlite import SQLiteFactStore

__all__ = [
    "RelationStats",
    "StatsAccumulator",
    "StatsRegistry",
    "drift_ratio",
    "resolve_replan_threshold",
    "DatalogEngine",
    "evaluate_program",
    "StoreBackend",
    "FactStore",
    "SQLiteFactStore",
    "create_store",
    "RuleExecutor",
    "CompiledExecutor",
    "ColumnarExecutor",
    "InterpretedExecutor",
    "create_executor",
    "describe_columnar_plan",
    "compile_plan",
    "generate_plan_source",
    "DeltaView",
    "PlanCache",
    "RulePlan",
    "plan_rule",
]
