"""Bottom-up Datalog engine: semi-naive evaluation of DLIR programs.

The engine stands in for Soufflé in the paper's evaluation.  It supports the
full DLIR feature set: stratified negation, stratified aggregation
(count/sum/min/max/avg/collect), arithmetic, and min/max subsumption for
shortest-path style recursion.
"""

from repro.engines.datalog.engine import DatalogEngine, evaluate_program
from repro.engines.datalog.storage import FactStore

__all__ = ["DatalogEngine", "evaluate_program", "FactStore"]
