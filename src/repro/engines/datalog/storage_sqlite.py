"""A SQLite-backed :class:`~repro.engines.datalog.storage.StoreBackend`.

Each relation becomes one SQLite table (``rel_0``, ``rel_1``, ... — names are
assigned internally so arbitrary relation names, including the generated
magic-set predicates, never need quoting) with untyped columns ``c0..cN`` and
a UNIQUE index over all columns for set semantics.  The hash indexes of the
in-memory store map to ordinary SQLite indexes, created **lazily per
requested position set** exactly like the in-memory backend builds its hash
indexes on first probe; SQLite then maintains them incrementally on every
insert/delete, so ``index_build_count`` equals ``index_count`` after any
fixpoint run — the same invariant the benchmarks assert for the in-memory
store.

Writes are **batched per fixpoint iteration**: the engine brackets each
insert batch with ``begin_batch``/``end_batch`` and the store maps those to
one SQLite transaction (the connection otherwise runs in autocommit mode).
Reads on the same connection see uncommitted writes, so the semi-naive loop
can probe mid-iteration without flushing.

Value model: ``int``, ``float``, ``str``, ``bool`` and ``None`` round-trip
through SQLite's native storage classes with Python-compatible equality
(``1 == 1.0`` both sides, numbers never equal strings).  Two deliberate
deviations from Python set semantics are handled explicitly: ``bool`` is
stored as its integer value (``True == 1`` in Python too), and rows
containing ``None`` take a pre-insert containment check because SQL UNIQUE
treats NULLs as distinct.  Anything else (lists, objects) raises — the
engine only ever derives scalars.

Semi-naive deltas (:class:`~repro.engines.datalog.storage.DeltaView`) always
stay in memory; only the full relations live in SQLite.
"""

from __future__ import annotations

import sqlite3
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import ExecutionError
from repro.engines.datalog.statistics import EMPTY_STATS, RelationStats
from repro.engines.datalog.storage import (
    Key,
    Positions,
    RelationChangeLog,
    Row,
    StoreBackend,
)

_SUPPORTED_TYPES = (bool, int, float, str, bytes)


class SQLiteFactStore(StoreBackend):
    """Tuple storage over a SQLite database (in-memory or on disk).

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps the database
        private to this store.  A filesystem path lifts the memory ceiling
        for large EDBs (and persists nothing the engine relies on — every
        run starts from the facts it is given).
    maintain_indexes:
        Accepted for signature compatibility with :class:`FactStore` and
        ignored: SQLite always maintains its indexes incrementally.
    """

    def __init__(self, path: str = ":memory:", maintain_indexes: bool = True) -> None:
        del maintain_indexes  # SQLite has no invalidate-on-growth mode
        # check_same_thread=False: the serving layer's SharedEDB reads the
        # base store from worker threads.  It serialises every access to a
        # backend whose ``concurrent_reads`` is False (this one) through a
        # single mutex, so the connection is never used from two threads at
        # once — the flag only lifts sqlite3's ownership assertion.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.isolation_level = None  # autocommit; batches use BEGIN/COMMIT
        cursor = self._conn.cursor()
        cursor.execute("PRAGMA journal_mode=MEMORY")
        cursor.execute("PRAGMA synchronous=OFF")
        cursor.execute("PRAGMA temp_store=MEMORY")
        self.path = path
        #: relation name -> (table name, arity)
        self._tables: Dict[str, Tuple[str, int]] = {}
        #: monotone table-name counter (never reused, even after replace)
        self._table_seq = 0
        #: relation name -> position sets with a materialised SQLite index
        self._indexed: Dict[str, Set[Positions]] = {}
        self.index_build_count = 0
        #: key widths for which a temp probe-keys table exists
        self._key_tables: Set[int] = set()
        #: ``lookup_many`` calls that reached the SQL path, and the SELECTs
        #: those calls issued — maintained at independent points so the
        #: benchmarks' "one SELECT per batch" comparison actually measures
        #: the property instead of restating it
        self.batch_probe_count = 0
        self.batch_probe_query_count = 0
        #: relation statistics computed by SQL aggregate, cached per relation
        #: until a write hook dirties it; the SELECTs issued are counted so
        #: tests can assert the cache actually works
        self._stats_cache: Dict[str, RelationStats] = {}
        # per-relation monotone change counters (see data_version)
        self._versions: Dict[str, int] = defaultdict(int)
        # bounded per-relation history backing changes_since()
        self._changelog = RelationChangeLog()
        self.stats_query_count = 0
        self._batch_depth = 0
        self._closed = False

    # -- table management --------------------------------------------------

    def _table(self, name: str, arity: int) -> str:
        """Return the table for relation ``name``, creating it on first use."""
        entry = self._tables.get(name)
        if entry is not None:
            table, known_arity = entry
            if known_arity != arity:
                raise ExecutionError(
                    f"relation {name!r} holds rows of arity {known_arity}, "
                    f"got arity {arity}"
                )
            return table
        if arity == 0:
            raise ExecutionError(
                f"SQLite store cannot hold the zero-arity relation {name!r}"
            )
        table = f"rel_{self._table_seq}"
        self._table_seq += 1
        columns = ", ".join(f"c{i}" for i in range(arity))
        self._conn.execute(f"CREATE TABLE {table} ({columns})")
        self._conn.execute(
            f"CREATE UNIQUE INDEX {table}_uq ON {table} ({columns})"
        )
        self._tables[name] = (table, arity)
        self._indexed[name] = set()
        return table

    def _prepare_row(self, name: str, row: Row) -> Row:
        row = tuple(row)
        for value in row:
            if value is not None and not isinstance(value, _SUPPORTED_TYPES):
                raise ExecutionError(
                    f"SQLite store cannot hold value {value!r} "
                    f"(type {type(value).__name__}) in relation {name!r}"
                )
            if (
                isinstance(value, int)
                and not isinstance(value, bool)
                and not -(2**63) <= value < 2**63
            ):
                raise ExecutionError(
                    f"SQLite store cannot hold integer {value!r} "
                    f"(outside 64-bit range) in relation {name!r}"
                )
            if isinstance(value, float) and value != value:
                # SQLite silently converts NaN to NULL, corrupting the row.
                raise ExecutionError(
                    f"SQLite store cannot hold NaN in relation {name!r}"
                )
        return row

    # -- base operations ---------------------------------------------------

    def relation_names(self) -> List[str]:
        """Return the names of all stored relations."""
        return list(self._tables)

    def count(self, name: str) -> int:
        """Return the number of tuples in ``name``."""
        entry = self._tables.get(name)
        if entry is None:
            return 0
        return self._conn.execute(f"SELECT COUNT(*) FROM {entry[0]}").fetchone()[0]

    def contains(self, name: str, row: Row) -> bool:
        """Return whether ``row`` is present in relation ``name``."""
        entry = self._tables.get(name)
        if entry is None:
            return False
        row = self._prepare_row(name, row)
        table, arity = entry
        if len(row) != arity:
            return False
        # ``IS`` instead of ``=`` so None (NULL) components still match.
        where = " AND ".join(f"c{i} IS ?" for i in range(arity))
        found = self._conn.execute(
            f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", row
        ).fetchone()
        return found is not None

    def add(self, name: str, row: Row) -> bool:
        """Insert ``row``; return ``True`` when it was new."""
        row = self._prepare_row(name, row)
        table = self._table(name, len(row))
        self._stats_cache.pop(name, None)
        if any(value is None for value in row) and self.contains(name, row):
            return False  # UNIQUE treats NULLs as distinct; enforce set semantics
        placeholders = ", ".join("?" for _ in row)
        cursor = self._conn.execute(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})", row
        )
        if cursor.rowcount > 0:
            self._versions[name] += 1
            self._changelog.record(name, self._versions[name], row, 1)
            return True
        return False

    def add_many(self, name: str, rows: Iterable[Row]) -> int:
        """Insert many rows inside one transaction; return how many were new."""
        prepared = [self._prepare_row(name, row) for row in rows]
        if not prepared:
            return 0
        table = self._table(name, len(prepared[0]))
        self._stats_cache.pop(name, None)
        arity = self._tables[name][1]
        for row in prepared:
            if len(row) != arity:
                raise ExecutionError(
                    f"relation {name!r} holds rows of arity {arity}, "
                    f"got arity {len(row)}"
                )
        plain = [row for row in prepared if not any(v is None for v in row)]
        with_null = [row for row in prepared if any(v is None for v in row)]
        own_batch = self._batch_depth == 0
        if own_batch:
            self.begin_batch()
        try:
            added = 0
            added_plain = 0
            if plain:
                placeholders = ", ".join("?" for _ in range(len(plain[0])))
                before = self._conn.total_changes
                self._conn.executemany(
                    f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})", plain
                )
                added_plain = self._conn.total_changes - before
                added += added_plain
            for row in with_null:
                if self.add(name, row):
                    added += 1
            if added:
                self._versions[name] += 1
                if added_plain:
                    # INSERT OR IGNORE does not say which rows were fresh;
                    # the batch is attributable only when every row was.
                    if added_plain == len(plain) == len(set(plain)):
                        self._changelog.record_many(
                            name, self._versions[name], plain, 1
                        )
                    else:
                        self._changelog.reset(name, self._versions[name])
            return added
        finally:
            if own_batch:
                self.end_batch()

    def remove(self, name: str, row: Row) -> bool:
        """Remove ``row`` if present; return ``True`` when it was removed."""
        entry = self._tables.get(name)
        if entry is None:
            return False
        row = self._prepare_row(name, row)
        table, arity = entry
        if len(row) != arity:
            return False
        self._stats_cache.pop(name, None)
        where = " AND ".join(f"c{i} IS ?" for i in range(arity))
        cursor = self._conn.execute(f"DELETE FROM {table} WHERE {where}", row)
        if cursor.rowcount > 0:
            self._versions[name] += 1
            self._changelog.record(name, self._versions[name], row, -1)
            return True
        return False

    def replace(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the whole relation with ``rows``.

        Mirrors the in-memory store: wholesale replacement drops the
        relation's position indexes; they are rebuilt lazily, so
        ``index_build_count`` rises again on the next lookup.  An existing
        relation replaced with no rows stays visible (empty), like the
        in-memory store; replacing a relation that never existed with no
        rows is a no-op (the row arity is unknown, so no table can exist).
        """
        entry = self._tables.pop(name, None)
        self._stats_cache.pop(name, None)
        self._versions[name] += 1
        self._changelog.reset(name, self._versions[name])
        if entry is not None:
            self._conn.execute(f"DROP TABLE {entry[0]}")
            self._indexed.pop(name, None)
        materialised = [tuple(row) for row in rows]
        if materialised:
            self.add_many(name, materialised)
        elif entry is not None:
            self._table(name, entry[1])  # recreate the (empty) relation

    def clear_relation(self, name: str) -> None:
        """Remove every row of ``name``, keeping its table and indexes.

        ``DELETE FROM`` leaves the table and every SQLite index in place
        (SQLite maintains them through the delete), so a session's warm
        re-derivation pays zero index rebuilds — mirroring the in-memory
        store's in-place index emptying.
        """
        entry = self._tables.get(name)
        if entry is None:
            return
        self._stats_cache.pop(name, None)
        self._versions[name] += 1
        self._changelog.reset(name, self._versions[name])
        self._conn.execute(f"DELETE FROM {entry[0]}")

    # -- indexed access ----------------------------------------------------

    def lookup(self, name: str, positions: Sequence[int], key: Key) -> Sequence[Row]:
        """Return the tuples of ``name`` whose ``positions`` equal ``key``.

        A SQLite index over the position set is created on first use (and
        counted in ``index_build_count``); SQLite keeps it current on every
        subsequent write, so each ``(relation, positions)`` index is built
        exactly once — the same invariant as the in-memory store.
        """
        entry = self._tables.get(name)
        if entry is None:
            return []
        table, arity = entry
        positions_key = tuple(positions)
        if not positions_key:
            return self.scan(name)
        if any(p >= arity for p in positions_key):
            raise ExecutionError(
                f"lookup positions {positions_key} exceed arity {arity} "
                f"of relation {name!r}"
            )
        self._ensure_index(name, table, positions_key)
        where = " AND ".join(f"c{p} IS ?" for p in positions_key)
        cursor = self._conn.execute(
            f"SELECT * FROM {table} WHERE {where}", tuple(key)
        )
        return cursor.fetchall()

    def lookup_many(
        self, name: str, positions: Sequence[int], keys: Sequence[Key]
    ) -> Dict[Key, Sequence[Row]]:
        """Answer a whole batch of probe keys with **one** SQL query.

        The distinct keys are loaded into a temp table (one per key width,
        reused across calls) and joined against the relation with ``IS``
        comparisons, so ``None`` components match SQL ``NULL``s exactly as
        single lookups do.  The join's key columns come back with each row,
        which is how rows are grouped per probe key without a second query.
        ``batch_probe_query_count`` counts the SELECTs issued here — exactly
        one per call that reaches SQL — so the benchmarks can prove the
        compiled executor pays one query per (join step, application).
        """
        distinct: List[Key] = []
        seen: Set[Key] = set()
        for key in keys:
            key = tuple(key)
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        if not distinct:
            return {}
        entry = self._tables.get(name)
        if entry is None:
            return {key: [] for key in distinct}
        table, arity = entry
        positions_key = tuple(positions)
        if not positions_key:
            rows = self.scan(name)
            return {key: rows for key in distinct}
        if any(p >= arity for p in positions_key):
            raise ExecutionError(
                f"lookup positions {positions_key} exceed arity {arity} "
                f"of relation {name!r}"
            )
        self._ensure_index(name, table, positions_key)
        # NaN binds as NULL, so a NaN-keyed row fetched back from the join
        # could not be matched to its probe key.  Such keys take the single
        # ``lookup`` path — whose NULL-binding behaviour *is* the
        # loop-of-lookups semantics this method promises.
        nan_keys = [
            key
            for key in distinct
            if any(isinstance(v, float) and v != v for v in key)
        ]
        if nan_keys:
            nan_set = set(map(id, nan_keys))
            batched = [key for key in distinct if id(key) not in nan_set]
            result = {key: self.lookup(name, positions_key, key) for key in nan_keys}
            if batched:
                result.update(self.lookup_many(name, positions_key, batched))
            return result
        # Counted on entry of the SQL path, *independently* of how many
        # SELECTs follow — the benchmarks compare the two counters to prove
        # each batch really costs one query.
        self.batch_probe_count += 1
        width = len(positions_key)
        keys_table = self._probe_keys_table(width)
        self._conn.execute(f"DELETE FROM {keys_table}")
        placeholders = ", ".join("?" for _ in range(width))
        self._conn.executemany(
            f"INSERT INTO {keys_table} VALUES ({placeholders})", distinct
        )
        on = " AND ".join(
            f"t.c{p} IS k.k{i}" for i, p in enumerate(positions_key)
        )
        key_columns = ", ".join(f"k.k{i}" for i in range(width))
        row_columns = ", ".join(f"t.c{i}" for i in range(arity))
        cursor = self._select_counted(
            f"SELECT {key_columns}, {row_columns} "
            f"FROM {keys_table} k JOIN {table} t ON {on}"
        )
        result: Dict[Key, Sequence[Row]] = {key: [] for key in distinct}
        for fetched in cursor.fetchall():
            bucket = result.get(fetched[:width])
            if bucket is not None:
                bucket.append(fetched[width:])
        return result

    def _select_counted(self, sql: str) -> sqlite3.Cursor:
        """Execute a read query issued by :meth:`lookup_many`, counting it."""
        self.batch_probe_query_count += 1
        return self._conn.execute(sql)

    def _ensure_index(self, name: str, table: str, positions_key: Positions) -> None:
        """Create the SQLite index for ``positions_key`` on first use."""
        if positions_key in self._indexed[name]:
            return
        columns = ", ".join(f"c{p}" for p in positions_key)
        suffix = "_".join(str(p) for p in positions_key)
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS {table}_p{suffix} ON {table} ({columns})"
        )
        self._indexed[name].add(positions_key)
        self.index_build_count += 1

    def _probe_keys_table(self, width: int) -> str:
        """Return the temp probe-keys table for ``width``-column keys."""
        if width not in self._key_tables:
            columns = ", ".join(f"k{i}" for i in range(width))
            self._conn.execute(
                f"CREATE TEMP TABLE IF NOT EXISTS probe_keys_{width} ({columns})"
            )
            self._key_tables.add(width)
        return f"probe_keys_{width}"

    def scan(self, name: str) -> List[Row]:
        """Return every tuple of ``name`` as a list."""
        entry = self._tables.get(name)
        if entry is None:
            return []
        return self._conn.execute(f"SELECT * FROM {entry[0]}").fetchall()

    @property
    def index_count(self) -> int:
        """Return how many distinct ``(relation, positions)`` indexes exist."""
        return sum(len(position_sets) for position_sets in self._indexed.values())

    def relation_stats(self, name: str) -> RelationStats:
        """Return cardinality and per-column distinct counts for ``name``.

        One aggregate query — ``COUNT(*)`` plus ``COUNT(DISTINCT cN)`` and
        ``COUNT(cN)`` per column — cached until a write hook dirties the
        relation, so repeated snapshots inside one fixpoint iteration cost
        nothing.  ``COUNT(DISTINCT ...)`` ignores NULLs, so a column holding
        any ``None`` gets one extra distinct value to match Python set
        semantics; SQLite's numeric comparison (``1 == 1.0``) already does.
        """
        cached = self._stats_cache.get(name)
        if cached is not None:
            return cached
        entry = self._tables.get(name)
        if entry is None:
            return EMPTY_STATS
        table, arity = entry
        selects = ["COUNT(*)"]
        for position in range(arity):
            selects.append(f"COUNT(DISTINCT c{position})")
            selects.append(f"COUNT(c{position})")
        self.stats_query_count += 1
        fetched = self._conn.execute(
            f"SELECT {', '.join(selects)} FROM {table}"
        ).fetchone()
        cardinality = fetched[0]
        distinct = tuple(
            fetched[1 + 2 * position]
            + (1 if fetched[2 + 2 * position] < cardinality else 0)
            for position in range(arity)
        )
        stats = RelationStats(cardinality=cardinality, distinct=distinct)
        self._stats_cache[name] = stats
        return stats

    def data_version(self, name: str) -> Optional[int]:
        """Per-relation change counter, bumped only on effective mutations."""
        return self._versions[name]

    def changes_since(
        self, name: str, version: int
    ) -> Optional[Tuple[List[Row], List[Row]]]:
        """Net row delta of ``name`` since ``version`` (see the base class).

        Replays through the shared :class:`RelationChangeLog`; bulk
        ``add_many`` batches whose fresh subset SQLite cannot attribute
        invalidate the history instead of guessing, so an answer is always
        exact.
        """
        return self._changelog.changes_since(name, int(version))

    # -- hooks -------------------------------------------------------------

    def begin_batch(self) -> None:
        """Open one transaction for a batch of inserts.

        Batches nest: only the outermost ``begin_batch`` opens a
        transaction, and only the matching outermost ``end_batch`` commits
        — so handing a store with an open batch to the engine keeps the
        caller's transaction intact.
        """
        if self._batch_depth == 0:
            self._conn.execute("BEGIN")
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Commit the batch transaction once the outermost batch ends."""
        if self._batch_depth == 0:
            return
        self._batch_depth -= 1
        if self._batch_depth == 0:
            self._conn.execute("COMMIT")

    def close(self) -> None:
        """Commit pending work and close the connection."""
        if self._closed:
            return
        self.end_batch()
        self._conn.close()
        self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
